/**
 * @file
 * msq-verify: standalone static-analysis driver. Parses Scaffold-subset
 * or hierarchical-QASM input, runs the IR verifier and the circuit
 * linter, optionally the interprocedural dataflow analyses and the
 * communication-schedule race detector, prints every diagnostic with
 * its stable code, and exits nonzero when the input is malformed.
 *
 * Usage: msq-verify [options] <file.scaffold|file.qasm>...
 *   --scaffold      force Scaffold parsing regardless of extension
 *   --qasm          force hierarchical-QASM parsing
 *   --no-lint       run the verifier only (skip L*** warnings)
 *   --Werror        promote warnings to errors (--werror also accepted)
 *   --quiet         print only the per-file summary lines
 *   --dataflow      print interprocedural liveness / entanglement facts
 *   --check-comm    decompose + flatten, schedule every leaf under RCP
 *                   and LPFS, and replay the movement plans through the
 *                   comm-schedule race detector (codes M001-M010); also
 *                   validates a coarse schedule of the whole program
 *   --k=N           regions for --check-comm (default 4)
 *   --d=N           SIMD width per region for --check-comm (default inf)
 *   --local-mem=N   scratchpad capacity for --check-comm (default 0);
 *                   nonzero also exercises CommMode::GlobalWithLocalMem
 *   --topology=SPEC multi-core machine for the scheduling checks
 *                   (parseTopologySpec grammar, e.g.
 *                   "cores=4,k=2,shape=ring,link-bw=1,link-lat=3");
 *                   overrides --k with cores * per-core k. Malformed or
 *                   invalid specs (A001-A005) exit 2
 *   --threads=N     scheduling fan-out for --check-comm (default 1;
 *                   0 = hardware concurrency). Results are identical
 *                   for every value; this only changes wall-clock time
 *   --inject-comm-fault=KIND
 *                   checker self-test: corrupt the first eligible
 *                   movement plan before replaying it. KIND is
 *                   move-during-gate (expect M001), oversubscribe
 *                   (expect M003 under a finite --d), dead-teleport
 *                   (expect M005), core-range (expect M009: a move
 *                   naming the memory bank of a nonexistent core), or
 *                   link-overcap (expect M010; needs --topology with a
 *                   finite link-bw)
 *   --bounds        decompose + flatten, coarse-schedule the whole
 *                   program under RCP and LPFS, and check every leaf
 *                   and blackbox dimension against the static makespan
 *                   lower bounds (codes B001-B007); reports per-leaf
 *                   and program optimality gaps (makespan / bound)
 *   --bounds-json=PATH
 *                   write the --bounds gap report as machine-readable
 *                   JSON (schema msq-optimality-gap-v1) to PATH
 *   --scheduler=rcp|lpfs|opt
 *                   restrict the --check-comm / --bounds / --estimate
 *                   sweeps to one leaf scheduler instead of the default
 *                   RCP+LPFS pair; opt is the branch-and-bound optimal
 *                   tier (sched/opt.hh), whose proven-optimal leaves are
 *                   certified by the B007 check
 *   --opt-budget=N  node budget for --scheduler=opt (default 200000;
 *                   0 forces the fallback everywhere). Budgets are
 *                   counted in search nodes, not wall-clock, so runs
 *                   are bit-identical across machines
 *   --opt-fallback=rcp|lpfs
 *                   which heuristic --scheduler=opt falls back to when
 *                   the leaf is too big or the budget runs out
 *                   (default lpfs)
 *   --comm-mode=none|global
 *                   communication model for --bounds / --estimate
 *                   (default global, or global+local-mem when
 *                   --local-mem is nonzero). Under none, makespans are
 *                   pure compute steps, which is where the compute-step
 *                   lower bounds are tight and --scheduler=opt proves
 *                   most small leaves optimal; under global, movement
 *                   cycles make the bound unreachable for
 *                   communication-bound leaves and opt falls back
 *                   honestly
 *   --estimate      decompose + flatten, then compute the exact
 *                   whole-program resource estimate under RCP and LPFS
 *                   via the schedule-summary analysis (each distinct
 *                   leaf scheduled once, composed through the repeat
 *                   algebra) and cross-check it field-for-field against
 *                   independently computed ground truth (codes
 *                   E001-E006); any divergence is a hard error
 *   --estimate-json=PATH
 *                   write the --estimate report as machine-readable
 *                   JSON (schema msq-resource-estimate-v1) to PATH
 *   --workload=NAME verify the built-in scaled benchmark NAME (e.g.
 *                   grovers, bwt, gse, tfp, bf, cn, sha1, shors)
 *                   instead of / in addition to input files; repeatable
 *   --params=paper|scaled|tiny
 *                   which parameter preset --workload builds (default
 *                   scaled; paper instantiates the paper's problem
 *                   sizes, e.g. BWT n=300 s=3000, Shors n=512; tiny
 *                   builds minimum legal sizes whose leaves fit the
 *                   OptScheduler's exhaustive tier)
 *   --scale=N       repeat-wrap each --workload entry module N times
 *                   before checking, multiplying every resource total
 *                   by N without changing the distinct-module set --
 *                   paper-scale (10^9+ gate) instantiation stays cheap
 *                   because estimation is O(distinct leaves)
 *   --metrics-json=PATH
 *                   write the run's metrics registry (verify.* counters
 *                   plus, under --check-comm, the full passes.* /
 *                   sched.* / comm.* set) as JSON to PATH
 *   --trace-json=PATH
 *                   enable the trace recorder and write a Chrome
 *                   trace-event file (chrome://tracing, ui.perfetto.dev)
 *                   to PATH
 *
 * Exit codes: 0 all inputs clean, 1 verification/lint failures,
 * 2 parse or usage errors (parse errors win over verification ones).
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/qubit_analyses.hh"
#include "analysis/qubit_mapping.hh"
#include "arch/multi_simd.hh"
#include "frontend/parser.hh"
#include "frontend/qasm_reader.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/flatten.hh"
#include "passes/pass_manager.hh"
#include "passes/rotation_decomposer.hh"
#include "sched/comm.hh"
#include "sched/coarse.hh"
#include "sched/lpfs.hh"
#include "sched/opt.hh"
#include "sched/rcp.hh"
#include "sched/validator.hh"
#include "support/diagnostic.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"
#include "verify/bound_checker.hh"
#include "verify/comm_checker.hh"
#include "verify/estimate_checker.hh"
#include "verify/linter.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

using namespace msq;

namespace {

enum class Format { Auto, Scaffold, Qasm };

enum class Outcome { Clean, Dirty, ParseError };

enum class ParamsPreset { Scaled, Paper, Tiny };

const char *
paramsPresetName(ParamsPreset preset)
{
    switch (preset) {
      case ParamsPreset::Scaled:
        return "scaled";
      case ParamsPreset::Paper:
        return "paper";
      case ParamsPreset::Tiny:
        return "tiny";
    }
    return "unknown";
}

struct Options
{
    Format format = Format::Auto;
    bool lint = true;
    bool werror = false;
    bool quiet = false;
    bool dataflow = false;
    bool checkComm = false;
    bool bounds = false;
    bool estimate = false;
    ParamsPreset params = ParamsPreset::Scaled;
    bool paramsGiven = false;
    unsigned k = 4;
    uint64_t d = unbounded;
    uint64_t localMem = 0;
    /** --topology spec; empty = the flat single-core machine. */
    std::string topology;
    uint64_t scale = 1;
    unsigned threads = 1;
    /** --scheduler value; empty = the default RCP+LPFS pair. */
    std::string scheduler;
    /** --comm-mode value; empty = derive from --local-mem. */
    std::string commMode;
    uint64_t optBudget = OptScheduler::Options{}.nodeBudget;
    bool optBudgetGiven = false;
    OptFallback optFallback = OptFallback::Lpfs;
    bool optFallbackGiven = false;
    std::string injectFault;
    std::string boundsJson;
    std::string estimateJson;
    std::string metricsJson;
    std::string traceJson;
    std::vector<std::string> files;
    std::vector<std::string> workloads;
};

/**
 * The machine every scheduling check runs on: --k/--d/--local-mem,
 * reshaped by --topology when given. The spec was validated at argv
 * time, so this cannot fail here.
 */
MultiSimdArch
makeArch(const Options &options)
{
    MultiSimdArch arch(options.k, options.d, options.localMem);
    if (!options.topology.empty()) {
        std::string error;
        if (!parseTopologySpec(options.topology, arch, error))
            fatal("--topology=" + options.topology + ": " + error);
    }
    return arch;
}

/** Communication model --bounds / --estimate cost schedules with. */
CommMode
resolveCommMode(const Options &options)
{
    if (options.commMode == "none")
        return CommMode::None;
    if (options.commMode == "global")
        return CommMode::Global;
    return options.localMem > 0 ? CommMode::GlobalWithLocalMem
                                : CommMode::Global;
}

/**
 * The leaf schedulers a scheduling check sweeps: the RCP+LPFS pair by
 * default, or the single scheduler --scheduler selected. The opt tier
 * is built to judge its certificates under @p mode, the same
 * communication model the calling check costs schedules with.
 */
std::vector<std::unique_ptr<LeafScheduler>>
makeCheckSchedulers(const Options &options, CommMode mode)
{
    std::vector<std::unique_ptr<LeafScheduler>> out;
    if (options.scheduler.empty() || options.scheduler == "rcp")
        out.push_back(std::make_unique<RcpScheduler>());
    if (options.scheduler.empty() || options.scheduler == "lpfs")
        out.push_back(std::make_unique<LpfsScheduler>());
    if (options.scheduler == "opt") {
        OptScheduler::Options opt;
        opt.nodeBudget = options.optBudget;
        opt.commMode = mode;
        opt.fallback = options.optFallback;
        out.push_back(std::make_unique<OptScheduler>(opt));
    }
    return out;
}

/** One (input, scheduler) slice of the --bounds-json report. */
struct BoundsJsonEntry
{
    std::string input;     ///< file path or "workload:<name>"
    std::string scheduler; ///< "rcp" / "lpfs" / "opt"
    ProgramGapReport report;
};

/** One (input, scheduler) slice of the --estimate-json report. */
struct EstimateJsonEntry
{
    std::string input;     ///< file path or "workload:<name>"
    std::string scheduler; ///< "rcp" / "lpfs"
    ProgramResourceEstimate est;
    EstimateCheckStats stats;
    bool exact = true; ///< checkEstimateExactness added no errors
};

void
usage(std::ostream &out)
{
    out << "usage: msq-verify [--scaffold|--qasm] [--no-lint] [--Werror]"
           " [--quiet]\n"
           "                  [--dataflow] [--check-comm] [--k=N] [--d=N]"
           " [--local-mem=N]\n"
           "                  [--topology=SPEC] [--threads=N]\n"
           "                  [--inject-comm-fault=move-during-gate|"
           "oversubscribe|\n"
           "                      dead-teleport|core-range|link-overcap]\n"
           "                  [--bounds] [--bounds-json=PATH]"
           " [--workload=NAME]\n"
           "                  [--scheduler=rcp|lpfs|opt] [--opt-budget=N]"
           " [--opt-fallback=rcp|lpfs]\n"
           "                  [--comm-mode=none|global]\n"
           "                  [--estimate] [--estimate-json=PATH]"
           " [--params=paper|scaled|tiny]\n"
           "                  [--scale=N]\n"
           "                  [--metrics-json=PATH] [--trace-json=PATH]\n"
           "                  <file>...\n";
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
parseCount(const std::string &value, uint64_t &out)
{
    if (value.empty())
        return false;
    if (value == "inf" || value == "unbounded") {
        out = unbounded;
        return true;
    }
    uint64_t result = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            return false;
        result = result * 10 + (c - '0');
    }
    out = result;
    return true;
}

/** Print (and, under --Werror, promote) every collected diagnostic. */
void
emitDiagnostics(const std::string &path, const DiagnosticEngine &diags,
                const Options &options)
{
    if (!options.quiet) {
        for (const Diagnostic &diag : diags.diagnostics()) {
            Diagnostic shown = diag;
            if (options.werror && shown.severity == Severity::Warning)
                shown.severity = Severity::Error;
            std::cout << path << ": " << shown.format() << "\n";
        }
    }
    size_t errors = diags.numErrors();
    size_t warnings = diags.numWarnings();
    if (options.werror) {
        errors += warnings;
        warnings = 0;
    }
    std::cout << path << ": " << errors << " error(s), " << warnings
              << " warning(s)\n";
}

/** --dataflow: human-readable interprocedural facts per module. */
void
printDataflow(const std::string &path, const Program &prog)
{
    LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
    EntanglementGroups groups = EntanglementGroups::analyze(prog);
    if (!liveness.valid()) {
        std::cout << path << ": dataflow: skipped (no entry module or "
                             "recursive call graph)\n";
        return;
    }
    for (ModuleId id : prog.reachableModules()) {
        const Module &mod = prog.module(id);
        const ModuleLiveness &ml = liveness.module(id);
        std::cout << path << ": dataflow: module " << mod.name() << ": "
                  << mod.numQubits() << " qubit(s) ("
                  << mod.numParams() << " param(s)), " << mod.numOps()
                  << " op(s), " << groups.numEntangledGroups(id)
                  << " entangled group(s)\n";
        for (QubitId q = 0; q < mod.numQubits(); ++q) {
            std::cout << path << ": dataflow:   " << mod.qubitName(q)
                      << ": ";
            if (ml.ranges[q].used) {
                std::cout << "live ops [" << ml.ranges[q].firstUse << ".."
                          << ml.ranges[q].lastUse << "]";
            } else if (ml.locallyReferenced[q]) {
                std::cout << "transitively unused (only passed to calls "
                             "that ignore it)";
            } else {
                std::cout << "never used";
            }
            std::cout << "\n";
        }
    }
}

/**
 * Corrupt @p sched's movement plan for the checker self-test.
 * @return true when a fault was injected (some kinds need a schedule
 * with particular structure and skip ineligible ones).
 */
bool
injectCommFault(LeafSchedule &sched, const MultiSimdArch &arch,
                const std::string &kind)
{
    const Module &mod = sched.module();
    const uint64_t num_steps = sched.computeTimesteps();

    // All mutation goes through LeafSchedule::appendMove, which detaches
    // a private buffer copy when the schedule is aliased (e.g. cached);
    // the read-only planning below uses the immutable views.

    if (kind == "move-during-gate") {
        for (ScheduleWalker walker(sched); !walker.atEnd();
             walker.next()) {
            TimestepView step = walker.step();
            for (RegionSlotView slot : step) {
                if (slot.ops()[0] >= mod.numOps())
                    continue;
                const Operation &op = mod.op(slot.ops()[0]);
                if (op.operands.empty())
                    continue;
                Move fault;
                fault.qubit = op.operands[0];
                fault.from = Location::inRegion(slot.region());
                fault.to = Location::global();
                fault.blocking = true;
                sched.appendMove(walker.index(), fault);
                return true;
            }
        }
        return false;
    }

    if (kind == "oversubscribe") {
        if (num_steps == 0)
            return false;
        TimestepView step = sched.step(0);
        std::vector<bool> touched(mod.numQubits(), false);
        for (RegionSlotView slot : step)
            for (uint32_t op_index : slot.ops())
                if (op_index < mod.numOps())
                    for (QubitId q : mod.op(op_index).operands)
                        if (q < touched.size())
                            touched[q] = true;
        for (const Move &move : step.moves())
            if (move.qubit < touched.size())
                touched[move.qubit] = true;
        bool injected = false;
        // Cram every untouched qubit into region 0; with a finite d
        // this oversubscribes it.
        for (QubitId q = 0; q < mod.numQubits(); ++q) {
            if (touched[q])
                continue;
            Move fault;
            fault.qubit = q;
            fault.from = Location::global();
            fault.to = Location::inRegion(0);
            fault.blocking = false;
            sched.appendMove(0, fault);
            injected = true;
        }
        return injected;
    }

    if (kind == "core-range") {
        // A move whose memory-bank endpoint names a core the topology
        // does not have. Works on any machine: the flat topology has
        // exactly core 0, so bank 1 is already out of range (M009).
        if (num_steps == 0 || mod.numQubits() == 0)
            return false;
        const std::vector<unsigned> home =
            computeQubitMapping(mod, arch.topology);
        Move fault;
        fault.qubit = 0;
        fault.from = arch.topology.multiCore()
                         ? Location::inMemory(home[0])
                         : Location::global();
        fault.to = Location::inMemory(arch.topology.cores);
        fault.blocking = true;
        sched.appendMove(0, fault);
        return true;
    }

    if (kind == "link-overcap") {
        // Over-subscribe one inter-core link with masked teleports:
        // linkBandwidth + 1 qubits of one core all teleported to the
        // next core in the same timestep (M010). Needs a multi-core
        // topology with a finite link bandwidth.
        const Topology &topo = arch.topology;
        if (!topo.multiCore() || topo.linkBandwidth == unbounded ||
            num_steps == 0)
            return false;
        // Replay the plan from the home mapping to learn where every
        // qubit sits at the final step.
        const std::vector<unsigned> home =
            computeQubitMapping(mod, topo);
        std::vector<Location> loc(mod.numQubits());
        for (QubitId q = 0; q < mod.numQubits(); ++q)
            loc[q] = Location::inMemory(home[q]);
        for (ScheduleWalker walker(sched); !walker.atEnd();
             walker.next()) {
            for (const Move &move : walker.step().moves())
                if (move.qubit < loc.size())
                    loc[move.qubit] = move.to;
        }
        std::vector<std::vector<QubitId>> byCore(topo.cores);
        for (QubitId q = 0; q < mod.numQubits(); ++q)
            byCore[locationCore(loc[q], arch)].push_back(q);
        unsigned best = 0;
        for (unsigned c = 1; c < topo.cores; ++c)
            if (byCore[c].size() > byCore[best].size())
                best = c;
        if (byCore[best].size() < topo.linkBandwidth + 1)
            return false;
        const unsigned target = (best + 1) % topo.cores;
        const uint64_t final_step = num_steps - 1;
        for (uint64_t i = 0; i < topo.linkBandwidth + 1; ++i) {
            Move fault;
            fault.qubit = byCore[best][i];
            fault.from = loc[fault.qubit];
            fault.to = Location::inMemory(target);
            fault.blocking = false;
            sched.appendMove(final_step, fault);
        }
        return true;
    }

    if (kind == "dead-teleport") {
        if (num_steps == 0)
            return false;
        // Replay the plan to learn final locations and last uses.
        constexpr uint64_t neverUsed =
            std::numeric_limits<uint64_t>::max();
        std::vector<Location> loc(mod.numQubits(), Location::global());
        std::vector<uint64_t> last_use(mod.numQubits(), neverUsed);
        for (ScheduleWalker walker(sched); !walker.atEnd();
             walker.next()) {
            TimestepView step = walker.step();
            for (const Move &move : step.moves())
                if (move.qubit < loc.size())
                    loc[move.qubit] = move.to;
            for (RegionSlotView slot : step)
                for (uint32_t op_index : slot.ops())
                    if (op_index < mod.numOps())
                        for (QubitId q : mod.op(op_index).operands)
                            if (q < last_use.size())
                                last_use[q] = walker.index();
        }
        uint64_t final_step = num_steps - 1;
        for (QubitId q = 0; q < mod.numQubits(); ++q) {
            bool dead = last_use[q] == neverUsed ||
                        last_use[q] < final_step;
            if (!dead)
                continue;
            Move fault;
            fault.qubit = q;
            fault.from = loc[q];
            fault.to = loc[q].isRegion()
                           ? Location::inLocalMem(loc[q].region)
                           : Location::inRegion(0);
            fault.blocking = true;
            sched.appendMove(final_step, fault);
            return true;
        }
        return false;
    }

    return false;
}

/**
 * Shared lowering for --check-comm and --bounds: decompose Toffolis,
 * decompose rotations, flatten small modules into primitive leaves.
 */
void
lowerForScheduling(Program &prog, MetricsRegistry &metrics)
{
    PassManager pm;
    pm.setMetrics(&metrics);
    pm.add(std::make_unique<DecomposeToffoliPass>());
    RotationDecomposerPass::Config rot;
    rot.sequenceLength = 32;
    pm.add(std::make_unique<RotationDecomposerPass>(rot));
    pm.add(std::make_unique<FlattenPass>(30'000));
    pm.run(prog);
}

/**
 * --check-comm: schedule each reachable leaf of the lowered program
 * under RCP and LPFS, derive the movement plan, and replay it through
 * the race detector. Also coarse-schedules the whole program and
 * validates it (codes C001-C006).
 */
void
checkCommunication(const std::string &path, Program &prog,
                   const Options &options, DiagnosticEngine &diags,
                   MetricsRegistry &metrics)
{
    const MultiSimdArch arch = makeArch(options);

    std::vector<CommMode> modes{CommMode::Global};
    if (options.localMem > 0)
        modes.push_back(CommMode::GlobalWithLocalMem);

    const auto schedulers =
        makeCheckSchedulers(options, CommMode::Global);

    bool fault_pending = !options.injectFault.empty();
    for (const auto &scheduler : schedulers) {
        for (CommMode mode : modes) {
            CommunicationAnalyzer analyzer(arch, mode);
            for (ModuleId id : prog.reachableModules()) {
                const Module &mod = prog.module(id);
                if (!mod.isLeaf() || mod.numOps() == 0)
                    continue;
                LeafSchedule sched = scheduler->schedule(mod, arch);
                analyzer.annotate(sched);
                bool faulted = false;
                if (fault_pending &&
                    injectCommFault(sched, arch, options.injectFault)) {
                    fault_pending = false;
                    faulted = true;
                }
                CommCheckStats stats;
                bool ok = checkCommSchedule(sched, arch, diags, &stats);
                // A deliberately corrupted plan no longer satisfies the
                // S010-S014 invariants either; only cross-check clean
                // replays against the leaf validator.
                if (!faulted)
                    validateLeafSchedule(sched, arch, true, &diags);
                if (!options.quiet) {
                    std::cout << path << ": check-comm ["
                              << scheduler->name() << "/"
                              << commModeName(mode) << "] module "
                              << mod.name() << ": " << stats.steps
                              << " step(s), " << stats.teleports
                              << " teleport(s) (" << stats.maskedTeleports
                              << " masked), " << stats.localMoves
                              << " local move(s)"
                              << (faulted ? ", fault injected" : "")
                              << (ok ? "" : " -- VIOLATIONS") << "\n";
                }
            }
        }
    }
    if (fault_pending) {
        diags.error(DiagCode::CommMoveSourceMismatch,
                    csprintf("--inject-comm-fault=%s: no eligible "
                             "schedule to corrupt",
                             options.injectFault.c_str()));
    }

    CoarseScheduler::Options coarse_options;
    coarse_options.numThreads = options.threads;
    coarse_options.leafCache = std::make_shared<LeafScheduleCache>();
    coarse_options.metrics = &metrics;
    CoarseScheduler coarse(arch, *schedulers.back(), CommMode::Global,
                           coarse_options);
    ProgramSchedule psched = coarse.schedule(prog);
    validateProgramSchedule(prog, psched, arch, &diags);
}

/**
 * --bounds: coarse-schedule the lowered program under RCP and LPFS,
 * check every blackbox dimension and the program total against the
 * static makespan lower bounds (codes B001-B006), and report per-leaf
 * optimality gaps.
 */
void
checkBounds(const std::string &path, Program &prog,
            const Options &options, DiagnosticEngine &diags,
            MetricsRegistry &metrics,
            std::vector<BoundsJsonEntry> &json_entries)
{
    const MultiSimdArch arch = makeArch(options);
    const CommMode mode = resolveCommMode(options);

    for (const auto &scheduler : makeCheckSchedulers(options, mode)) {
        CoarseScheduler::Options coarse_options;
        coarse_options.numThreads = options.threads;
        coarse_options.leafCache = std::make_shared<LeafScheduleCache>();
        coarse_options.metrics = &metrics;
        CoarseScheduler coarse(arch, *scheduler, mode, coarse_options);
        ProgramSchedule psched = coarse.schedule(prog);

        ProgramGapReport report;
        BoundCheckStats stats;
        const bool ok = checkScheduleBounds(prog, psched, arch, mode,
                                            diags, &report, &stats);
        metrics.counter("verify.bounds.leaves").add(stats.leavesChecked);
        metrics.counter("verify.bounds.dims").add(stats.dimsChecked);
        if (!ok)
            metrics.counter("verify.bounds.violations").add(1);

        uint64_t proven = 0;
        for (const LeafGapRecord &leaf : report.leaves)
            if (leaf.provenance == ScheduleProvenance::Optimal)
                ++proven;
        if (!options.quiet) {
            for (const LeafGapRecord &leaf : report.leaves) {
                std::cout << path << ": bounds [" << scheduler->name()
                          << "] leaf " << leaf.module << ": makespan "
                          << leaf.makespan << ", bound "
                          << leaf.lowerBound << " (cp "
                          << leaf.bounds.criticalPath << ", res "
                          << leaf.bounds.resource << ", int "
                          << leaf.bounds.interval << "), gap "
                          << csprintf("%.3f", leaf.gap) << " ["
                          << scheduleProvenanceName(leaf.provenance)
                          << "]\n";
            }
        }
        std::cout << path << ": bounds [" << scheduler->name()
                  << "]: program makespan " << report.programMakespan
                  << ", bound " << report.programLowerBound << ", gap "
                  << csprintf("%.3f", report.programGap) << ", "
                  << report.leaves.size() << " leaf record(s), "
                  << proven << " proven optimal"
                  << (ok ? "" : " -- VIOLATIONS") << "\n";

        json_entries.push_back(
            {path, scheduler->name(), std::move(report)});
    }
}

/**
 * --estimate: compute the exact schedule-summary resource estimate
 * under RCP and LPFS and cross-check it against independently computed
 * ground truth (codes E001-E006). The estimate itself is O(distinct
 * leaves) and survives any --scale factor; the E004 unrolled-walk
 * cross-check is budget-gated and silently skipped at true paper scale.
 */
void
checkEstimate(const std::string &path, Program &prog,
              const Options &options, DiagnosticEngine &diags,
              MetricsRegistry &metrics,
              std::vector<EstimateJsonEntry> &json_entries)
{
    const MultiSimdArch arch = makeArch(options);
    const CommMode mode = resolveCommMode(options);

    for (const auto &scheduler : makeCheckSchedulers(options, mode)) {
        EstimateOptions eopts;
        eopts.numThreads = options.threads;
        eopts.cache = std::make_shared<LeafScheduleCache>();
        eopts.metrics = &metrics;
        eopts.diags = &diags;
        ProgramResourceEstimate est =
            computeProgramEstimate(prog, arch, *scheduler, mode, eopts);

        EstimateCheckStats stats;
        // Reuse the populated cache so the checker's fresh leaf
        // schedules cross-check the cached ones instead of paying for
        // a second sweep of the widths.
        const bool exact = checkEstimateExactness(
            prog, arch, *scheduler, mode, est, diags, eopts, &stats);

        const ResourceSummary &sum = est.program;
        if (!options.quiet) {
            std::cout << path << ": estimate [" << scheduler->name()
                      << "] serial: " << sum.serialCycles
                      << " cycle(s) (" << sum.commCycles << " comm, "
                      << csprintf("%.1f", 100.0 * sum.commFraction())
                      << "%)\n";
            std::cout << path << ": estimate [" << scheduler->name()
                      << "] comm: " << sum.teleportMoves
                      << " teleport(s) (" << sum.blockingTeleports
                      << " blocking), " << sum.localMoves
                      << " local move(s), " << sum.eprPairs()
                      << " EPR pair(s)\n";
            std::cout << path << ": estimate [" << scheduler->name()
                      << "] leaves: " << est.distinctLeafSchedules
                      << " distinct schedule(s), " << est.leafModules
                      << " leaf module(s), " << est.reachableModules
                      << " reachable, cache " << est.cacheHits
                      << " hit(s)/" << est.cacheMisses << " miss(es)\n";
            std::cout << path << ": estimate [" << scheduler->name()
                      << "] occupancy: peak " << sum.peakActiveRegions
                      << " region(s), mean "
                      << csprintf("%.2f", sum.meanRegionOccupancy())
                      << " operand(s)/active region";
            for (size_t b = 0; b < ResourceSummary::numOccupancyBuckets();
                 ++b) {
                if (b < sum.occupancy.size() && sum.occupancy[b]) {
                    std::cout << ", ["
                              << ResourceSummary::occupancyLabel(b)
                              << "] " << sum.occupancy[b];
                }
            }
            std::cout << "\n";
        }
        std::cout << path << ": estimate [" << scheduler->name()
                  << "]: " << sum.gateOps << " gate(s), makespan "
                  << est.makespanCycles << ", speedup "
                  << csprintf("%.2f", est.sequentialSpeedup())
                  << " (naive "
                  << csprintf("%.2f", est.naiveSpeedup()) << "), comm "
                  << csprintf("%.1f", 100.0 * sum.commFraction())
                  << "%, " << est.distinctLeafSchedules
                  << " distinct leaf schedule(s)"
                  << (est.saturated ? ", SATURATED" : "")
                  << (exact ? "" : " -- INEXACT") << "\n";

        json_entries.push_back(
            {path, scheduler->name(), std::move(est), stats, exact});
    }
}

/** Minimal JSON string escaping (module names are identifiers, but be
 * safe about quotes and backslashes anyway). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += csprintf("\\u%04x", c);
            continue;
        }
        out += c;
    }
    return out;
}

/** Write the accumulated --bounds-json gap report. */
bool
writeBoundsJson(const Options &options,
                const std::vector<BoundsJsonEntry> &entries)
{
    if (options.boundsJson.empty())
        return true;
    std::ofstream out(options.boundsJson);
    if (!out) {
        std::cerr << "msq-verify: cannot write bounds report to '"
                  << options.boundsJson << "'\n";
        return false;
    }
    const MultiSimdArch arch = makeArch(options);
    const CommMode mode = resolveCommMode(options);
    out << "{\n"
        << "  \"schema\": \"msq-optimality-gap-v1\",\n"
        << "  \"arch\": \"" << jsonEscape(arch.describe()) << "\",\n"
        << "  \"mode\": \"" << commModeName(mode) << "\",\n"
        << "  \"inputs\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const BoundsJsonEntry &entry = entries[i];
        const ProgramGapReport &report = entry.report;
        out << (i ? ",\n" : "\n")
            << "    {\n"
            << "      \"input\": \"" << jsonEscape(entry.input)
            << "\",\n"
            << "      \"scheduler\": \"" << jsonEscape(entry.scheduler)
            << "\",\n"
            << "      \"saturated\": "
            << (report.saturated ? "true" : "false") << ",\n"
            << "      \"program\": {\"makespan\": "
            << report.programMakespan << ", \"lower_bound\": "
            << report.programLowerBound << ", \"gap\": "
            << csprintf("%.6f", report.programGap) << "},\n"
            << "      \"leaves\": [";
        for (size_t j = 0; j < report.leaves.size(); ++j) {
            const LeafGapRecord &leaf = report.leaves[j];
            out << (j ? ",\n" : "\n")
                << "        {\"module\": \"" << jsonEscape(leaf.module)
                << "\", \"gates\": " << leaf.gates << ", \"qubits\": "
                << leaf.qubits << ", \"invocations\": "
                << leaf.invocations << ", \"width\": " << leaf.width
                << ", \"makespan\": " << leaf.makespan
                << ", \"critical_path_bound\": "
                << leaf.bounds.criticalPath << ", \"resource_bound\": "
                << leaf.bounds.resource << ", \"interval_bound\": "
                << leaf.bounds.interval << ", \"lower_bound\": "
                << leaf.lowerBound << ", \"gap\": "
                << csprintf("%.6f", leaf.gap) << ", \"provenance\": \""
                << scheduleProvenanceName(leaf.provenance) << "\"}";
        }
        out << (report.leaves.empty() ? "]" : "\n      ]") << "\n    }";
    }
    out << (entries.empty() ? "]" : "\n  ]") << "\n}\n";
    return true;
}

/** Write the accumulated --estimate-json resource report. */
bool
writeEstimateJson(const Options &options,
                  const std::vector<EstimateJsonEntry> &entries)
{
    if (options.estimateJson.empty())
        return true;
    std::ofstream out(options.estimateJson);
    if (!out) {
        std::cerr << "msq-verify: cannot write estimate report to '"
                  << options.estimateJson << "'\n";
        return false;
    }
    const MultiSimdArch arch = makeArch(options);
    const CommMode mode = resolveCommMode(options);
    out << "{\n"
        << "  \"schema\": \"msq-resource-estimate-v1\",\n"
        << "  \"arch\": \"" << jsonEscape(arch.describe()) << "\",\n"
        << "  \"mode\": \"" << commModeName(mode) << "\",\n"
        << "  \"scale\": " << options.scale << ",\n"
        << "  \"params\": \"" << paramsPresetName(options.params)
        << "\",\n"
        << "  \"inputs\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const EstimateJsonEntry &entry = entries[i];
        const ResourceSummary &sum = entry.est.program;
        out << (i ? ",\n" : "\n")
            << "    {\n"
            << "      \"input\": \"" << jsonEscape(entry.input)
            << "\",\n"
            << "      \"scheduler\": \"" << jsonEscape(entry.scheduler)
            << "\",\n"
            << "      \"saturated\": "
            << (entry.est.saturated ? "true" : "false") << ",\n"
            << "      \"exact\": " << (entry.exact ? "true" : "false")
            << ",\n"
            << "      \"checks\": {\"leaf_folds\": "
            << entry.stats.leafFoldsChecked << ", \"modules\": "
            << entry.stats.modulesChecked << ", \"unrolled\": "
            << (entry.stats.unrolledChecked ? "true" : "false")
            << "},\n"
            << "      \"program\": {\n"
            << "        \"gate_ops\": " << sum.gateOps << ",\n"
            << "        \"serial_cycles\": " << sum.serialCycles
            << ",\n"
            << "        \"comm_cycles\": " << sum.commCycles << ",\n"
            << "        \"teleport_moves\": " << sum.teleportMoves
            << ",\n"
            << "        \"blocking_teleports\": "
            << sum.blockingTeleports << ",\n"
            << "        \"local_moves\": " << sum.localMoves << ",\n"
            << "        \"epr_pairs\": " << sum.eprPairs() << ",\n"
            << "        \"operand_touches\": " << sum.operandTouches
            << ",\n"
            << "        \"active_region_steps\": "
            << sum.activeRegionSteps << ",\n"
            << "        \"peak_region_occupancy\": "
            << sum.peakRegionOccupancy << ",\n"
            << "        \"peak_blocking_moves_per_step\": "
            << sum.peakBlockingMovesPerStep << ",\n"
            << "        \"peak_active_regions\": "
            << sum.peakActiveRegions << ",\n"
            << "        \"call_invocations\": " << sum.callInvocations
            << ",\n"
            << "        \"mean_region_occupancy\": "
            << csprintf("%.6f", sum.meanRegionOccupancy()) << ",\n"
            << "        \"comm_fraction\": "
            << csprintf("%.6f", sum.commFraction()) << "\n"
            << "      },\n"
            << "      \"makespan_cycles\": " << entry.est.makespanCycles
            << ",\n"
            << "      \"sequential_speedup\": "
            << csprintf("%.6f", entry.est.sequentialSpeedup()) << ",\n"
            << "      \"naive_speedup\": "
            << csprintf("%.6f", entry.est.naiveSpeedup()) << ",\n"
            << "      \"distinct_leaf_schedules\": "
            << entry.est.distinctLeafSchedules << ",\n"
            << "      \"leaf_modules\": " << entry.est.leafModules
            << ",\n"
            << "      \"reachable_modules\": "
            << entry.est.reachableModules << ",\n"
            << "      \"cache\": {\"hits\": " << entry.est.cacheHits
            << ", \"misses\": " << entry.est.cacheMisses << "},\n"
            << "      \"occupancy\": [";
        for (size_t b = 0; b < sum.occupancy.size(); ++b) {
            out << (b ? ",\n" : "\n")
                << "        {\"bucket\": \""
                << jsonEscape(ResourceSummary::occupancyLabel(b))
                << "\", \"steps\": " << sum.occupancy[b] << "}";
        }
        out << (sum.occupancy.empty() ? "]" : "\n      ]")
            << "\n    }";
    }
    out << (entries.empty() ? "]" : "\n  ]") << "\n}\n";
    return true;
}

/**
 * Post-parse pipeline shared by file and --workload inputs: lint,
 * dataflow printing, and (lowering once) the --check-comm and --bounds
 * scheduling checks. @p diags may already hold parse-stage diagnostics.
 */
Outcome
checkProgram(const std::string &label, Program &prog,
             const Options &options, DiagnosticEngine &diags,
             MetricsRegistry &metrics,
             std::vector<BoundsJsonEntry> &json_entries,
             std::vector<EstimateJsonEntry> &estimate_entries)
{
    if (options.lint)
        lintProgram(prog, diags);

    if (options.dataflow && !diags.hasErrors())
        printDataflow(label, prog);

    if ((options.checkComm || options.bounds || options.estimate) &&
        !diags.hasErrors()) {
        try {
            lowerForScheduling(prog, metrics);
            if (options.checkComm)
                checkCommunication(label, prog, options, diags, metrics);
            if (options.bounds) {
                checkBounds(label, prog, options, diags, metrics,
                            json_entries);
            }
            if (options.estimate) {
                checkEstimate(label, prog, options, diags, metrics,
                              estimate_entries);
            }
        } catch (const PanicError &err) {
            std::cerr << label << ": error: scheduling checks: "
                      << err.what() << "\n";
            emitDiagnostics(label, diags, options);
            return Outcome::Dirty;
        }
    }

    emitDiagnostics(label, diags, options);

    metrics.counter("verify.diagnostics.errors").add(diags.numErrors());
    metrics.counter("verify.diagnostics.warnings")
        .add(diags.numWarnings());
    bool clean = !diags.hasErrors() &&
                 !(options.werror && diags.numWarnings() > 0);
    metrics.counter(clean ? "verify.files_clean" : "verify.files_dirty")
        .add(1);
    return clean ? Outcome::Clean : Outcome::Dirty;
}

/** @return the outcome for one input file. */
Outcome
checkFile(const std::string &path, const Options &options,
          MetricsRegistry &metrics,
          std::vector<BoundsJsonEntry> &json_entries,
          std::vector<EstimateJsonEntry> &estimate_entries)
{
    Format format = options.format;
    if (format == Format::Auto)
        format = endsWith(path, ".qasm") ? Format::Qasm : Format::Scaffold;

    TraceSpan file_span(Telemetry::trace(), "verify:" + path);
    metrics.counter("verify.files").add(1);
    DiagnosticEngine diags;
    Program prog;
    try {
        std::ifstream in(path);
        if (!in) {
            std::cerr << path << ": error: cannot open file\n";
            return Outcome::ParseError;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        prog = format == Format::Qasm
                   ? parseHierarchicalQasm(buffer.str(), &diags)
                   : parseScaffold(buffer.str(), &diags);
    } catch (const FatalError &err) {
        // Lexical / syntax error: the frontend stops at the first one,
        // so the engine has nothing — report and skip the summary.
        std::cerr << path << ": error: " << err.what() << "\n";
        metrics.counter("verify.parse_errors").add(1);
        return Outcome::ParseError;
    }

    return checkProgram(path, prog, options, diags, metrics,
                        json_entries, estimate_entries);
}

/** @return the outcome for one --workload=NAME input. */
Outcome
checkWorkload(const std::string &name, const Options &options,
              MetricsRegistry &metrics,
              std::vector<BoundsJsonEntry> &json_entries,
              std::vector<EstimateJsonEntry> &estimate_entries)
{
    std::string label = "workload:" + name;
    if (options.scale > 1)
        label += csprintf(" (x%llu)",
                          static_cast<unsigned long long>(options.scale));
    TraceSpan span(Telemetry::trace(), "verify:" + label);
    metrics.counter("verify.files").add(1);
    DiagnosticEngine diags;
    Program prog;
    try {
        const auto specs = options.params == ParamsPreset::Paper
                               ? workloads::paperParams()
                               : options.params == ParamsPreset::Tiny
                                     ? workloads::tinyParams()
                                     : workloads::scaledParams();
        prog = workloads::findWorkload(specs, name).build();
        workloads::scaleWorkload(prog, options.scale);
    } catch (const FatalError &err) {
        // Unknown shortName — treat like an unreadable input.
        std::cerr << label << ": error: " << err.what() << "\n";
        metrics.counter("verify.parse_errors").add(1);
        return Outcome::ParseError;
    }

    return checkProgram(label, prog, options, diags, metrics,
                        json_entries, estimate_entries);
}

/**
 * Write --metrics-json / --trace-json outputs.
 * @return false (after a message on stderr) when a file cannot be
 * written.
 */
bool
writeTelemetryOutputs(const Options &options, MetricsRegistry &metrics)
{
    if (!options.metricsJson.empty()) {
        std::ofstream out(options.metricsJson);
        if (!out) {
            std::cerr << "msq-verify: cannot write metrics to '"
                      << options.metricsJson << "'\n";
            return false;
        }
        metrics.snapshot().writeJson(out);
    }
    if (!options.traceJson.empty()) {
        std::ofstream out(options.traceJson);
        if (!out) {
            std::cerr << "msq-verify: cannot write trace to '"
                      << options.traceJson << "'\n";
            return false;
        }
        Telemetry::trace().writeChromeTrace(out);
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scaffold") {
            options.format = Format::Scaffold;
        } else if (arg == "--qasm") {
            options.format = Format::Qasm;
        } else if (arg == "--no-lint") {
            options.lint = false;
        } else if (arg == "--werror" || arg == "--Werror") {
            options.werror = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--dataflow") {
            options.dataflow = true;
        } else if (arg == "--check-comm") {
            options.checkComm = true;
        } else if (arg == "--bounds") {
            options.bounds = true;
        } else if (startsWith(arg, "--bounds-json=")) {
            options.boundsJson = arg.substr(14);
            if (options.boundsJson.empty()) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (arg == "--estimate") {
            options.estimate = true;
        } else if (startsWith(arg, "--estimate-json=")) {
            options.estimateJson = arg.substr(16);
            if (options.estimateJson.empty()) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--params=")) {
            const std::string value = arg.substr(9);
            if (value == "paper") {
                options.params = ParamsPreset::Paper;
            } else if (value == "scaled") {
                options.params = ParamsPreset::Scaled;
            } else if (value == "tiny") {
                options.params = ParamsPreset::Tiny;
            } else {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
            options.paramsGiven = true;
        } else if (startsWith(arg, "--scheduler=")) {
            options.scheduler = arg.substr(12);
            if (options.scheduler != "rcp" &&
                options.scheduler != "lpfs" &&
                options.scheduler != "opt") {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--opt-budget=")) {
            if (!parseCount(arg.substr(13), options.optBudget) ||
                options.optBudget == unbounded) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
            options.optBudgetGiven = true;
        } else if (startsWith(arg, "--comm-mode=")) {
            options.commMode = arg.substr(12);
            if (options.commMode != "none" &&
                options.commMode != "global") {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--opt-fallback=")) {
            const std::string value = arg.substr(15);
            if (value == "rcp") {
                options.optFallback = OptFallback::Rcp;
            } else if (value == "lpfs") {
                options.optFallback = OptFallback::Lpfs;
            } else {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
            options.optFallbackGiven = true;
        } else if (startsWith(arg, "--scale=")) {
            if (!parseCount(arg.substr(8), options.scale) ||
                options.scale == 0 || options.scale == unbounded) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--workload=")) {
            std::string name = arg.substr(11);
            if (name.empty()) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
            options.workloads.push_back(std::move(name));
        } else if (startsWith(arg, "--k=")) {
            uint64_t value = 0;
            if (!parseCount(arg.substr(4), value) || value == 0 ||
                value == unbounded) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
            options.k = static_cast<unsigned>(value);
        } else if (startsWith(arg, "--d=")) {
            if (!parseCount(arg.substr(4), options.d) || options.d == 0) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--local-mem=")) {
            if (!parseCount(arg.substr(12), options.localMem)) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--topology=")) {
            options.topology = arg.substr(11);
            // Validate now so a malformed or invalid (A001-A005) spec
            // dies through the documented exit-2 usage path instead of
            // mid-run.
            MultiSimdArch probe(options.k, options.d, options.localMem);
            std::string error;
            if (options.topology.empty() ||
                !parseTopologySpec(options.topology, probe, error)) {
                std::cerr << "msq-verify: bad value in '" << arg << "'"
                          << (error.empty() ? "" : ": " + error) << "\n";
                return 2;
            }
        } else if (startsWith(arg, "--threads=")) {
            uint64_t value = 0;
            if (!parseCount(arg.substr(10), value) || value == unbounded) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
            options.threads = static_cast<unsigned>(value);
        } else if (startsWith(arg, "--metrics-json=")) {
            options.metricsJson = arg.substr(15);
            if (options.metricsJson.empty()) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--trace-json=")) {
            options.traceJson = arg.substr(13);
            if (options.traceJson.empty()) {
                std::cerr << "msq-verify: bad value in '" << arg << "'\n";
                return 2;
            }
        } else if (startsWith(arg, "--inject-comm-fault=")) {
            options.injectFault = arg.substr(20);
            if (options.injectFault != "move-during-gate" &&
                options.injectFault != "oversubscribe" &&
                options.injectFault != "dead-teleport" &&
                options.injectFault != "core-range" &&
                options.injectFault != "link-overcap") {
                std::cerr << "msq-verify: unknown fault kind '"
                          << options.injectFault << "'\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "msq-verify: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            options.files.push_back(arg);
        }
    }
    if (options.files.empty() && options.workloads.empty()) {
        usage(std::cerr);
        return 2;
    }
    if (!options.injectFault.empty() && !options.checkComm) {
        std::cerr << "msq-verify: --inject-comm-fault requires "
                     "--check-comm\n";
        return 2;
    }
    if (!options.boundsJson.empty() && !options.bounds) {
        std::cerr << "msq-verify: --bounds-json requires --bounds\n";
        return 2;
    }
    if (!options.estimateJson.empty() && !options.estimate) {
        std::cerr << "msq-verify: --estimate-json requires --estimate\n";
        return 2;
    }
    if (options.scale > 1 && options.workloads.empty()) {
        std::cerr << "msq-verify: --scale requires --workload\n";
        return 2;
    }
    if (options.paramsGiven && options.workloads.empty()) {
        std::cerr << "msq-verify: --params requires --workload\n";
        return 2;
    }
    if (options.optBudgetGiven && options.scheduler != "opt") {
        std::cerr << "msq-verify: --opt-budget requires "
                     "--scheduler=opt\n";
        return 2;
    }
    if (options.optFallbackGiven && options.scheduler != "opt") {
        std::cerr << "msq-verify: --opt-fallback requires "
                     "--scheduler=opt\n";
        return 2;
    }
    if (!options.scheduler.empty() && !options.checkComm &&
        !options.bounds && !options.estimate) {
        std::cerr << "msq-verify: --scheduler requires --check-comm, "
                     "--bounds, or --estimate\n";
        return 2;
    }
    if (!options.commMode.empty() && !options.bounds &&
        !options.estimate) {
        std::cerr << "msq-verify: --comm-mode requires --bounds or "
                     "--estimate\n";
        return 2;
    }

    if (!options.traceJson.empty())
        Telemetry::trace().setEnabled(true);
    MetricsRegistry metrics;
    std::vector<BoundsJsonEntry> json_entries;
    std::vector<EstimateJsonEntry> estimate_entries;

    bool any_dirty = false;
    bool any_parse_error = false;
    auto tally = [&](Outcome outcome) {
        if (outcome == Outcome::Dirty)
            any_dirty = true;
        else if (outcome == Outcome::ParseError)
            any_parse_error = true;
    };
    for (const auto &path : options.files)
        tally(checkFile(path, options, metrics, json_entries,
                        estimate_entries));
    for (const auto &name : options.workloads)
        tally(checkWorkload(name, options, metrics, json_entries,
                            estimate_entries));
    if (!writeBoundsJson(options, json_entries))
        any_parse_error = true;
    if (!writeEstimateJson(options, estimate_entries))
        any_parse_error = true;
    if (!writeTelemetryOutputs(options, metrics))
        any_parse_error = true;
    if (any_parse_error)
        return 2;
    return any_dirty ? 1 : 0;
}
