/**
 * @file
 * msq-verify: standalone static-analysis driver. Parses Scaffold-subset
 * or hierarchical-QASM input, runs the IR verifier and the circuit
 * linter, prints every diagnostic with its stable code, and exits
 * nonzero when the input is malformed.
 *
 * Usage: msq-verify [options] <file.scaffold|file.qasm>...
 *   --scaffold      force Scaffold parsing regardless of extension
 *   --qasm          force hierarchical-QASM parsing
 *   --no-lint       run the verifier only (skip L*** warnings)
 *   --werror        exit nonzero on warnings too
 *   --quiet         print only the per-file summary lines
 *
 * Exit codes: 0 all inputs clean, 1 diagnostics found, 2 usage error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hh"
#include "frontend/qasm_reader.hh"
#include "support/diagnostic.hh"
#include "support/logging.hh"
#include "verify/linter.hh"
#include "verify/verifier.hh"

using namespace msq;

namespace {

enum class Format { Auto, Scaffold, Qasm };

struct Options
{
    Format format = Format::Auto;
    bool lint = true;
    bool werror = false;
    bool quiet = false;
    std::vector<std::string> files;
};

void
usage(std::ostream &out)
{
    out << "usage: msq-verify [--scaffold|--qasm] [--no-lint] [--werror]"
           " [--quiet] <file>...\n";
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** @return true when the file verified cleanly (no errors; warnings
 * count only under --werror). */
bool
checkFile(const std::string &path, const Options &options)
{
    Format format = options.format;
    if (format == Format::Auto)
        format = endsWith(path, ".qasm") ? Format::Qasm : Format::Scaffold;

    DiagnosticEngine diags;
    Program prog;
    try {
        std::ifstream in(path);
        if (!in) {
            std::cerr << path << ": error: cannot open file\n";
            return false;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        prog = format == Format::Qasm
                   ? parseHierarchicalQasm(buffer.str(), &diags)
                   : parseScaffold(buffer.str(), &diags);
    } catch (const FatalError &err) {
        // Lexical / syntax error: the frontend stops at the first one,
        // so the engine has nothing — report and skip the summary.
        std::cerr << path << ": error: " << err.what() << "\n";
        return false;
    }

    if (options.lint)
        lintProgram(prog, diags);

    if (!options.quiet) {
        for (const auto &diag : diags.diagnostics())
            std::cout << path << ": " << diag.format() << "\n";
    }
    std::cout << path << ": " << diags.numErrors() << " error(s), "
              << diags.numWarnings() << " warning(s)\n";

    return !diags.hasErrors() &&
           !(options.werror && diags.numWarnings() > 0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scaffold") {
            options.format = Format::Scaffold;
        } else if (arg == "--qasm") {
            options.format = Format::Qasm;
        } else if (arg == "--no-lint") {
            options.lint = false;
        } else if (arg == "--werror") {
            options.werror = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "msq-verify: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            options.files.push_back(arg);
        }
    }
    if (options.files.empty()) {
        usage(std::cerr);
        return 2;
    }

    bool all_clean = true;
    for (const auto &path : options.files)
        all_clean = checkFile(path, options) && all_clean;
    return all_clean ? 0 : 1;
}
