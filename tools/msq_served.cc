/**
 * @file
 * msq-served: the MSQ compile service (DESIGN.md §15).
 *
 * Reads one NDJSON compile request per stdin line, writes one NDJSON
 * response per stdout line (same order), and keeps one shared
 * LeafScheduleCache across all requests. With --cache=<path> the cache
 * is loaded at startup (warm start) and persisted periodically and at
 * EOF, so scheduling work is amortized across daemon restarts; the
 * determinism contract guarantees a warm-started daemon answers every
 * request bit-identically to a cold one (only wall-clock and
 * cache-traffic fields differ).
 *
 * Example session:
 *   $ printf '%s\n' \
 *       '{"id": 1, "workload": "grovers", "k": 8}' \
 *       '{"id": 2, "workload": "bwt", "scheduler": "rcp"}' \
 *     | msq-served --cache=/tmp/msq.cache
 *
 * Exit status: 0 on clean EOF, 2 on bad usage. Malformed requests get
 * {"ok": false} responses and never kill the daemon.
 */

#include <iostream>
#include <string>
#include <vector>

#include "arch/multi_simd.hh"
#include "core/serve.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace msq;

namespace {

struct Options
{
    ServeOptions serve;
    uint64_t batch = 1;      ///< requests handled concurrently
    uint64_t saveEvery = 64; ///< cache persistence cadence (requests)
    uint64_t flushEvery = 64; ///< telemetry flush cadence (requests)
    std::string metricsPath; ///< --metrics=<path> (periodic flush)
    bool quiet = false;
};

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options] < requests.ndjson\n"
        << "\n"
        << "One JSON compile request per input line; one JSON response\n"
        << "per output line, in order. See DESIGN.md §15 for the\n"
        << "protocol.\n"
        << "\n"
        << "options:\n"
        << "  --k=<n>          default SIMD regions (default 4)\n"
        << "  --d=<n|inf>      default region width (default inf)\n"
        << "  --local-mem=<n>  default scratchpad capacity (default 0)\n"
        << "  --epr=<n|inf>    default EPR bandwidth (default inf)\n"
        << "  --topology=<spec> default multi-core topology applied to\n"
        << "                   requests without a \"topology\" field,\n"
        << "                   e.g. cores=4,k=2,shape=ring,link-bw=1;\n"
        << "                   bad specs exit 2\n"
        << "  --threads=<n>    batch parallelism (default: hardware)\n"
        << "  --batch=<n>      requests handled concurrently (default 1;\n"
        << "                   responses stay in request order)\n"
        << "  --cache=<path>   persistent leaf-schedule cache file\n"
        << "  --save-every=<n> save the cache every n requests\n"
        << "                   (default 64; 0 = only at EOF)\n"
        << "  --metrics=<path> write a metrics JSON snapshot there\n"
        << "  --flush-every=<n> metrics flush cadence (default 64;\n"
        << "                   0 = only at EOF)\n"
        << "  --quiet          suppress startup/shutdown chatter\n";
    return 2;
}

bool
startsWith(const std::string &arg, const char *prefix)
{
    return arg.rfind(prefix, 0) == 0;
}

/** Parse a decimal count; "inf"/"unbounded" mean msq::unbounded. */
bool
parseCount(const std::string &text, uint64_t &out)
{
    if (text == "inf" || text == "unbounded") {
        out = unbounded;
        return true;
    }
    if (text.empty())
        return false;
    out = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        out = out * 10 + static_cast<uint64_t>(c - '0');
    }
    return true;
}

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        uint64_t value = 0;
        if (startsWith(arg, "--k=")) {
            if (!parseCount(arg.substr(4), value) || value == 0)
                return false;
            options.serve.k = static_cast<unsigned>(value);
        } else if (startsWith(arg, "--d=")) {
            if (!parseCount(arg.substr(4), value) || value == 0)
                return false;
            options.serve.d = value;
        } else if (startsWith(arg, "--local-mem=")) {
            if (!parseCount(arg.substr(12), value))
                return false;
            options.serve.localMem = value;
        } else if (startsWith(arg, "--epr=")) {
            if (!parseCount(arg.substr(6), value) || value == 0)
                return false;
            options.serve.eprBandwidth = value;
        } else if (startsWith(arg, "--topology=")) {
            options.serve.topology = arg.substr(11);
            // Fail fast on a malformed spec: validate it against a
            // scratch arch now rather than erroring on every request.
            MultiSimdArch probe;
            std::string error;
            if (options.serve.topology.empty() ||
                !parseTopologySpec(options.serve.topology, probe,
                                   error)) {
                std::cerr << "msq-served: bad --topology: " << error
                          << "\n";
                return false;
            }
        } else if (startsWith(arg, "--threads=")) {
            if (!parseCount(arg.substr(10), value))
                return false;
            options.serve.numThreads = static_cast<unsigned>(value);
        } else if (startsWith(arg, "--batch=")) {
            if (!parseCount(arg.substr(8), value) || value == 0)
                return false;
            options.batch = value;
        } else if (startsWith(arg, "--cache=")) {
            options.serve.cachePath = arg.substr(8);
        } else if (startsWith(arg, "--save-every=")) {
            if (!parseCount(arg.substr(13), value))
                return false;
            options.saveEvery = value;
        } else if (startsWith(arg, "--metrics=")) {
            options.metricsPath = arg.substr(10);
        } else if (startsWith(arg, "--flush-every=")) {
            if (!parseCount(arg.substr(14), value))
                return false;
            options.flushEvery = value;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else {
            return false;
        }
    }
    return true;
}

void
reportDiags(ServeEngine &engine)
{
    for (const auto &diag : engine.diags().diagnostics())
        std::cerr << diag.format() << "\n";
    engine.diags().clear();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options))
        return usage(argv[0]);

    // Daemon-lifetime telemetry: atexit flushing alone would lose every
    // counter when the daemon is killed, so the flush paths are driven
    // explicitly on a request cadence below.
    if (!options.metricsPath.empty())
        Telemetry::setMetricsPath(options.metricsPath);

    ServeEngine engine(options.serve);
    size_t preloaded = engine.loadCache();
    reportDiags(engine);
    if (!options.quiet && !options.serve.cachePath.empty()) {
        std::cerr << "msq-served: " << preloaded
                  << " cache entries preloaded from "
                  << options.serve.cachePath << "\n";
    }

    uint64_t sinceSave = 0;
    uint64_t sinceFlush = 0;
    const auto afterRequests = [&](uint64_t n) {
        sinceSave += n;
        sinceFlush += n;
        if (options.saveEvery > 0 && sinceSave >= options.saveEvery &&
            !options.serve.cachePath.empty()) {
            engine.saveCache();
            reportDiags(engine);
            sinceSave = 0;
        }
        if (options.flushEvery > 0 && sinceFlush >= options.flushEvery &&
            !options.metricsPath.empty()) {
            engine.metrics().mergeInto(Telemetry::metrics());
            Telemetry::flushEnvOutputs();
            sinceFlush = 0;
        }
    };

    std::string line;
    std::vector<std::string> batch;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        if (options.batch <= 1) {
            std::cout << engine.handleLine(line) << "\n" << std::flush;
            afterRequests(1);
            continue;
        }
        batch.push_back(line);
        if (batch.size() >= options.batch) {
            for (const std::string &response : engine.handleBatch(batch))
                std::cout << response << "\n";
            std::cout << std::flush;
            afterRequests(batch.size());
            batch.clear();
        }
    }
    if (!batch.empty()) {
        for (const std::string &response : engine.handleBatch(batch))
            std::cout << response << "\n";
        std::cout << std::flush;
    }

    if (!options.serve.cachePath.empty()) {
        engine.saveCache();
        reportDiags(engine);
    }
    if (!options.metricsPath.empty()) {
        engine.metrics().mergeInto(Telemetry::metrics());
        Telemetry::flushEnvOutputs();
    }
    if (!options.quiet) {
        std::cerr << "msq-served: " << engine.requestsServed()
                  << " requests served; cache "
                  << engine.cache().size() << " entries, "
                  << engine.cache().hits() << " hits / "
                  << engine.cache().misses() << " misses / "
                  << engine.cache().loads() << " loads\n";
    }
    return 0;
}
