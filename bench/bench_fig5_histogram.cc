/**
 * @file
 * Fig. 5 reproduction: histogram of per-module gate counts for every
 * benchmark at the paper's problem sizes, as a percentage of total
 * modules, plus the fraction of modules a flattening threshold of
 * FTh = 2M operations (3M for SHA-1) would flatten — the paper reports
 * >= 80% flattened for every benchmark.
 */

#include "common.hh"

#include "analysis/resource_estimator.hh"
#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_fig5_histogram",
                  "Fig. 5 - module gate-count histogram at paper problem "
                  "sizes; flattening threshold selection (FTh = 2M; 3M "
                  "for SHA-1)");

    ResultTable table("percentage of modules per gate-count range "
                      "(paper-scale benchmarks, pre-decomposition "
                      "modularity)");
    std::vector<std::string> header{"benchmark"};
    const auto &bounds = ModuleHistogram::bucketBounds();
    for (size_t b = 0; b <= bounds.size(); ++b)
        header.push_back(ModuleHistogram::bucketLabel(b));
    header.push_back("flattened@FTh");
    table.setHeader(header);

    for (const auto &spec : workloads::paperParams()) {
        Program prog = spec.build();
        ResourceEstimator resources(prog);
        ModuleHistogram hist(resources);

        uint64_t fth = spec.shortName == "sha1" ? 3'000'000 : 2'000'000;
        table.beginRow();
        table.addCell(spec.name);
        for (size_t b = 0; b < hist.numBuckets(); ++b)
            table.addCell(100.0 * hist.fraction(b), 1);
        table.addCell(100.0 * hist.fractionAtOrBelow(fth), 1);
    }

    table.printAscii(std::cout);
    std::cout << "\npaper reference: FTh = 2M flattens >= 80% of modules "
                 "for every benchmark except SHA-1 (which uses 3M).\n";
    return 0;
}
