/**
 * @file
 * Multi-core topology study (DESIGN.md §16): flat Multi-SIMD vs 2/4/8
 * cores, under RCP and LPFS, with the greedy qubit-partitioning pass
 * against the naive round-robin placement. Reports whole-program
 * makespan and inter-core teleport counts per configuration, plus the
 * interaction-cut quality of the mapping itself.
 *
 * The bench is also a gate, not just a report:
 *
 *   1. on the 4-core ring, every workload must compile under BOTH
 *      schedulers with the M-code comm checker clean (any error fails
 *      the bench);
 *   2. the greedy mapping must strictly beat round-robin (fewer
 *      inter-core teleports under LPFS on the 4-core ring) on at least
 *      6 of the 8 workloads.
 *
 * Deterministic fields of the JSON (makespans, teleport counts, cuts,
 * win count) are gated strictly by CI against the committed
 * BENCH_multicore.json; wall-clock fields are informational.
 *
 * Usage: bench_multicore [output.json]   (default BENCH_multicore.json
 * in the working directory)
 */

#include "common.hh"

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/qubit_mapping.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/flatten.hh"
#include "passes/pass_manager.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "support/diagnostic.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "verify/comm_checker.hh"

using namespace msq;

namespace {

/** Workloads where greedy must strictly beat round-robin. */
constexpr unsigned requiredWins = 6;

struct TopoConfig
{
    const char *name; ///< row label, e.g. "4-core"
    const char *spec; ///< parseTopologySpec string; "" = flat machine
};

/**
 * The sweep: one flat tile and three rings of growing core count. The
 * per-core k keeps the total region count at 4 for the 2- and 4-core
 * machines (same machine, different wiring); the 8-core point doubles
 * the region count, which is the regime the multi-core literature
 * targets (more total compute, slower links).
 */
const TopoConfig topoConfigs[] = {
    {"flat", ""},
    {"2-core", "cores=2,k=2,shape=ring,link-bw=2"},
    {"4-core", "cores=4,k=1,shape=ring,link-bw=2"},
    {"8-core", "cores=8,k=1,shape=ring,link-bw=2"},
};

struct Row
{
    std::string workload;
    std::string topology;
    std::string scheduler;
    std::string mapping; ///< "greedy" / "roundrobin" / "-" on flat
    uint64_t makespan = 0;
    uint64_t interCoreTeleports = 0;
    double wallMs = 0.0;
};

/** Mapping quality of one workload's flattened leaves on the 4-core
 * ring: the summed interaction weight crossing cores. */
struct CutRow
{
    std::string workload;
    size_t leaves = 0;
    uint64_t cutMapped = 0;
    uint64_t cutRoundRobin = 0;
};

MultiSimdArch
makeArch(const std::string &spec, MappingStrategy mapping)
{
    MultiSimdArch arch(4);
    if (!spec.empty()) {
        std::string error;
        if (!parseTopologySpec(spec, arch, error))
            fatal("bench_multicore: bad spec \"" + spec + "\": " + error);
        arch.topology.mapping = mapping;
    }
    return arch;
}

/** Sum of inter-core teleports over every analyzed leaf's widest
 * schedule — the quantity the mapping pass exists to shrink. */
uint64_t
sumInterCore(const ProgramSchedule &schedule)
{
    uint64_t total = 0;
    for (const ModuleScheduleInfo &info : schedule.modules)
        if (info.analyzed && info.leaf)
            total += info.comm.interCoreTeleports;
    return total;
}

/** Lower the workload exactly like the toolflow does before scheduling. */
Program
prepare(const workloads::WorkloadSpec &spec)
{
    Program prog = spec.build();
    PassManager passes;
    passes.add(std::make_unique<DecomposeToffoliPass>());
    passes.add(std::make_unique<RotationDecomposerPass>(
        Toolflow::rotationPresetFor(spec.shortName)));
    passes.add(std::make_unique<FlattenPass>(30'000));
    passes.run(prog);
    return prog;
}

void
writeJson(std::ostream &os, const std::vector<Row> &rows,
          const std::vector<CutRow> &cuts, unsigned mapped_wins,
          bool comm_check_ok)
{
    os << "{\n"
       << "  \"schema\": \"msq-multicore-v1\",\n"
       << "  \"workloads\": " << cuts.size() << ",\n"
       << "  \"required_wins\": " << requiredWins << ",\n"
       << "  \"mapped_wins\": " << mapped_wins << ",\n"
       << "  \"comm_check_ok\": " << (comm_check_ok ? "true" : "false")
       << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"workload\": \"" << row.workload
           << "\", \"topology\": \"" << row.topology
           << "\", \"scheduler\": \"" << row.scheduler
           << "\", \"mapping\": \"" << row.mapping
           << "\", \"makespan\": " << row.makespan
           << ", \"intercore_teleports\": " << row.interCoreTeleports
           << ", \"wall_ms\": " << row.wallMs << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"mapping_quality\": [\n";
    for (size_t i = 0; i < cuts.size(); ++i) {
        const CutRow &cut = cuts[i];
        os << "    {\"workload\": \"" << cut.workload
           << "\", \"leaves\": " << cut.leaves
           << ", \"cut_mapped\": " << cut.cutMapped
           << ", \"cut_roundrobin\": " << cut.cutRoundRobin << "}"
           << (i + 1 < cuts.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::banner("bench_multicore",
                  "extension (multi-core line, DESIGN.md §16) - flat "
                  "vs 2/4/8-core rings, greedy mapping vs round-robin");

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_multicore.json";

    std::vector<Row> rows;
    std::vector<CutRow> cuts;

    ResultTable table("whole-program makespan (LPFS, Global; "
                      "mapped / round-robin)");
    table.setHeader({"benchmark", "flat", "2-core", "4-core", "8-core",
                     "4c intercore m/rr"});

    for (const auto &spec : workloads::scaledParams()) {
        table.beginRow();
        table.addCell(spec.name);
        uint64_t four_core_mapped = 0, four_core_rr = 0;
        for (const TopoConfig &topo : topoConfigs) {
            std::string cell;
            for (SchedulerKind kind :
                 {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
                std::vector<MappingStrategy> strategies;
                if (*topo.spec == '\0')
                    strategies = {MappingStrategy::Greedy}; // flat: one
                else
                    strategies = {MappingStrategy::Greedy,
                                  MappingStrategy::RoundRobin};
                for (MappingStrategy strategy : strategies) {
                    MultiSimdArch arch = makeArch(topo.spec, strategy);
                    auto start = std::chrono::steady_clock::now();
                    auto result = bench::runWorkload(
                        spec, kind, CommMode::Global, arch);
                    auto wall =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start);
                    Row row;
                    row.workload = spec.shortName;
                    row.topology = topo.name;
                    row.scheduler = schedulerKindName(kind);
                    row.mapping =
                        *topo.spec == '\0'
                            ? "-"
                            : mappingStrategyName(strategy);
                    row.makespan = result.scheduledCycles;
                    row.interCoreTeleports =
                        sumInterCore(result.schedule);
                    row.wallMs = wall.count();
                    if (kind == SchedulerKind::Lpfs) {
                        if (std::string(topo.name) == "4-core") {
                            if (strategy == MappingStrategy::Greedy)
                                four_core_mapped =
                                    row.interCoreTeleports;
                            else
                                four_core_rr = row.interCoreTeleports;
                        }
                        if (strategy == MappingStrategy::Greedy) {
                            if (!cell.empty())
                                cell += " / ";
                            cell += std::to_string(row.makespan);
                        }
                    }
                    rows.push_back(std::move(row));
                }
            }
            table.addCell(cell);
        }
        table.addCell(std::to_string(four_core_mapped) + " / " +
                      std::to_string(four_core_rr));
    }
    table.printAscii(std::cout);

    // Mapping quality and the comm-check gate, both on the 4-core ring.
    bool comm_check_ok = true;
    unsigned mapped_wins = 0;
    std::cout << "\n4-core ring gates:\n";
    for (const auto &spec : workloads::scaledParams()) {
        Program prog = prepare(spec);
        MultiSimdArch mapped =
            makeArch("cores=4,k=1,shape=ring,link-bw=2",
                     MappingStrategy::Greedy);
        MultiSimdArch naive = mapped;
        naive.topology.mapping = MappingStrategy::RoundRobin;

        CutRow cut;
        cut.workload = spec.shortName;
        for (ModuleId id : prog.reachableModules()) {
            const Module &mod = prog.module(id);
            if (!mod.isLeaf() || mod.numOps() == 0)
                continue;
            ++cut.leaves;
            cut.cutMapped += mappingCutWeight(
                mod, computeQubitMapping(mod, mapped.topology));
            cut.cutRoundRobin += mappingCutWeight(
                mod, computeQubitMapping(mod, naive.topology));

            // Gate 1: both schedulers replay M-code clean.
            for (int which = 0; which < 2; ++which) {
                LeafSchedule sched =
                    which == 0
                        ? static_cast<const LeafScheduler &>(
                              RcpScheduler())
                              .schedule(mod, mapped)
                        : static_cast<const LeafScheduler &>(
                              LpfsScheduler())
                              .schedule(mod, mapped);
                CommunicationAnalyzer(mapped, CommMode::Global)
                    .annotate(sched);
                DiagnosticEngine diags;
                if (!checkCommSchedule(sched, mapped, diags)) {
                    comm_check_ok = false;
                    std::cout << "  COMM-CHECK FAILED: "
                              << spec.shortName << "/" << mod.name()
                              << " ("
                              << (which == 0 ? "rcp" : "lpfs")
                              << ")\n";
                    for (const auto &d : diags.diagnostics())
                        std::cout << "    " << d.format() << "\n";
                }
            }
        }
        cuts.push_back(cut);
    }

    // Gate 2: fewer inter-core teleports under the greedy mapping.
    for (const CutRow &cut : cuts) {
        uint64_t mapped_tp = 0, rr_tp = 0;
        for (const Row &row : rows) {
            if (row.workload != cut.workload ||
                row.topology != "4-core" || row.scheduler != "lpfs")
                continue;
            if (row.mapping == "greedy")
                mapped_tp = row.interCoreTeleports;
            else if (row.mapping == "roundrobin")
                rr_tp = row.interCoreTeleports;
        }
        const bool win = mapped_tp < rr_tp;
        mapped_wins += win ? 1 : 0;
        std::cout << "  " << cut.workload << ": intercore " << mapped_tp
                  << " mapped vs " << rr_tp << " round-robin"
                  << (win ? "" : "  [no win]") << ", cut "
                  << cut.cutMapped << " vs " << cut.cutRoundRobin
                  << "\n";
    }

    std::ofstream out(out_path);
    writeJson(out, rows, cuts, mapped_wins, comm_check_ok);
    std::cout << "\nwrote " << out_path << "\n";

    if (!comm_check_ok) {
        std::cout << "FAIL: comm checker reported errors on the 4-core "
                     "ring\n";
        return 1;
    }
    if (mapped_wins < requiredWins) {
        std::cout << "FAIL: greedy mapping beats round-robin on only "
                  << mapped_wins << "/" << cuts.size()
                  << " workloads (need >= " << requiredWins << ")\n";
        return 1;
    }
    std::cout << "PASS: clean comm replay, mapping wins "
              << mapped_wins << "/" << cuts.size() << "\n";
    return 0;
}
