/**
 * @file
 * Fig. 9 reproduction: Shor's sensitivity to the number of SIMD regions.
 * Shor's code is dominated by rotations that remain blackbox modules in
 * the coarse-grained schedule (paper §5.4); each concurrent rotation
 * occupies its own region, so unlike the other benchmarks Shor's keeps
 * gaining speedup as k grows to 8, 16, 32, 128 (with local memories).
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_fig9_shors_k",
                  "Fig. 9 - Shor's speedup vs k on Multi-SIMD(k,inf) "
                  "with local memories, k in {8, 16, 32, 128}");

    // A larger Shor's instance than the Fig. 6-8 runs: the k sweep needs
    // enough concurrent rotation blackboxes to keep 128 regions busy.
    workloads::WorkloadSpec spec{"Shors n=16", "shors",
                                 [] { return workloads::buildShors(16); }};

    ResultTable table("Shor's speedup over naive movement "
                      "(local memories = inf, rotations outlined)");
    table.setHeader({"k", "rcp", "lpfs"});

    for (unsigned k : {8u, 16u, 32u, 128u}) {
        table.beginRow();
        table.addCell(static_cast<unsigned long long>(k));
        for (SchedulerKind kind : {SchedulerKind::Rcp,
                                   SchedulerKind::Lpfs}) {
            MultiSimdArch arch(k, unbounded, unbounded);
            auto result = bench::runWorkload(
                spec, kind, CommMode::GlobalWithLocalMem, arch);
            table.addCell(result.speedupVsNaive, 2);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\ncomparison: the other benchmarks saturate by k = 4 "
                 "(Fig. 6); Shor's long serial rotation blackboxes keep "
                 "separate regions busy, so speedup keeps climbing with "
                 "k.\n";
    return 0;
}
