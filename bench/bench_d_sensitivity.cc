/**
 * @file
 * Sensitivity to the SIMD region data width d (paper §5.4: "even though
 * we practically assumed infinite amount of data-parallelism available
 * in our SIMD regions, our other experiments have shown that decreasing
 * this to below 32 qubits only causes marginal changes"). Sweeps d on
 * Multi-SIMD(4,d) for every benchmark.
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_d_sensitivity",
                  "§5.4 - sensitivity to region data width d on "
                  "Multi-SIMD(4,d), LPFS, global communication");

    ResultTable table("speedup over naive movement by d");
    table.setHeader({"benchmark", "d=4", "d=8", "d=16", "d=32", "d=inf"});

    for (const auto &spec : workloads::scaledParams()) {
        table.beginRow();
        table.addCell(spec.name);
        for (uint64_t d : {uint64_t{4}, uint64_t{8}, uint64_t{16},
                           uint64_t{32}, unbounded}) {
            auto result = bench::runWorkload(spec, SchedulerKind::Lpfs,
                                             CommMode::Global,
                                             MultiSimdArch(4, d));
            table.addCell(result.speedupVsNaive, 2);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\npaper claim: results with d >= 32 are essentially "
                 "identical to d = inf; below that, benchmarks with "
                 "word-level data parallelism degrade first.\n";
    return 0;
}
