/**
 * @file
 * Paper-scale resource estimation: reproduces the paper's table-scale
 * speedup and communication numbers (§6, Fig. 5-7 magnitudes) at true
 * gate counts (>= 10^9 gates per workload) through the schedule-summary
 * analysis — each distinct leaf is scheduled exactly once, and the
 * whole-program totals are composed through the repeat algebra in
 * O(distinct leaves) memory. No program schedule is ever materialized.
 *
 * Per workload x {RCP, LPFS}:
 *
 *   1. build the benchmark (paper parameters where the IR itself is
 *      tractable, the scaled-structure preset otherwise), lower it, and
 *      repeat-wrap the entry (workloads::scaleWorkload) until the total
 *      is at least 10^9 gates — the distinct-module set is unchanged,
 *      so estimation cost stays constant while totals reach paper scale;
 *   2. computeProgramEstimate(): exact gates / serial cycles / makespan
 *      / teleports / EPR pairs / occupancy at that scale;
 *   3. checkEstimateExactness(): every E001-E006 cross-check that is
 *      O(distinct modules) runs even at 10^9+ gates (the unrolled-walk
 *      E004 is budget-gated away); any E-error fails the bench;
 *   4. getrusage() peak RSS is sampled after every configuration and
 *      the bench exits nonzero if it ever exceeds the committed ceiling
 *      — the O(distinct leaves) memory claim, enforced.
 *
 * Usage: bench_paper_scale [output.json]   (default
 * BENCH_paper_scale.json in the working directory)
 */

#include "common.hh"

#include <chrono>
#include <fstream>
#include <memory>
#include <vector>

#include <sys/resource.h>

#include "analysis/resource_estimator.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/flatten.hh"
#include "passes/pass_manager.hh"
#include "support/saturate.hh"
#include "support/stats.hh"
#include "verify/estimate_checker.hh"

using namespace msq;

namespace {

/** Every workload is scaled until it reaches at least this many gates. */
constexpr uint64_t targetGates = 1'000'000'000;

/**
 * Peak-RSS ceiling for the whole run (KB). The estimate itself holds a
 * few schedules of <= 30k ops; the ceiling is set far above honest
 * O(distinct leaves) usage and far below what any materialized
 * 10^9-gate schedule would need (a nested walk at ~1 byte/gate would
 * already be 1 TB).
 */
constexpr long rssCeilingKb = 2'000'000;

/** Workloads whose paper-parameter IR builds are themselves tractable;
 * the rest (bwt n=300 s=3000, sha1 448/32/80, shors n=512) materialize
 * multi-GB IR before any scheduling starts and use the scaled-structure
 * preset as the base instead (DESIGN.md §13). */
bool
paperBuildTractable(const std::string &short_name)
{
    return short_name == "bf" || short_name == "cn" ||
           short_name == "gse" || short_name == "grovers" ||
           short_name == "tfp";
}

struct Row
{
    std::string workload;
    std::string scheduler;
    std::string baseParams; ///< "paper" / "scaled"
    uint64_t baseGates;
    uint64_t scaleFactor;
    uint64_t gates;
    uint64_t serialCycles;
    uint64_t makespanCycles;
    double sequentialSpeedup;
    double naiveSpeedup;
    double commFraction;
    uint64_t teleports;
    uint64_t eprPairs;
    uint64_t distinctLeaves;
    uint64_t reachableModules;
    bool exact;
    double wallMs;
    long peakRssKb;
};

long
peakRssKb()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss;
}

/** Lower @p prog to the flattened, scheduler-ready IR. */
void
lower(Program &prog, const std::string &short_name)
{
    PassManager passes;
    passes.add(std::make_unique<DecomposeToffoliPass>());
    passes.add(std::make_unique<RotationDecomposerPass>(
        Toolflow::rotationPresetFor(short_name)));
    passes.add(std::make_unique<FlattenPass>(30'000));
    passes.run(prog);
}

void
writeJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n"
       << "  \"schema\": \"msq-paper-scale-v1\",\n"
       << "  \"target_gates\": " << targetGates << ",\n"
       << "  \"rss_ceiling_kb\": " << rssCeilingKb << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"workload\": \"" << row.workload
           << "\", \"scheduler\": \"" << row.scheduler
           << "\", \"base_params\": \"" << row.baseParams
           << "\", \"base_gates\": " << row.baseGates
           << ", \"scale_factor\": " << row.scaleFactor
           << ", \"gates\": " << row.gates
           << ", \"serial_cycles\": " << row.serialCycles
           << ", \"makespan_cycles\": " << row.makespanCycles
           << ", \"sequential_speedup\": " << row.sequentialSpeedup
           << ", \"naive_speedup\": " << row.naiveSpeedup
           << ", \"comm_fraction\": " << row.commFraction
           << ", \"teleports\": " << row.teleports
           << ", \"epr_pairs\": " << row.eprPairs
           << ", \"distinct_leaves\": " << row.distinctLeaves
           << ", \"reachable_modules\": " << row.reachableModules
           << ", \"exact\": " << (row.exact ? "true" : "false")
           << ", \"wall_ms\": " << row.wallMs
           << ", \"peak_rss_kb\": " << row.peakRssKb << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::banner("bench_paper_scale",
                  "paper-scale resource estimation (>= 10^9 gates per "
                  "workload) via the schedule-summary analysis, "
                  "exactness-checked (E001-E006) under a peak-RSS "
                  "ceiling");

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_paper_scale.json";
    const MultiSimdArch arch(4);
    const CommMode mode = CommMode::Global;

    ResultTable table("paper-scale estimates (k=4, Global)");
    table.setHeader({"benchmark", "scheduler", "gates", "makespan",
                     "speedup", "comm %", "EPR pairs", "leaves",
                     "wall ms"});

    std::vector<Row> rows;
    bool all_exact = true;
    bool rss_ok = true;
    bool scale_ok = true;

    for (const auto &base : workloads::paperParams()) {
        const bool paper_base = paperBuildTractable(base.shortName);
        const workloads::WorkloadSpec spec =
            paper_base
                ? base
                : workloads::findWorkload(workloads::scaledParams(),
                                          base.shortName);

        Program prog = spec.build();
        lower(prog, spec.shortName);

        const uint64_t base_gates =
            ResourceEstimator(prog).programGates();
        const uint64_t factor =
            base_gates >= targetGates
                ? 1
                : satCeilDiv(targetGates, base_gates);
        workloads::scaleWorkload(prog, factor);

        for (SchedulerKind kind :
             {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
            auto scheduler = Toolflow::makeScheduler(kind);

            const auto start = std::chrono::steady_clock::now();
            EstimateOptions opts;
            opts.cache = std::make_shared<LeafScheduleCache>();
            ProgramResourceEstimate est = computeProgramEstimate(
                prog, arch, *scheduler, mode, opts);

            DiagnosticEngine diags;
            const bool exact = checkEstimateExactness(
                prog, arch, *scheduler, mode, est, diags, opts);
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();

            if (!exact) {
                all_exact = false;
                for (const Diagnostic &diag : diags.diagnostics())
                    std::cerr << spec.shortName << ": " << diag.format()
                              << "\n";
            }
            if (est.program.gateOps < targetGates)
                scale_ok = false;

            const long rss = peakRssKb();
            if (rss > rssCeilingKb)
                rss_ok = false;

            rows.push_back({spec.shortName,
                            std::string(schedulerKindName(kind)),
                            paper_base ? "paper" : "scaled", base_gates,
                            factor, est.program.gateOps,
                            est.program.serialCycles, est.makespanCycles,
                            est.sequentialSpeedup(), est.naiveSpeedup(),
                            est.program.commFraction(),
                            est.program.teleportMoves,
                            est.program.eprPairs(),
                            est.distinctLeafSchedules,
                            est.reachableModules, exact, wall_ms, rss});

            table.beginRow();
            table.addCell(spec.name +
                          (factor > 1
                               ? " x" + std::to_string(factor)
                               : ""));
            table.addCell(std::string(schedulerKindName(kind)));
            table.addCell(static_cast<double>(est.program.gateOps), 0);
            table.addCell(static_cast<double>(est.makespanCycles), 0);
            table.addCell(est.sequentialSpeedup(), 2);
            table.addCell(100.0 * est.program.commFraction(), 1);
            table.addCell(static_cast<double>(est.program.eprPairs()),
                          0);
            table.addCell(static_cast<double>(est.distinctLeafSchedules),
                          0);
            table.addCell(wall_ms, 1);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\npeak RSS: " << peakRssKb()
              << " KB (ceiling: " << rssCeilingKb << " KB)\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeJson(out, rows);
    std::cout << "wrote " << out_path << "\n";

    if (!scale_ok) {
        std::cerr << "FAIL: a workload fell short of " << targetGates
                  << " gates\n";
        return 1;
    }
    if (!all_exact) {
        std::cerr << "FAIL: an estimate diverged from ground truth "
                     "(E-code errors above)\n";
        return 1;
    }
    if (!rss_ok) {
        std::cerr << "FAIL: peak RSS exceeded the " << rssCeilingKb
                  << " KB ceiling — the O(distinct leaves) memory "
                     "claim is broken\n";
        return 1;
    }
    return 0;
}
