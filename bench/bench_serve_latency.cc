/**
 * @file
 * Serving-layer latency baseline: replays synthetic mixed-workload
 * traffic against an in-process ServeEngine (the exact engine behind
 * msq-served, minus pipe overhead) in two phases:
 *
 *   cold   fresh engine, empty cache — every request pays full leaf
 *          scheduling; the cache is persisted at the end of the phase
 *   warm   fresh engine in the same process, cache loaded from the
 *          file the cold phase wrote — the daemon-restart case the
 *          persistent cache exists for
 *
 * and reports requests/sec plus p50/p99 per-request latency for each,
 * writing BENCH_serve_latency.json for the CI regression gate. The
 * determinism contract (DESIGN.md §15) is cross-checked on the fly:
 * every warm response must carry the same schedule_hash and makespan
 * as its cold twin, and the warm phase must end at leaf-cache hit
 * rate 1.0 — the bench exits 1 on any violation, so the committed
 * baseline doubles as a regression test.
 *
 * Environment knobs:
 *   MSQ_BENCH_THREADS  batch parallelism (default 8)
 *   MSQ_BENCH_REPS     requests per workload per phase (default 3)
 *
 * Usage: bench_serve_latency [output.json]   (default
 * BENCH_serve_latency.json in the working directory)
 */

#include "common.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <vector>

#include "core/serve.hh"
#include "support/json.hh"
#include "support/strings.hh"

using namespace msq;

namespace {

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end || parsed == 0)
        return fallback;
    return static_cast<unsigned>(parsed);
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    size_t index = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
}

struct PhaseResult
{
    std::string phase;
    size_t requests = 0;
    double wallMs = 0.0;
    double rps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double hitRate = 0.0;
    /** workload -> (schedule_hash, makespan) of the last response. */
    std::map<std::string, std::pair<std::string, uint64_t>> results;
};

/** Run @p traffic through a fresh engine; warm = load the cache. */
PhaseResult
runPhase(const std::string &phase, const std::string &cache_path,
         bool warm, unsigned threads,
         const std::vector<std::pair<std::string, std::string>> &traffic)
{
    ServeOptions options;
    options.k = 8;
    options.numThreads = threads;
    options.cachePath = cache_path;
    ServeEngine engine(options);
    if (warm) {
        engine.loadCache();
        if (engine.diags().numWarnings() > 0) {
            std::cerr << engine.diags().formatAll();
            std::exit(1);
        }
    }

    PhaseResult out;
    out.phase = phase;
    std::vector<double> latencies;
    WallTimer timer;
    for (const auto &[workload, line] : traffic) {
        WallTimer requestTimer;
        std::string response = engine.handleLine(line);
        latencies.push_back(requestTimer.elapsedMs());

        std::string error;
        auto json = parseJson(response, error);
        if (!json || !json->get("ok").asBool()) {
            std::cerr << phase << ": request for " << workload
                      << " failed: " << response << "\n";
            std::exit(1);
        }
        out.results[workload] = {
            json->get("schedule_hash").asString(),
            json->get("makespan").asUnsigned()};
    }
    out.wallMs = timer.elapsedMs();
    out.requests = traffic.size();
    out.rps = out.wallMs > 0.0 ? 1000.0 * out.requests / out.wallMs : 0.0;
    out.p50Ms = percentile(latencies, 0.50);
    out.p99Ms = percentile(latencies, 0.99);
    const uint64_t hits = engine.cache().hits();
    const uint64_t misses = engine.cache().misses();
    out.hitRate = hits + misses == 0
                      ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(hits + misses);
    if (!warm)
        engine.saveCache();
    return out;
}

void
writePhaseJson(std::ostream &os, const PhaseResult &phase, bool last)
{
    os << "    {\n"
       << "      \"phase\": \"" << phase.phase << "\",\n"
       << "      \"requests\": " << phase.requests << ",\n"
       << "      \"wall_ms\": " << jsonNumber(phase.wallMs) << ",\n"
       << "      \"requests_per_sec\": " << jsonNumber(phase.rps)
       << ",\n"
       << "      \"p50_ms\": " << jsonNumber(phase.p50Ms) << ",\n"
       << "      \"p99_ms\": " << jsonNumber(phase.p99Ms) << ",\n"
       << "      \"hit_rate\": " << jsonNumber(phase.hitRate) << "\n"
       << "    }" << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("bench_serve_latency: msq-served cold vs warm start",
                  "DESIGN.md §15 (serving layer; extends DESIGN.md §9 "
                  "determinism to daemon restarts)");

    const unsigned threads = envUnsigned("MSQ_BENCH_THREADS", 8);
    const unsigned reps = envUnsigned("MSQ_BENCH_REPS", 3);
    const std::string output =
        argc > 1 ? argv[1] : "BENCH_serve_latency.json";
    const std::string cachePath = output + ".cache.tmp";
    std::remove(cachePath.c_str());

    // Mixed traffic: `reps` interleaved rounds over all eight scaled
    // workloads, the same request line every time (the steady-state
    // recompile traffic a build farm generates).
    std::vector<std::pair<std::string, std::string>> traffic;
    const auto specs = workloads::scaledParams();
    for (unsigned rep = 0; rep < reps; ++rep)
        for (const auto &spec : specs)
            traffic.emplace_back(
                spec.shortName,
                csprintf("{\"id\": \"%s-%u\", \"workload\": \"%s\", "
                         "\"k\": 8}",
                         spec.shortName.c_str(), rep,
                         spec.shortName.c_str()));

    PhaseResult cold =
        runPhase("cold", cachePath, false, threads, traffic);
    PhaseResult warm =
        runPhase("warm", cachePath, true, threads, traffic);
    std::remove(cachePath.c_str());

    // Determinism cross-check: warm must replay cold bit-identically
    // and never recompute a leaf (hit rate 1.0).
    bool ok = true;
    for (const auto &[workload, coldResult] : cold.results) {
        const auto &warmResult = warm.results[workload];
        if (coldResult != warmResult) {
            std::cerr << "DETERMINISM VIOLATION: " << workload
                      << " cold hash=" << coldResult.first
                      << " makespan=" << coldResult.second
                      << " vs warm hash=" << warmResult.first
                      << " makespan=" << warmResult.second << "\n";
            ok = false;
        }
    }
    if (warm.hitRate < 1.0) {
        std::cerr << "WARM-START VIOLATION: hit rate "
                  << warm.hitRate << " != 1.0\n";
        ok = false;
    }

    std::cout << "phase   requests   req/s      p50 ms    p99 ms   "
              << "hit rate\n";
    for (const PhaseResult *phase : {&cold, &warm}) {
        std::cout << csprintf("%-7s %8zu %8.2f %9.3f %9.3f %9.3f\n",
                              phase->phase.c_str(), phase->requests,
                              phase->rps, phase->p50Ms, phase->p99Ms,
                              phase->hitRate);
    }
    std::cout << "\nwarm speedup (p50): "
              << csprintf("%.2fx", warm.p50Ms > 0.0
                                       ? cold.p50Ms / warm.p50Ms
                                       : 0.0)
              << "\ndeterminism: " << (ok ? "ok" : "VIOLATED") << "\n";

    std::ofstream os(output);
    os << "{\n"
       << "  \"bench\": \"bench_serve_latency\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"workloads\": " << specs.size() << ",\n"
       << "  \"determinism_ok\": " << (ok ? "true" : "false") << ",\n"
       << "  \"warm_hit_rate\": " << jsonNumber(warm.hitRate) << ",\n"
       << "  \"phases\": [\n";
    writePhaseJson(os, cold, false);
    writePhaseJson(os, warm, true);
    os << "  ],\n"
       << "  \"results\": [\n";
    size_t index = 0;
    for (const auto &[workload, result] : cold.results) {
        os << "    {\"workload\": \"" << workload
           << "\", \"schedule_hash\": \"" << result.first
           << "\", \"makespan\": " << result.second << "}"
           << (++index == cold.results.size() ? "\n" : ",\n");
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << output << "\n";
    return ok ? 0 : 1;
}
