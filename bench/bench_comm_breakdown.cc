/**
 * @file
 * Whole-program communication and gate-mix breakdown: for each
 * benchmark, the hierarchically weighted movement traffic (teleports,
 * blocking teleports, ballistic local moves — per-leaf statistics
 * multiplied by invocation counts) together with the architectural gate
 * mix (T count, two-qubit count, measurements). This is the quantitative
 * backdrop behind Figs. 7-8: benchmarks whose traffic is dominated by
 * blocking teleports are the ones local memories rescue.
 */

#include "common.hh"

#include "analysis/gate_mix.hh"
#include "analysis/invocation_counts.hh"
#include "support/saturate.hh"
#include "support/stats.hh"
#include "support/strings.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_comm_breakdown",
                  "movement traffic + gate mix per benchmark "
                  "(LPFS, Multi-SIMD(4,inf) + local(inf))");

    ResultTable table("hierarchically weighted totals (one program run)");
    table.setHeader({"benchmark", "gates", "T-count", "2q-gates",
                     "teleports", "blocking", "local-moves", "peak-EPR"});

    for (const auto &spec : workloads::scaledParams()) {
        Program prog = spec.build();
        ToolflowConfig config;
        config.scheduler = SchedulerKind::Lpfs;
        config.commMode = CommMode::GlobalWithLocalMem;
        config.arch = MultiSimdArch(4, unbounded, unbounded);
        config.rotations = Toolflow::rotationPresetFor(spec.shortName);
        ToolflowResult result = Toolflow(config).run(prog);

        GateMixAnalysis mix(prog);
        InvocationCountAnalysis invocations(prog);

        uint64_t teleports = 0;
        uint64_t blocking = 0;
        uint64_t local = 0;
        uint64_t peak = 0;
        for (ModuleId id = 0;
             id < static_cast<ModuleId>(prog.numModules()); ++id) {
            const auto &info = result.schedule.modules[id];
            if (!info.analyzed || !info.leaf)
                continue;
            uint64_t runs = invocations.invocations(id);
            teleports =
                satAdd(teleports, satMul(runs, info.comm.teleportMoves));
            blocking = satAdd(blocking,
                              satMul(runs, info.comm.blockingTeleports));
            local = satAdd(local, satMul(runs, info.comm.localMoves));
            peak = std::max(peak, info.comm.peakBlockingMovesPerStep);
        }

        const GateMix &program_mix = mix.programMix();
        table.beginRow();
        table.addCell(spec.name);
        table.addCell(withCommas(result.totalGates));
        table.addCell(withCommas(program_mix.tCount()));
        table.addCell(withCommas(program_mix.twoQubitCount()));
        table.addCell(withCommas(teleports));
        table.addCell(withCommas(blocking));
        table.addCell(withCommas(local));
        table.addCell(static_cast<unsigned long long>(peak));
    }

    table.printAscii(std::cout);
    std::cout << "\nreading: GSE moves almost nothing (pinned "
                 "registers); CTQG benchmarks carry heavy blocking/"
                 "local traffic from adder operand shuffling - exactly "
                 "the traffic Fig. 8's scratchpads absorb.\n";
    return 0;
}
