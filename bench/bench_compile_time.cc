/**
 * @file
 * Compile-time (scheduler wall-clock) baseline: times the hierarchical
 * scheduling pipeline — the dominant cost on large programs (paper
 * §3.1's motivation for scheduling hierarchically at all) — in three
 * configurations per workload and scheduler:
 *
 *   sequential       numThreads = 1, no memoization (the legacy path)
 *   parallel         numThreads = T, no memoization
 *   parallel+cold    numThreads = T, fresh leaf-schedule cache
 *   parallel+warm    numThreads = T, cache pre-populated by one
 *                    untimed pass — the repeated-scheduling case
 *                    (sweeps, recompiles) the shared cache exists for
 *
 * and writes a machine-readable BENCH_compile_time.json so later PRs
 * can be measured against this trajectory. The schedules themselves
 * are bit-identical across configurations (DESIGN.md §9); this bench
 * cross-checks that by comparing total cycles and aborts on mismatch.
 *
 * Environment knobs:
 *   MSQ_BENCH_THREADS  parallel fan-out T (default 8)
 *   MSQ_BENCH_REPS     timing repetitions, fastest kept (default 1)
 *
 * Usage: bench_compile_time [output.json]   (default
 * BENCH_compile_time.json in the working directory)
 */

#include "common.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "passes/decompose_toffoli.hh"
#include "passes/pass_manager.hh"
#include "sched/leaf_cache.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

using namespace msq;

namespace {

struct Row
{
    std::string workload;
    std::string scheduler;
    std::string config; ///< sequential | parallel | cold-cache | warm-cache
    unsigned threads;
    bool cache;
    double cacheHitRate;
    double wallMs;
    double speedup; ///< vs the sequential config, same workload+scheduler
    uint64_t totalCycles;
    uint64_t leafModules;
};

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end || parsed == 0)
        return fallback;
    return static_cast<unsigned>(parsed);
}

/** Lower @p spec to the flattened, scheduler-ready IR. */
Program
prepare(const workloads::WorkloadSpec &spec)
{
    Program prog = spec.build();
    PassManager passes;
    passes.add(std::make_unique<DecomposeToffoliPass>());
    passes.add(std::make_unique<RotationDecomposerPass>(
        Toolflow::rotationPresetFor(spec.shortName)));
    passes.add(std::make_unique<FlattenPass>(30'000));
    passes.run(prog);
    return prog;
}

/**
 * Wall-clock one schedule() call; fastest of @p reps. Every repetition
 * also lands in the global telemetry registry as "<label>_ms" (and, when
 * tracing is on, a "bench:<label>" span), so MSQ_METRICS / MSQ_TRACE
 * capture the full phase breakdown alongside the JSON report.
 */
double
timeSchedule(const CoarseScheduler &coarse, const Program &prog,
             unsigned reps, uint64_t &total_cycles,
             const std::string &label)
{
    Distribution &dist =
        Telemetry::metrics().distribution(label + "_ms");
    double best_ms = 0.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        TraceSpan span(Telemetry::trace(), "bench:" + label);
        WallTimer timer;
        ProgramSchedule sched = coarse.schedule(prog);
        double ms = timer.elapsedMs();
        total_cycles = sched.totalCycles;
        dist.record(ms);
        if (rep == 0 || ms < best_ms)
            best_ms = ms;
    }
    return best_ms;
}

void
writeJson(std::ostream &os, const std::vector<Row> &rows,
          unsigned parallel_threads, unsigned reps)
{
    os << "{\n"
       << "  \"bench\": \"bench_compile_time\",\n"
       << "  \"parallel_threads\": " << parallel_threads << ",\n"
       << "  \"hardware_threads\": " << ThreadPool::hardwareThreads()
       << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"workload\": \"" << row.workload
           << "\", \"scheduler\": \"" << row.scheduler
           << "\", \"config\": \"" << row.config
           << "\", \"threads\": " << row.threads << ", \"cache\": "
           << (row.cache ? "true" : "false")
           << ", \"cache_hit_rate\": " << row.cacheHitRate
           << ", \"wall_ms\": " << row.wallMs
           << ", \"speedup_vs_sequential\": " << row.speedup
           << ", \"total_cycles\": " << row.totalCycles
           << ", \"leaf_modules\": " << row.leafModules << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::banner("bench_compile_time",
                  "compiler wall-clock baseline - sequential vs "
                  "parallel vs parallel+memoized scheduling");

    const unsigned threads = envUnsigned("MSQ_BENCH_THREADS", 8);
    const unsigned reps = envUnsigned("MSQ_BENCH_REPS", 1);
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_compile_time.json";

    ResultTable table("scheduling wall-clock (ms, fastest of reps)");
    table.setHeader({"benchmark", "scheduler", "sequential", "parallel",
                     "cold cache", "warm cache", "par speedup",
                     "warm speedup", "warm hit rate"});

    std::vector<Row> rows;
    bool mismatch = false;

    for (const auto &spec : workloads::scaledParams()) {
        Program prog = prepare(spec);
        uint64_t leaf_modules = 0;
        for (ModuleId id : prog.reachableModules())
            if (prog.module(id).isLeaf())
                ++leaf_modules;

        for (SchedulerKind kind :
             {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
            auto scheduler = Toolflow::makeScheduler(kind);
            MultiSimdArch arch(4);

            auto make_coarse = [&](unsigned n_threads,
                                   std::shared_ptr<LeafScheduleCache>
                                       cache) {
                CoarseScheduler::Options options;
                options.numThreads = n_threads;
                options.leafCache = std::move(cache);
                return CoarseScheduler(arch, *scheduler,
                                       CommMode::Global, options);
            };

            const std::string label_prefix =
                "bench.compile." + spec.shortName + "." +
                schedulerKindName(kind);

            uint64_t seq_cycles = 0, par_cycles = 0, cold_cycles = 0,
                     warm_cycles = 0;
            double seq_ms = timeSchedule(make_coarse(1, nullptr), prog,
                                         reps, seq_cycles,
                                         label_prefix + ".sequential");
            double par_ms = timeSchedule(make_coarse(threads, nullptr),
                                         prog, reps, par_cycles,
                                         label_prefix + ".parallel");
            // Cold: fresh cache per timed run so the hit rate reflects
            // one first-compile schedule() pass, not the repetitions.
            double cold_ms = 0.0;
            double cold_hit_rate = 0.0;
            for (unsigned rep = 0; rep < reps; ++rep) {
                auto cache = std::make_shared<LeafScheduleCache>();
                uint64_t cycles = 0;
                double ms = timeSchedule(make_coarse(threads, cache),
                                         prog, 1, cycles,
                                         label_prefix + ".cold_cache");
                cold_cycles = cycles;
                cold_hit_rate = cache->hitRate();
                if (rep == 0 || ms < cold_ms)
                    cold_ms = ms;
            }
            // Warm: one untimed pass populates the cache, then the
            // timed passes reuse it — the repeated-scheduling pattern
            // (parameter sweeps, recompiles) sharedLeafCache serves.
            auto warm_cache = std::make_shared<LeafScheduleCache>();
            {
                uint64_t ignored = 0;
                timeSchedule(make_coarse(threads, warm_cache), prog, 1,
                             ignored, label_prefix + ".warm_prefill");
            }
            const uint64_t warm_hits_before = warm_cache->hits();
            const uint64_t warm_misses_before = warm_cache->misses();
            double warm_ms = timeSchedule(make_coarse(threads,
                                                      warm_cache),
                                          prog, reps, warm_cycles,
                                          label_prefix + ".warm_cache");
            const double warm_lookups =
                static_cast<double>(warm_cache->hits() -
                                    warm_hits_before) +
                static_cast<double>(warm_cache->misses() -
                                    warm_misses_before);
            const double warm_hit_rate =
                warm_lookups > 0.0
                    ? static_cast<double>(warm_cache->hits() -
                                          warm_hits_before) /
                          warm_lookups
                    : 0.0;

            if (seq_cycles != par_cycles || seq_cycles != cold_cycles ||
                seq_cycles != warm_cycles) {
                std::cerr << "DETERMINISM VIOLATION: " << spec.shortName
                          << "/" << schedulerKindName(kind)
                          << " schedules differ across configs\n";
                mismatch = true;
            }

            auto speedup = [](double base, double ms) {
                return ms > 0.0 ? base / ms : 0.0;
            };
            rows.push_back({spec.shortName, schedulerKindName(kind),
                            "sequential", 1, false, 0.0, seq_ms, 1.0,
                            seq_cycles, leaf_modules});
            rows.push_back({spec.shortName, schedulerKindName(kind),
                            "parallel", threads, false, 0.0, par_ms,
                            speedup(seq_ms, par_ms), par_cycles,
                            leaf_modules});
            rows.push_back({spec.shortName, schedulerKindName(kind),
                            "cold-cache", threads, true, cold_hit_rate,
                            cold_ms, speedup(seq_ms, cold_ms),
                            cold_cycles, leaf_modules});
            rows.push_back({spec.shortName, schedulerKindName(kind),
                            "warm-cache", threads, true, warm_hit_rate,
                            warm_ms, speedup(seq_ms, warm_ms),
                            warm_cycles, leaf_modules});

            table.beginRow();
            table.addCell(spec.name);
            table.addCell(std::string(schedulerKindName(kind)));
            table.addCell(seq_ms, 2);
            table.addCell(par_ms, 2);
            table.addCell(cold_ms, 2);
            table.addCell(warm_ms, 2);
            table.addCell(speedup(seq_ms, par_ms), 2);
            table.addCell(speedup(seq_ms, warm_ms), 2);
            table.addCell(warm_hit_rate, 3);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\nparallel fan-out: " << threads << " thread(s) on "
              << ThreadPool::hardwareThreads()
              << " hardware thread(s); schedules verified identical "
                 "across all configurations.\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeJson(out, rows, threads, reps);
    std::cout << "wrote " << out_path << "\n";
    return mismatch ? 1 : 0;
}
