/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses. Each bench
 * binary regenerates the rows/series of one paper table or figure; the
 * absolute numbers come from our simulator-based substrate, but the
 * qualitative shape (who wins, by what factor, where crossovers fall)
 * reproduces the paper (see EXPERIMENTS.md).
 */

#ifndef MSQ_BENCH_COMMON_HH
#define MSQ_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "core/toolflow.hh"
#include "support/telemetry.hh"
#include "workloads/workloads.hh"

namespace msq {
namespace bench {

/** One toolflow run for a named workload spec. */
inline ToolflowResult
runWorkload(const workloads::WorkloadSpec &spec, SchedulerKind scheduler,
            CommMode mode, const MultiSimdArch &arch,
            unsigned rotation_length = 0)
{
    Program prog = spec.build();
    ToolflowConfig config;
    config.scheduler = scheduler;
    config.commMode = mode;
    config.arch = arch;
    config.rotations = Toolflow::rotationPresetFor(spec.shortName);
    if (rotation_length != 0)
        config.rotations.sequenceLength = rotation_length;
    return Toolflow(config).run(prog);
}

/**
 * Print the standard bench header. Also honors the MSQ_METRICS /
 * MSQ_TRACE environment fallback, so any bench binary can emit its
 * telemetry without new flags.
 */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    Telemetry::initFromEnv();
    std::cout << "==========================================================\n"
              << title << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "==========================================================\n\n";
}

} // namespace bench
} // namespace msq

#endif // MSQ_BENCH_COMMON_HH
