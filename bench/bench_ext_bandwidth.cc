/**
 * @file
 * Extension study: EPR channel bandwidth. The paper assumes the EPR
 * distribution network keeps up with demand and flags constrained
 * channels as future work (§2.3: "longer distances do imply higher EPR
 * bandwidth requirements (larger communication channels...)"). This
 * bench quantifies that sensitivity: how schedule length degrades when
 * one movement phase can only service a bounded number of blocking
 * teleports, and each schedule's peak per-step demand.
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_ext_bandwidth",
                  "extension (§2.3 future work) - sensitivity to EPR "
                  "channel bandwidth, Multi-SIMD(4,inf), LPFS");

    ResultTable table("speedup over naive movement by EPR bandwidth "
                      "(blocking teleports per movement phase)");
    table.setHeader({"benchmark", "bw=1", "bw=2", "bw=4", "bw=inf"});

    for (const auto &spec : workloads::scaledParams()) {
        table.beginRow();
        table.addCell(spec.name);
        for (uint64_t bandwidth : {uint64_t{1}, uint64_t{2}, uint64_t{4},
                                   unbounded}) {
            MultiSimdArch arch =
                MultiSimdArch(4).withEprBandwidth(bandwidth);
            auto result = bench::runWorkload(spec, SchedulerKind::Lpfs,
                                             CommMode::Global, arch);
            table.addCell(result.speedupVsNaive, 2);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\nreading: benchmarks whose movement is already "
                 "masked/local (GSE) barely notice a narrow channel; "
                 "benchmarks with bursts of simultaneous tight moves "
                 "lose speedup as phases serialize.\n";
    return 0;
}
