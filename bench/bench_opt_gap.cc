/**
 * @file
 * Optimal-tier gap baseline: runs the branch-and-bound OptScheduler
 * over all eight benchmarks at tiny parameters under CommMode::None —
 * the regime where a schedule's total cycles equal its compute-timestep
 * count, so the LB certificate (makespan == composite bound) is
 * attainable and the opt tier produces machine-checkable optimality
 * proofs on real benchmark structure.
 *
 * Per workload, the scheduled program is re-checked against the static
 * bound framework (B001-B007); the harness exits nonzero when
 *
 *  - any B-code fires (including B007: a proven-optimal leaf whose
 *    makespan is not exactly its lower bound — a false certificate),
 *  - any leaf the scheduler certified has gap != 1.0 on the raw
 *    integers (double-checking B007 from the report side), or
 *  - fewer than 6 of the 8 workloads end with *every* leaf proven
 *    optimal (the tier's headline coverage guarantee; the remaining
 *    workloads fall back honestly on their comm/kind-bound leaves).
 *
 * Usage: bench_opt_gap [output.json]   (default BENCH_opt_gap.json in
 * the working directory)
 */

#include "common.hh"

#include <fstream>
#include <string>
#include <vector>

#include "sched/opt.hh"
#include "support/diagnostic.hh"
#include "verify/bound_checker.hh"

using namespace msq;

namespace {

struct Row
{
    std::string workload;
    std::string module;
    uint64_t gates;
    unsigned width;
    uint64_t makespan;
    uint64_t lowerBound;
    double gap;
    std::string provenance;
};

struct WorkloadSummary
{
    std::string workload;
    uint64_t leaves = 0;
    uint64_t proven = 0;
    uint64_t fallbacks = 0;
    bool fullyProven() const { return leaves > 0 && proven == leaves; }
};

void
writeJson(std::ostream &os, const std::vector<Row> &rows,
          const std::vector<WorkloadSummary> &summaries,
          uint64_t fully_proven)
{
    os << "{\n"
       << "  \"schema\": \"msq-opt-gap-v1\",\n"
       << "  \"params\": \"tiny\",\n"
       << "  \"comm_mode\": \"none\",\n"
       << "  \"workloads_fully_proven\": " << fully_proven << ",\n"
       << "  \"workloads\": [\n";
    for (size_t i = 0; i < summaries.size(); ++i) {
        const WorkloadSummary &s = summaries[i];
        os << "    {\"workload\": \"" << s.workload
           << "\", \"leaves\": " << s.leaves
           << ", \"proven\": " << s.proven
           << ", \"fallbacks\": " << s.fallbacks << "}"
           << (i + 1 < summaries.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"workload\": \"" << row.workload
           << "\", \"module\": \"" << row.module
           << "\", \"gates\": " << row.gates
           << ", \"width\": " << row.width
           << ", \"makespan\": " << row.makespan
           << ", \"lower_bound\": " << row.lowerBound
           << ", \"gap\": " << row.gap << ", \"provenance\": \""
           << row.provenance << "\"}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("bench_opt_gap: branch-and-bound optimality proofs "
                  "(tiny params, CommMode::None)",
                  "ROADMAP open item 2 / DESIGN.md §14");
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_opt_gap.json";

    const MultiSimdArch arch(4, unbounded, 0);
    std::vector<Row> rows;
    std::vector<WorkloadSummary> summaries;
    bool failed = false;

    for (const auto &spec : workloads::tinyParams()) {
        Program prog = spec.build();
        ToolflowConfig config;
        config.scheduler = SchedulerKind::Opt;
        config.commMode = CommMode::None;
        config.arch = arch;
        config.rotations = Toolflow::rotationPresetFor(spec.shortName);
        ToolflowResult result = Toolflow(config).run(prog);

        DiagnosticEngine diags;
        ProgramGapReport report;
        const bool clean = checkScheduleBounds(
            prog, result.schedule, arch, CommMode::None, diags, &report);
        if (!clean) {
            std::cout << "FAIL " << spec.shortName
                      << ": bound checker reported errors:\n";
            diags.printAll(std::cout);
            failed = true;
        }

        WorkloadSummary summary;
        summary.workload = spec.shortName;
        for (const LeafGapRecord &leaf : report.leaves) {
            ++summary.leaves;
            if (leaf.provenance == ScheduleProvenance::Optimal) {
                ++summary.proven;
                if (leaf.makespan != leaf.lowerBound) {
                    std::cout << "FAIL " << spec.shortName << "/"
                              << leaf.module
                              << ": certified optimal but makespan "
                              << leaf.makespan << " != bound "
                              << leaf.lowerBound << "\n";
                    failed = true;
                }
            } else {
                ++summary.fallbacks;
            }
            rows.push_back({spec.shortName, leaf.module, leaf.gates,
                            leaf.width, leaf.makespan, leaf.lowerBound,
                            leaf.gap,
                            scheduleProvenanceName(leaf.provenance)});
        }
        std::cout << spec.name << ": " << summary.proven << "/"
                  << summary.leaves << " leaves proven optimal, "
                  << summary.fallbacks << " fallback(s), program "
                  << result.scheduledCycles << " cycles\n";
        summaries.push_back(summary);
    }

    uint64_t fully_proven = 0;
    for (const WorkloadSummary &s : summaries)
        if (s.fullyProven())
            ++fully_proven;
    std::cout << "\n"
              << fully_proven
              << "/8 workloads fully proven optimal (floor: 6)\n";
    if (fully_proven < 6) {
        std::cout << "FAIL: coverage below the 6-of-8 floor\n";
        failed = true;
    }

    std::ofstream out(out_path);
    writeJson(out, rows, summaries, fully_proven);
    std::cout << "wrote " << out_path << "\n";
    return failed ? 1 : 0;
}
