/**
 * @file
 * Fig. 6 reproduction: logical parallelism with zero-cost communication.
 * For every benchmark, RCP and LPFS at k = 2 and k = 4 (d = inf),
 * speedup over sequential execution, against the estimated critical-path
 * bound. Paper: almost every benchmark except Shor's achieves
 * near-complete (critical-path) speedup by k = 4.
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_fig6_parallelism",
                  "Fig. 6 - speedup over sequential execution, "
                  "communication-free, vs critical-path bound");

    ResultTable table("speedup over sequential execution "
                      "(CommMode = none, d = inf)");
    table.setHeader({"benchmark", "rcp k=2", "rcp k=4", "lpfs k=2",
                     "lpfs k=4", "critical-path bound"});

    for (const auto &spec : workloads::scaledParams()) {
        table.beginRow();
        table.addCell(spec.name);
        double cp_bound = 0;
        for (SchedulerKind kind : {SchedulerKind::Rcp,
                                   SchedulerKind::Lpfs}) {
            for (unsigned k : {2u, 4u}) {
                auto result = bench::runWorkload(
                    spec, kind, CommMode::None, MultiSimdArch(k));
                table.addCell(result.speedupVsSequential, 2);
                cp_bound = static_cast<double>(result.totalGates) /
                           static_cast<double>(result.criticalPath);
            }
        }
        table.addCell(cp_bound, 2);
    }

    table.printAscii(std::cout);
    std::cout << "\npaper shape: every benchmark except Shor's reaches "
                 "near its critical-path bound by k = 4; RCP <= LPFS "
                 "everywhere except TFP; critical-path speedups average "
                 "~1.5-2x (mostly-serial workloads).\n";
    return 0;
}
