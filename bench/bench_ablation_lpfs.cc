/**
 * @file
 * Ablation: the LPFS design knobs (paper §4.2). The paper runs l = 1
 * with both SIMD and Refill enabled; this bench isolates each option's
 * contribution — disabling opportunistic SIMD filling, disabling path
 * refilling, and dedicating two regions to longest paths — across the
 * benchmark suite on Multi-SIMD(4,inf) with communication modelled.
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

namespace {

ToolflowResult
runVariant(const workloads::WorkloadSpec &spec,
           const LpfsScheduler::Options &options)
{
    Program prog = spec.build();
    ToolflowConfig config;
    config.scheduler = SchedulerKind::Lpfs;
    config.commMode = CommMode::Global;
    config.arch = MultiSimdArch(4);
    config.rotations = Toolflow::rotationPresetFor(spec.shortName);
    config.lpfsOptions = options;
    return Toolflow(config).run(prog);
}

} // anonymous namespace

int
main()
{
    bench::banner("bench_ablation_lpfs",
                  "ablation of LPFS options (l / SIMD / Refill, §4.2); "
                  "paper configuration is l=1 + SIMD + Refill");

    ResultTable table("speedup over naive movement, Multi-SIMD(4,inf), "
                      "CommMode = global");
    table.setHeader({"benchmark", "paper-cfg", "no-SIMD", "no-Refill",
                     "l=2"});

    for (const auto &spec : workloads::scaledParams()) {
        LpfsScheduler::Options base;     // l=1, simd, refill
        LpfsScheduler::Options no_simd;
        no_simd.simd = false;
        LpfsScheduler::Options no_refill;
        no_refill.refill = false;
        LpfsScheduler::Options two_paths;
        two_paths.l = 2;

        table.beginRow();
        table.addCell(spec.name);
        for (const auto &options :
             {base, no_simd, no_refill, two_paths}) {
            auto result = runVariant(spec, options);
            table.addCell(result.speedupVsNaive, 2);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\nexpected: disabling SIMD costs the most (path "
                 "regions stall instead of draining the free list); "
                 "Refill matters for benchmarks whose longest paths "
                 "exhaust early; l=2 helps only when two long "
                 "independent chains coexist.\n";
    return 0;
}
