/**
 * @file
 * Table 1 reproduction: the minimum number of qubits Q each benchmark
 * requires, computed with sequential execution and maximal reuse of
 * ancilla qubits across function calls.
 */

#include "common.hh"

#include "analysis/qubit_estimator.hh"
#include "analysis/resource_estimator.hh"
#include "support/stats.hh"
#include "support/strings.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_table1_qubits",
                  "Table 1 - minimum qubits Q per benchmark (sequential "
                  "execution, maximal ancilla reuse)");

    ResultTable table("minimum qubits Q (paper-scale benchmarks)");
    table.setHeader({"benchmark", "Q", "total-gates", "paper-Q"});

    // Paper Table 1 values for reference.
    auto paper_q = [](const std::string &name) -> const char * {
        if (name == "bf") return "1895";
        if (name == "bwt") return "2719";
        if (name == "cn") return "60126";
        if (name == "grovers") return "120";
        if (name == "gse") return "13";
        if (name == "sha1") return "472746";
        if (name == "shors") return "5634";
        if (name == "tfp") return "176";
        return "?";
    };

    for (const auto &spec : workloads::paperParams()) {
        Program prog = spec.build();
        QubitEstimator qubits(prog);
        ResourceEstimator resources(prog);
        table.beginRow();
        table.addCell(spec.name);
        table.addCell(
            static_cast<unsigned long long>(qubits.programQubits()));
        table.addCell(withCommas(resources.programGates()));
        table.addCell(std::string(paper_q(spec.shortName)));
    }

    table.printAscii(std::cout);
    std::cout << "\nGSE reproduces the paper's Q exactly (13); the other "
                 "values track the paper's ordering and order of "
                 "magnitude (our workload generators rebuild the "
                 "benchmarks' structure, not their source-identical "
                 "register layouts).\n";
    return 0;
}
