/**
 * @file
 * Fig. 8 reproduction: local scratchpad memories on Multi-SIMD(4,inf).
 * For every benchmark and both schedulers, speedup over the naive
 * movement model with per-region local memory capacities of 0 (none),
 * Q/4, Q/2 and infinity, where Q is the benchmark's Table 1 minimum
 * qubit count. Paper: local memories add 3%-64%, LPFS benefits more
 * than RCP, and SHA-1 reaches the suite's largest total speedup.
 */

#include "common.hh"

#include "analysis/qubit_estimator.hh"
#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_fig8_localmem",
                  "Fig. 8 - speedups from local memories on "
                  "Multi-SIMD(4,inf): none / Q/4 / Q/2 / inf");

    for (SchedulerKind kind : {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        ResultTable table(
            std::string("speedup over naive movement, scheduler = ") +
            schedulerKindName(kind));
        table.setHeader({"benchmark", "Q", "no-local", "Q/4-local",
                         "Q/2-local", "inf-local"});

        for (const auto &spec : workloads::scaledParams()) {
            Program probe = spec.build();
            uint64_t q = QubitEstimator(probe).programQubits();

            table.beginRow();
            table.addCell(spec.name);
            table.addCell(static_cast<unsigned long long>(q));

            const uint64_t capacities[4] = {0, q / 4, q / 2, unbounded};
            for (uint64_t capacity : capacities) {
                CommMode mode = capacity == 0
                                    ? CommMode::Global
                                    : CommMode::GlobalWithLocalMem;
                MultiSimdArch arch(4, unbounded, capacity);
                auto result = bench::runWorkload(spec, kind, mode, arch);
                table.addCell(result.speedupVsNaive, 2);
            }
        }
        table.printAscii(std::cout);
        std::cout << "\n";
    }

    std::cout << "paper shape: scratchpads convert tight evict/refetch "
                 "teleport pairs (8 cycles) into ballistic move pairs "
                 "(2 cycles); gains grow with capacity and are largest "
                 "for the adder-heavy benchmarks (SHA-1).\n";
    return 0;
}
