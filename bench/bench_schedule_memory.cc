/**
 * @file
 * Schedule-memory baseline: measures the bytes the compact SoA
 * ScheduleBuffer holds per timestep, against an analytic model of the
 * nested-vector representation it replaced (one Timestep struct per
 * step owning k RegionSlot vectors — the literal translation of paper
 * §4's description). The paper evaluates machines up to k = 128; the
 * nested layout paid ~sizeof(RegionSlot) per region per step whether or
 * not the region was active, so its footprint scales with k while the
 * SoA layout scales with *activity*.
 *
 * Per workload x scheduler x k, every flattened leaf is scheduled and
 * movement-annotated, then:
 *
 *   soa_bytes_per_step      sum of ScheduleBuffer::byteSize() over
 *                           leaves / total timesteps (measured)
 *   nested_bytes_per_step   the same schedules costed under the old
 *                           layout: per step, the Timestep struct +
 *                           k RegionSlot structs + the ops/moves vector
 *                           payloads (analytic, capacity == size — a
 *                           lower bound favoring the old layout)
 *   ratio                   nested / soa
 *
 * The harness exits nonzero unless the SoA layout is at least 4x
 * smaller per timestep at some k >= 32 (the representation's raison
 * d'etre), and reports peak RSS per configuration for context.
 *
 * Usage: bench_schedule_memory [output.json]   (default
 * BENCH_schedule_memory.json in the working directory)
 */

#include "common.hh"

#include <fstream>
#include <memory>
#include <vector>

#include <sys/resource.h>

#include "passes/decompose_toffoli.hh"
#include "passes/pass_manager.hh"
#include "sched/comm.hh"
#include "support/stats.hh"

using namespace msq;

namespace {

/** The retired nested-vector layout, reconstructed for sizeof() only. */
struct OldRegionSlot
{
    GateKind kind;
    std::vector<uint32_t> ops;
};

struct OldTimestep
{
    std::vector<OldRegionSlot> regions;
    std::vector<Move> moves;
};

struct Row
{
    std::string workload;
    std::string scheduler;
    unsigned k;
    uint64_t leaves;
    uint64_t timesteps;
    uint64_t soaBytes;
    double soaBytesPerStep;
    double nestedBytesPerStep;
    double ratio;
    long peakRssKb;
};

/** Lower @p spec to the flattened, scheduler-ready IR. */
Program
prepare(const workloads::WorkloadSpec &spec)
{
    Program prog = spec.build();
    PassManager passes;
    passes.add(std::make_unique<DecomposeToffoliPass>());
    passes.add(std::make_unique<RotationDecomposerPass>(
        Toolflow::rotationPresetFor(spec.shortName)));
    passes.add(std::make_unique<FlattenPass>(30'000));
    passes.run(prog);
    return prog;
}

/** What this schedule would occupy under the nested-vector layout. */
uint64_t
nestedLayoutBytes(const LeafSchedule &sched)
{
    uint64_t bytes = 0;
    for (TimestepView step : sched.steps()) {
        bytes += sizeof(OldTimestep);
        bytes += uint64_t(sched.k()) * sizeof(OldRegionSlot);
        for (RegionSlotView slot : step)
            bytes += slot.numOps() * sizeof(uint32_t);
        bytes += step.moves().size() * sizeof(Move);
    }
    return bytes;
}

long
peakRssKb()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss;
}

void
writeJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n"
       << "  \"bench\": \"bench_schedule_memory\",\n"
       << "  \"nested_timestep_bytes\": " << sizeof(OldTimestep) << ",\n"
       << "  \"nested_region_slot_bytes\": " << sizeof(OldRegionSlot)
       << ",\n"
       << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        os << "    {\"workload\": \"" << row.workload
           << "\", \"scheduler\": \"" << row.scheduler
           << "\", \"k\": " << row.k << ", \"leaves\": " << row.leaves
           << ", \"timesteps\": " << row.timesteps
           << ", \"soa_bytes\": " << row.soaBytes
           << ", \"soa_bytes_per_step\": " << row.soaBytesPerStep
           << ", \"nested_bytes_per_step\": " << row.nestedBytesPerStep
           << ", \"ratio\": " << row.ratio
           << ", \"peak_rss_kb\": " << row.peakRssKb << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::banner("bench_schedule_memory",
                  "schedule storage footprint - compact SoA buffer vs "
                  "the nested-vector layout of paper §4 at k up to 128");

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_schedule_memory.json";
    const unsigned ks[] = {4, 32, 128};

    ResultTable table("schedule bytes per timestep (lower is better)");
    table.setHeader({"benchmark", "scheduler", "k", "timesteps",
                     "SoA B/step", "nested B/step", "ratio"});

    std::vector<Row> rows;
    double best_ratio_at_wide_k = 0.0;

    for (const auto &spec : workloads::scaledParams()) {
        Program prog = prepare(spec);
        for (SchedulerKind kind :
             {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
            auto scheduler = Toolflow::makeScheduler(kind);
            for (unsigned k : ks) {
                MultiSimdArch arch(k);
                CommunicationAnalyzer comm(arch, CommMode::Global);
                uint64_t leaves = 0;
                uint64_t timesteps = 0;
                uint64_t soa_bytes = 0;
                uint64_t nested_bytes = 0;
                for (ModuleId id : prog.reachableModules()) {
                    const Module &mod = prog.module(id);
                    if (!mod.isLeaf() || mod.numOps() == 0)
                        continue;
                    LeafSchedule sched = scheduler->schedule(mod, arch);
                    comm.annotate(sched);
                    ++leaves;
                    timesteps += sched.computeTimesteps();
                    soa_bytes += sched.buffer().byteSize();
                    nested_bytes += nestedLayoutBytes(sched);
                }
                if (timesteps == 0)
                    continue;
                const double soa_per_step =
                    static_cast<double>(soa_bytes) /
                    static_cast<double>(timesteps);
                const double nested_per_step =
                    static_cast<double>(nested_bytes) /
                    static_cast<double>(timesteps);
                const double ratio =
                    soa_per_step > 0.0 ? nested_per_step / soa_per_step
                                       : 0.0;
                if (k >= 32 && ratio > best_ratio_at_wide_k)
                    best_ratio_at_wide_k = ratio;
                rows.push_back({spec.shortName,
                                schedulerKindName(kind), k, leaves,
                                timesteps, soa_bytes, soa_per_step,
                                nested_per_step, ratio, peakRssKb()});

                table.beginRow();
                table.addCell(spec.name);
                table.addCell(std::string(schedulerKindName(kind)));
                table.addCell(static_cast<double>(k), 0);
                table.addCell(static_cast<double>(timesteps), 0);
                table.addCell(soa_per_step, 1);
                table.addCell(nested_per_step, 1);
                table.addCell(ratio, 2);
            }
        }
    }

    table.printAscii(std::cout);
    std::cout << "\nbest nested/SoA ratio at k >= 32: "
              << best_ratio_at_wide_k << "x (acceptance floor: 4x)\n"
              << "peak RSS: " << peakRssKb() << " KB\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeJson(out, rows);
    std::cout << "wrote " << out_path << "\n";

    if (best_ratio_at_wide_k < 4.0) {
        std::cerr << "FAIL: SoA layout is not 4x smaller than the "
                     "nested layout at any k >= 32\n";
        return 1;
    }
    return 0;
}
