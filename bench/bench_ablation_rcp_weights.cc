/**
 * @file
 * Ablation: the RCP priority weights (paper §4.1: "The metrics can be
 * multiplied by weights, w_op, w_dist, and w_slack ... though in this
 * paper all weights are set to 1"). This bench explores what each term
 * contributes: dropping the data-parallelism term (w_op = 0), the
 * movement-avoidance term (w_dist = 0), the criticality term
 * (w_slack = 0), and boosting movement avoidance (w_dist = 4).
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

namespace {

ToolflowResult
runVariant(const workloads::WorkloadSpec &spec,
           const RcpScheduler::Weights &weights)
{
    Program prog = spec.build();
    ToolflowConfig config;
    config.scheduler = SchedulerKind::Rcp;
    config.commMode = CommMode::Global;
    config.arch = MultiSimdArch(4);
    config.rotations = Toolflow::rotationPresetFor(spec.shortName);
    config.rcpWeights = weights;
    return Toolflow(config).run(prog);
}

} // anonymous namespace

int
main()
{
    bench::banner("bench_ablation_rcp_weights",
                  "ablation of RCP weights w_op/w_dist/w_slack (§4.1); "
                  "paper sets all to 1");

    ResultTable table("speedup over naive movement, Multi-SIMD(4,inf), "
                      "CommMode = global");
    table.setHeader({"benchmark", "1/1/1 (paper)", "w_op=0", "w_dist=0",
                     "w_slack=0", "w_dist=4"});

    for (const auto &spec : workloads::scaledParams()) {
        RcpScheduler::Weights paper;
        RcpScheduler::Weights no_op = paper;
        no_op.op = 0.0;
        RcpScheduler::Weights no_dist = paper;
        no_dist.dist = 0.0;
        RcpScheduler::Weights no_slack = paper;
        no_slack.slack = 0.0;
        RcpScheduler::Weights heavy_dist = paper;
        heavy_dist.dist = 4.0;

        table.beginRow();
        table.addCell(spec.name);
        for (const auto &weights :
             {paper, no_op, no_dist, no_slack, heavy_dist}) {
            auto result = runVariant(spec, weights);
            table.addCell(result.speedupVsNaive, 2);
        }
    }

    table.printAscii(std::cout);
    std::cout << "\nexpected: w_dist drives the communication-aware "
                 "gains (dropping it hurts locality-sensitive "
                 "benchmarks); w_op matters where data parallelism "
                 "exists; boosting w_dist trades parallelism for "
                 "locality.\n";
    return 0;
}
