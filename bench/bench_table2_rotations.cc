/**
 * @file
 * Table 2 reproduction: parallel rotations serialize on primitive
 * hardware. n rotations Rz(q_i, theta_i) on distinct qubits are
 * logically parallel, but each decomposes into a long serial primitive
 * sequence (shown below, as in Table 2), and with SIMD-homogeneous
 * regions the sequences only run concurrently when there are enough
 * regions: schedule length scales with ceil(n/k).
 */

#include "common.hh"

#include "passes/rotation_decomposer.hh"
#include "sched/lpfs.hh"
#include "sched/validator.hh"
#include "support/stats.hh"
#include "support/strings.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_table2_rotations",
                  "Table 2 - parallel rotations need one SIMD region "
                  "each once decomposed to primitives");

    constexpr unsigned num_rotations = 8;
    constexpr unsigned sequence_length = 200;

    // Print the Table 2 illustration: each rotation's approximation
    // prefix.
    std::cout << "rotation -> primitive approximation sequence (first 8 "
                 "of "
              << sequence_length << " gates):\n";
    for (unsigned i = 0; i < 4; ++i) {
        double angle = 0.1 + 0.2 * i;
        auto seq = RotationDecomposerPass::sequenceForAngle(
            GateKind::Rz, angle, sequence_length);
        std::vector<std::string> names;
        for (unsigned g = 0; g < 8; ++g)
            names.push_back(gateName(seq[g]));
        std::cout << "  " << csprintf("Rz(q%u, %.2f)", i, angle) << " : "
                  << join(names, " - ") << " - ...\n";
    }
    std::cout << "\n";

    // Build n parallel rotations, decompose inline, schedule at various k.
    ResultTable table(csprintf("%u parallel rotations, %u primitives "
                               "each, LPFS schedule length by k",
                               num_rotations, sequence_length));
    table.setHeader({"k", "timesteps", "ideal ceil(n/k)*len",
                     "utilization"});

    for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
        Program prog;
        ModuleId id = prog.addModule("rotations");
        Module &mod = prog.module(id);
        auto reg = mod.addRegister("q", num_rotations);
        for (unsigned i = 0; i < num_rotations; ++i)
            mod.addGate(GateKind::Rz, {reg[i]}, 0.1 + 0.05 * i);
        prog.setEntry(id);

        RotationDecomposerPass::Config rot_config;
        rot_config.sequenceLength = sequence_length;
        RotationDecomposerPass(rot_config).run(prog);

        MultiSimdArch arch(k);
        LpfsScheduler lpfs;
        LeafSchedule sched = lpfs.schedule(prog.module(id), arch);
        validateLeafSchedule(sched, arch);

        uint64_t ideal = static_cast<uint64_t>(
                             (num_rotations + k - 1) / k) *
                         sequence_length;
        table.beginRow();
        table.addCell(static_cast<unsigned long long>(k));
        table.addCell(
            static_cast<unsigned long long>(sched.computeTimesteps()));
        table.addCell(static_cast<unsigned long long>(ideal));
        table.addCell(static_cast<double>(ideal) /
                          static_cast<double>(sched.computeTimesteps()),
                      2);
    }

    table.printAscii(std::cout);
    std::cout << "\npaper shape: although the rotations commute and act "
                 "on distinct qubits, their primitive sequences rarely "
                 "line up type-wise, so each effectively occupies a "
                 "SIMD region; length shrinks ~linearly in k until "
                 "k >= n.\n";
    return 0;
}
