/**
 * @file
 * Fig. 7 reproduction: communication-aware scheduling. For every
 * benchmark, RCP and LPFS at k = 2 and k = 4 (d = inf, no local
 * memories), speedup over the naive movement model that teleports data
 * between regions and global memory every timestep (5x sequential).
 * Paper: every benchmark improves over its Fig. 6 configuration once
 * movement is optimized; GSE shows the largest gain.
 */

#include "common.hh"

#include "support/stats.hh"

using namespace msq;

int
main()
{
    bench::banner("bench_fig7_communication",
                  "Fig. 7 - speedup over the naive movement model, "
                  "communication-aware schedulers, no local memories");

    ResultTable table("speedup over naive movement "
                      "(CommMode = global, d = inf)");
    table.setHeader({"benchmark", "rcp k=2", "rcp k=4", "lpfs k=2",
                     "lpfs k=4"});

    for (const auto &spec : workloads::scaledParams()) {
        table.beginRow();
        table.addCell(spec.name);
        for (SchedulerKind kind : {SchedulerKind::Rcp,
                                   SchedulerKind::Lpfs}) {
            for (unsigned k : {2u, 4u}) {
                auto result = bench::runWorkload(
                    spec, kind, CommMode::Global, MultiSimdArch(k));
                table.addCell(result.speedupVsNaive, 2);
            }
        }
    }

    table.printAscii(std::cout);
    std::cout << "\npaper shape: GSE gains the most from communication "
                 "awareness (its two key registers pin in place); "
                 "CTQG-heavy BF/CN/SHA-1 stay near the low end (many "
                 "small 1-2 qubit moves that cannot be removed); "
                 "LPFS >= RCP except TFP.\n";
    return 0;
}
