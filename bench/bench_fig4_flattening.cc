/**
 * @file
 * Fig. 4 reproduction: scheduling two dependent Toffoli operations on
 * Multi-SIMD(2,inf). Kept modular (each Toffoli a blackbox), the data
 * dependency serializes the two 12-cycle blackboxes: 24 cycles. Flattened
 * into one leaf, the fine-grained scheduler overlaps the second Toffoli's
 * independent prefix with the first's tail: 21 cycles in the paper's
 * hand schedule.
 */

#include "common.hh"

#include "passes/decompose_toffoli.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "sched/validator.hh"
#include "support/stats.hh"

using namespace msq;

namespace {

/** Toffoli(a,b,c); Toffoli(a,d,e) as a modular program. */
Program
modularProgram()
{
    Program prog;
    ModuleId toffoli = prog.addModule("toffoli");
    {
        Module &mod = prog.module(toffoli);
        QubitId x = mod.addParam("x");
        QubitId y = mod.addParam("y");
        QubitId z = mod.addParam("z");
        std::vector<Operation> ops;
        DecomposeToffoliPass::expandToffoli(x, y, z, ops);
        for (auto &op : ops)
            mod.addOperation(std::move(op));
    }
    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        auto reg = mod.addRegister("q", 5); // a b c d e
        mod.addCall(toffoli, {reg[0], reg[1], reg[2]});
        mod.addCall(toffoli, {reg[0], reg[3], reg[4]});
    }
    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // anonymous namespace

int
main()
{
    bench::banner("bench_fig4_flattening",
                  "Fig. 4 - modular vs flattened scheduling of two "
                  "dependent Toffolis, k=2 (paper: 24 vs 21 cycles)");

    MultiSimdArch arch(2);
    ResultTable table("two dependent Toffolis on Multi-SIMD(2,inf), "
                      "communication-free timesteps");
    table.setHeader({"scheduler", "modular-cycles", "flattened-cycles",
                     "improvement"});

    for (SchedulerKind kind : {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        auto scheduler = Toolflow::makeScheduler(kind);

        // Modular: each Toffoli is a blackbox; the shared operand `a`
        // serializes them.
        Program modular = modularProgram();
        const Module &toffoli =
            modular.module(modular.findModule("toffoli"));
        LeafSchedule single = scheduler->schedule(toffoli, arch);
        validateLeafSchedule(single, arch);
        uint64_t modular_cycles = 2 * single.computeTimesteps();

        // Flattened: both expansions in one leaf module.
        Program flat = modularProgram();
        FlattenPass(1'000).run(flat);
        const Module &fused = flat.module(flat.entry());
        LeafSchedule fused_sched = scheduler->schedule(fused, arch);
        validateLeafSchedule(fused_sched, arch);
        uint64_t flattened_cycles = fused_sched.computeTimesteps();

        table.beginRow();
        table.addCell(std::string(schedulerKindName(kind)));
        table.addCell(static_cast<unsigned long long>(modular_cycles));
        table.addCell(static_cast<unsigned long long>(flattened_cycles));
        table.addCell(static_cast<double>(modular_cycles) /
                          static_cast<double>(flattened_cycles),
                      3);
    }

    table.printAscii(std::cout);
    std::cout << "\npaper reference points: modular = 24 cycles, "
                 "flattened = 21 cycles (single Toffoli = 12).\n";
    return 0;
}
