/**
 * @file
 * Google-benchmark microbenchmarks for compiler throughput: DAG
 * construction, RCP/LPFS fine-grained scheduling, communication
 * annotation and the whole toolflow. These measure the *compiler*, not
 * the modelled quantum machine — the paper's hierarchical approach
 * exists precisely to keep analysis time tractable at 10^12-gate scale
 * (§3.1), so scheduler throughput is a first-class property.
 */

#include <benchmark/benchmark.h>

#include "core/toolflow.hh"
#include "ir/dag.hh"
#include "sched/comm.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "support/rng.hh"
#include "workloads/workloads.hh"

namespace {

using namespace msq;

/** Random leaf module mixing serial chains and 2-qubit couplings. */
Module
makeLeaf(unsigned qubits, unsigned ops)
{
    SplitMix64 rng(0xbeef);
    Module mod("leaf");
    auto reg = mod.addRegister("q", qubits);
    const GateKind one_q[] = {GateKind::H, GateKind::T, GateKind::Tdag,
                              GateKind::S, GateKind::X, GateKind::Z};
    for (unsigned i = 0; i < ops; ++i) {
        if (rng.nextBelow(100) < 20) {
            QubitId a = static_cast<QubitId>(rng.nextBelow(qubits));
            QubitId b = static_cast<QubitId>(rng.nextBelow(qubits));
            if (a == b)
                b = (b + 1) % qubits;
            mod.addGate(GateKind::CNOT, {a, b});
        } else {
            mod.addGate(one_q[rng.nextBelow(6)],
                        {static_cast<QubitId>(rng.nextBelow(qubits))});
        }
    }
    return mod;
}

void
BM_DagBuild(benchmark::State &state)
{
    Module mod = makeLeaf(32, static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        DepDag dag = DepDag::build(mod);
        benchmark::DoNotOptimize(dag.numNodes());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DagBuild)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void
BM_RcpSchedule(benchmark::State &state)
{
    Module mod = makeLeaf(32, static_cast<unsigned>(state.range(0)));
    MultiSimdArch arch(4);
    RcpScheduler scheduler;
    for (auto _ : state) {
        LeafSchedule sched = scheduler.schedule(mod, arch);
        benchmark::DoNotOptimize(sched.computeTimesteps());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RcpSchedule)->Arg(1'000)->Arg(10'000);

void
BM_LpfsSchedule(benchmark::State &state)
{
    Module mod = makeLeaf(32, static_cast<unsigned>(state.range(0)));
    MultiSimdArch arch(4);
    LpfsScheduler scheduler;
    for (auto _ : state) {
        LeafSchedule sched = scheduler.schedule(mod, arch);
        benchmark::DoNotOptimize(sched.computeTimesteps());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LpfsSchedule)->Arg(1'000)->Arg(10'000);

void
BM_CommAnnotate(benchmark::State &state)
{
    Module mod = makeLeaf(32, static_cast<unsigned>(state.range(0)));
    MultiSimdArch arch(4, unbounded, 16);
    LpfsScheduler scheduler;
    LeafSchedule sched = scheduler.schedule(mod, arch);
    CommunicationAnalyzer comm(arch, CommMode::GlobalWithLocalMem);
    for (auto _ : state) {
        CommStats stats = comm.annotate(sched);
        benchmark::DoNotOptimize(stats.totalCycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CommAnnotate)->Arg(1'000)->Arg(10'000);

void
BM_ToolflowGrovers(benchmark::State &state)
{
    for (auto _ : state) {
        Program prog = workloads::buildGrovers(8);
        ToolflowConfig config;
        config.scheduler = SchedulerKind::Lpfs;
        config.commMode = CommMode::Global;
        config.arch = MultiSimdArch(4);
        config.rotations.sequenceLength = 50;
        ToolflowResult result = Toolflow(config).run(prog);
        benchmark::DoNotOptimize(result.scheduledCycles);
    }
}
BENCHMARK(BM_ToolflowGrovers)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
