file(REMOVE_RECURSE
  "CMakeFiles/test_ctqg.dir/test_ctqg.cc.o"
  "CMakeFiles/test_ctqg.dir/test_ctqg.cc.o.d"
  "test_ctqg"
  "test_ctqg.pdb"
  "test_ctqg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctqg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
