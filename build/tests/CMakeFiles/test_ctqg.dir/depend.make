# Empty dependencies file for test_ctqg.
# This may be replaced when dependencies are built.
