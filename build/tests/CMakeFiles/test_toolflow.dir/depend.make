# Empty dependencies file for test_toolflow.
# This may be replaced when dependencies are built.
