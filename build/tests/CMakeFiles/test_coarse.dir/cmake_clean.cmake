file(REMOVE_RECURSE
  "CMakeFiles/test_coarse.dir/test_coarse.cc.o"
  "CMakeFiles/test_coarse.dir/test_coarse.cc.o.d"
  "test_coarse"
  "test_coarse.pdb"
  "test_coarse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
