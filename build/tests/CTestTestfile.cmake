# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_ctqg[1]_include.cmake")
include("/root/repo/build/tests/test_passes[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_coarse[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_toolflow[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_programs[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
