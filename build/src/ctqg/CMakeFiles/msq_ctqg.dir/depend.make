# Empty dependencies file for msq_ctqg.
# This may be replaced when dependencies are built.
