file(REMOVE_RECURSE
  "CMakeFiles/msq_ctqg.dir/arith.cc.o"
  "CMakeFiles/msq_ctqg.dir/arith.cc.o.d"
  "CMakeFiles/msq_ctqg.dir/logic.cc.o"
  "CMakeFiles/msq_ctqg.dir/logic.cc.o.d"
  "libmsq_ctqg.a"
  "libmsq_ctqg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_ctqg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
