file(REMOVE_RECURSE
  "libmsq_ctqg.a"
)
