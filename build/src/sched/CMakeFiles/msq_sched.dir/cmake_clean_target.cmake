file(REMOVE_RECURSE
  "libmsq_sched.a"
)
