
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/coarse.cc" "src/sched/CMakeFiles/msq_sched.dir/coarse.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/coarse.cc.o.d"
  "/root/repo/src/sched/comm.cc" "src/sched/CMakeFiles/msq_sched.dir/comm.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/comm.cc.o.d"
  "/root/repo/src/sched/lpfs.cc" "src/sched/CMakeFiles/msq_sched.dir/lpfs.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/lpfs.cc.o.d"
  "/root/repo/src/sched/rcp.cc" "src/sched/CMakeFiles/msq_sched.dir/rcp.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/rcp.cc.o.d"
  "/root/repo/src/sched/schedule_printer.cc" "src/sched/CMakeFiles/msq_sched.dir/schedule_printer.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/schedule_printer.cc.o.d"
  "/root/repo/src/sched/sequential.cc" "src/sched/CMakeFiles/msq_sched.dir/sequential.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/sequential.cc.o.d"
  "/root/repo/src/sched/validator.cc" "src/sched/CMakeFiles/msq_sched.dir/validator.cc.o" "gcc" "src/sched/CMakeFiles/msq_sched.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/msq_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/msq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
