file(REMOVE_RECURSE
  "CMakeFiles/msq_sched.dir/coarse.cc.o"
  "CMakeFiles/msq_sched.dir/coarse.cc.o.d"
  "CMakeFiles/msq_sched.dir/comm.cc.o"
  "CMakeFiles/msq_sched.dir/comm.cc.o.d"
  "CMakeFiles/msq_sched.dir/lpfs.cc.o"
  "CMakeFiles/msq_sched.dir/lpfs.cc.o.d"
  "CMakeFiles/msq_sched.dir/rcp.cc.o"
  "CMakeFiles/msq_sched.dir/rcp.cc.o.d"
  "CMakeFiles/msq_sched.dir/schedule_printer.cc.o"
  "CMakeFiles/msq_sched.dir/schedule_printer.cc.o.d"
  "CMakeFiles/msq_sched.dir/sequential.cc.o"
  "CMakeFiles/msq_sched.dir/sequential.cc.o.d"
  "CMakeFiles/msq_sched.dir/validator.cc.o"
  "CMakeFiles/msq_sched.dir/validator.cc.o.d"
  "libmsq_sched.a"
  "libmsq_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
