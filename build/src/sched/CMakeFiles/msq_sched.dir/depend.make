# Empty dependencies file for msq_sched.
# This may be replaced when dependencies are built.
