file(REMOVE_RECURSE
  "CMakeFiles/msq_ir.dir/dag.cc.o"
  "CMakeFiles/msq_ir.dir/dag.cc.o.d"
  "CMakeFiles/msq_ir.dir/gate.cc.o"
  "CMakeFiles/msq_ir.dir/gate.cc.o.d"
  "CMakeFiles/msq_ir.dir/module.cc.o"
  "CMakeFiles/msq_ir.dir/module.cc.o.d"
  "CMakeFiles/msq_ir.dir/printer.cc.o"
  "CMakeFiles/msq_ir.dir/printer.cc.o.d"
  "CMakeFiles/msq_ir.dir/program.cc.o"
  "CMakeFiles/msq_ir.dir/program.cc.o.d"
  "libmsq_ir.a"
  "libmsq_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
