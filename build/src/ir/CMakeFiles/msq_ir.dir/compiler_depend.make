# Empty compiler generated dependencies file for msq_ir.
# This may be replaced when dependencies are built.
