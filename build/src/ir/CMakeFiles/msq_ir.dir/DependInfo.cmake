
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/dag.cc" "src/ir/CMakeFiles/msq_ir.dir/dag.cc.o" "gcc" "src/ir/CMakeFiles/msq_ir.dir/dag.cc.o.d"
  "/root/repo/src/ir/gate.cc" "src/ir/CMakeFiles/msq_ir.dir/gate.cc.o" "gcc" "src/ir/CMakeFiles/msq_ir.dir/gate.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/ir/CMakeFiles/msq_ir.dir/module.cc.o" "gcc" "src/ir/CMakeFiles/msq_ir.dir/module.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/msq_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/msq_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/msq_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/msq_ir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
