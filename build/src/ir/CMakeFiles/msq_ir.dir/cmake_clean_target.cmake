file(REMOVE_RECURSE
  "libmsq_ir.a"
)
