file(REMOVE_RECURSE
  "libmsq_workloads.a"
)
