
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/boolean_formula.cc" "src/workloads/CMakeFiles/msq_workloads.dir/boolean_formula.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/boolean_formula.cc.o.d"
  "/root/repo/src/workloads/bwt.cc" "src/workloads/CMakeFiles/msq_workloads.dir/bwt.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/bwt.cc.o.d"
  "/root/repo/src/workloads/class_number.cc" "src/workloads/CMakeFiles/msq_workloads.dir/class_number.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/class_number.cc.o.d"
  "/root/repo/src/workloads/grovers.cc" "src/workloads/CMakeFiles/msq_workloads.dir/grovers.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/grovers.cc.o.d"
  "/root/repo/src/workloads/gse.cc" "src/workloads/CMakeFiles/msq_workloads.dir/gse.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/gse.cc.o.d"
  "/root/repo/src/workloads/sha1.cc" "src/workloads/CMakeFiles/msq_workloads.dir/sha1.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/sha1.cc.o.d"
  "/root/repo/src/workloads/shors.cc" "src/workloads/CMakeFiles/msq_workloads.dir/shors.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/shors.cc.o.d"
  "/root/repo/src/workloads/tfp.cc" "src/workloads/CMakeFiles/msq_workloads.dir/tfp.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/tfp.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/msq_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/msq_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctqg/CMakeFiles/msq_ctqg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
