# Empty compiler generated dependencies file for msq_workloads.
# This may be replaced when dependencies are built.
