file(REMOVE_RECURSE
  "CMakeFiles/msq_workloads.dir/boolean_formula.cc.o"
  "CMakeFiles/msq_workloads.dir/boolean_formula.cc.o.d"
  "CMakeFiles/msq_workloads.dir/bwt.cc.o"
  "CMakeFiles/msq_workloads.dir/bwt.cc.o.d"
  "CMakeFiles/msq_workloads.dir/class_number.cc.o"
  "CMakeFiles/msq_workloads.dir/class_number.cc.o.d"
  "CMakeFiles/msq_workloads.dir/grovers.cc.o"
  "CMakeFiles/msq_workloads.dir/grovers.cc.o.d"
  "CMakeFiles/msq_workloads.dir/gse.cc.o"
  "CMakeFiles/msq_workloads.dir/gse.cc.o.d"
  "CMakeFiles/msq_workloads.dir/sha1.cc.o"
  "CMakeFiles/msq_workloads.dir/sha1.cc.o.d"
  "CMakeFiles/msq_workloads.dir/shors.cc.o"
  "CMakeFiles/msq_workloads.dir/shors.cc.o.d"
  "CMakeFiles/msq_workloads.dir/tfp.cc.o"
  "CMakeFiles/msq_workloads.dir/tfp.cc.o.d"
  "CMakeFiles/msq_workloads.dir/workloads.cc.o"
  "CMakeFiles/msq_workloads.dir/workloads.cc.o.d"
  "libmsq_workloads.a"
  "libmsq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
