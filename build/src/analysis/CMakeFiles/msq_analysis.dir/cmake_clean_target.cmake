file(REMOVE_RECURSE
  "libmsq_analysis.a"
)
