file(REMOVE_RECURSE
  "CMakeFiles/msq_analysis.dir/critical_path.cc.o"
  "CMakeFiles/msq_analysis.dir/critical_path.cc.o.d"
  "CMakeFiles/msq_analysis.dir/gate_mix.cc.o"
  "CMakeFiles/msq_analysis.dir/gate_mix.cc.o.d"
  "CMakeFiles/msq_analysis.dir/invocation_counts.cc.o"
  "CMakeFiles/msq_analysis.dir/invocation_counts.cc.o.d"
  "CMakeFiles/msq_analysis.dir/qubit_estimator.cc.o"
  "CMakeFiles/msq_analysis.dir/qubit_estimator.cc.o.d"
  "CMakeFiles/msq_analysis.dir/resource_estimator.cc.o"
  "CMakeFiles/msq_analysis.dir/resource_estimator.cc.o.d"
  "libmsq_analysis.a"
  "libmsq_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
