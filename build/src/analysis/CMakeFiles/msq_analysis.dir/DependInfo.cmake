
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/critical_path.cc" "src/analysis/CMakeFiles/msq_analysis.dir/critical_path.cc.o" "gcc" "src/analysis/CMakeFiles/msq_analysis.dir/critical_path.cc.o.d"
  "/root/repo/src/analysis/gate_mix.cc" "src/analysis/CMakeFiles/msq_analysis.dir/gate_mix.cc.o" "gcc" "src/analysis/CMakeFiles/msq_analysis.dir/gate_mix.cc.o.d"
  "/root/repo/src/analysis/invocation_counts.cc" "src/analysis/CMakeFiles/msq_analysis.dir/invocation_counts.cc.o" "gcc" "src/analysis/CMakeFiles/msq_analysis.dir/invocation_counts.cc.o.d"
  "/root/repo/src/analysis/qubit_estimator.cc" "src/analysis/CMakeFiles/msq_analysis.dir/qubit_estimator.cc.o" "gcc" "src/analysis/CMakeFiles/msq_analysis.dir/qubit_estimator.cc.o.d"
  "/root/repo/src/analysis/resource_estimator.cc" "src/analysis/CMakeFiles/msq_analysis.dir/resource_estimator.cc.o" "gcc" "src/analysis/CMakeFiles/msq_analysis.dir/resource_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
