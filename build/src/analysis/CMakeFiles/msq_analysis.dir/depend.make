# Empty dependencies file for msq_analysis.
# This may be replaced when dependencies are built.
