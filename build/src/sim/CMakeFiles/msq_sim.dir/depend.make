# Empty dependencies file for msq_sim.
# This may be replaced when dependencies are built.
