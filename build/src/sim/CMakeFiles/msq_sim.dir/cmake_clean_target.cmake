file(REMOVE_RECURSE
  "libmsq_sim.a"
)
