file(REMOVE_RECURSE
  "CMakeFiles/msq_sim.dir/statevector.cc.o"
  "CMakeFiles/msq_sim.dir/statevector.cc.o.d"
  "libmsq_sim.a"
  "libmsq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
