# Empty dependencies file for msq_arch.
# This may be replaced when dependencies are built.
