file(REMOVE_RECURSE
  "CMakeFiles/msq_arch.dir/multi_simd.cc.o"
  "CMakeFiles/msq_arch.dir/multi_simd.cc.o.d"
  "CMakeFiles/msq_arch.dir/schedule.cc.o"
  "CMakeFiles/msq_arch.dir/schedule.cc.o.d"
  "CMakeFiles/msq_arch.dir/teleport_circuit.cc.o"
  "CMakeFiles/msq_arch.dir/teleport_circuit.cc.o.d"
  "libmsq_arch.a"
  "libmsq_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
