file(REMOVE_RECURSE
  "libmsq_arch.a"
)
