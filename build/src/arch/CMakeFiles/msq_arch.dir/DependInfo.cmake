
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/multi_simd.cc" "src/arch/CMakeFiles/msq_arch.dir/multi_simd.cc.o" "gcc" "src/arch/CMakeFiles/msq_arch.dir/multi_simd.cc.o.d"
  "/root/repo/src/arch/schedule.cc" "src/arch/CMakeFiles/msq_arch.dir/schedule.cc.o" "gcc" "src/arch/CMakeFiles/msq_arch.dir/schedule.cc.o.d"
  "/root/repo/src/arch/teleport_circuit.cc" "src/arch/CMakeFiles/msq_arch.dir/teleport_circuit.cc.o" "gcc" "src/arch/CMakeFiles/msq_arch.dir/teleport_circuit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
