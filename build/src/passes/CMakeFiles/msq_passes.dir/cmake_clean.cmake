file(REMOVE_RECURSE
  "CMakeFiles/msq_passes.dir/cancel_inverses.cc.o"
  "CMakeFiles/msq_passes.dir/cancel_inverses.cc.o.d"
  "CMakeFiles/msq_passes.dir/decompose_toffoli.cc.o"
  "CMakeFiles/msq_passes.dir/decompose_toffoli.cc.o.d"
  "CMakeFiles/msq_passes.dir/flatten.cc.o"
  "CMakeFiles/msq_passes.dir/flatten.cc.o.d"
  "CMakeFiles/msq_passes.dir/pass_manager.cc.o"
  "CMakeFiles/msq_passes.dir/pass_manager.cc.o.d"
  "CMakeFiles/msq_passes.dir/rotation_decomposer.cc.o"
  "CMakeFiles/msq_passes.dir/rotation_decomposer.cc.o.d"
  "libmsq_passes.a"
  "libmsq_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
