
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/cancel_inverses.cc" "src/passes/CMakeFiles/msq_passes.dir/cancel_inverses.cc.o" "gcc" "src/passes/CMakeFiles/msq_passes.dir/cancel_inverses.cc.o.d"
  "/root/repo/src/passes/decompose_toffoli.cc" "src/passes/CMakeFiles/msq_passes.dir/decompose_toffoli.cc.o" "gcc" "src/passes/CMakeFiles/msq_passes.dir/decompose_toffoli.cc.o.d"
  "/root/repo/src/passes/flatten.cc" "src/passes/CMakeFiles/msq_passes.dir/flatten.cc.o" "gcc" "src/passes/CMakeFiles/msq_passes.dir/flatten.cc.o.d"
  "/root/repo/src/passes/pass_manager.cc" "src/passes/CMakeFiles/msq_passes.dir/pass_manager.cc.o" "gcc" "src/passes/CMakeFiles/msq_passes.dir/pass_manager.cc.o.d"
  "/root/repo/src/passes/rotation_decomposer.cc" "src/passes/CMakeFiles/msq_passes.dir/rotation_decomposer.cc.o" "gcc" "src/passes/CMakeFiles/msq_passes.dir/rotation_decomposer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/msq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
