file(REMOVE_RECURSE
  "libmsq_passes.a"
)
