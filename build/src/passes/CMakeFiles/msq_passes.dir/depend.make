# Empty dependencies file for msq_passes.
# This may be replaced when dependencies are built.
