file(REMOVE_RECURSE
  "CMakeFiles/msq_frontend.dir/lexer.cc.o"
  "CMakeFiles/msq_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/msq_frontend.dir/parser.cc.o"
  "CMakeFiles/msq_frontend.dir/parser.cc.o.d"
  "CMakeFiles/msq_frontend.dir/qasm_emitter.cc.o"
  "CMakeFiles/msq_frontend.dir/qasm_emitter.cc.o.d"
  "CMakeFiles/msq_frontend.dir/qasm_reader.cc.o"
  "CMakeFiles/msq_frontend.dir/qasm_reader.cc.o.d"
  "libmsq_frontend.a"
  "libmsq_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
