file(REMOVE_RECURSE
  "libmsq_frontend.a"
)
