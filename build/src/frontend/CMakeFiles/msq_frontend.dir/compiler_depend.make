# Empty compiler generated dependencies file for msq_frontend.
# This may be replaced when dependencies are built.
