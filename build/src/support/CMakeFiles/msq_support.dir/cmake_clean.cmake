file(REMOVE_RECURSE
  "CMakeFiles/msq_support.dir/logging.cc.o"
  "CMakeFiles/msq_support.dir/logging.cc.o.d"
  "CMakeFiles/msq_support.dir/stats.cc.o"
  "CMakeFiles/msq_support.dir/stats.cc.o.d"
  "CMakeFiles/msq_support.dir/strings.cc.o"
  "CMakeFiles/msq_support.dir/strings.cc.o.d"
  "libmsq_support.a"
  "libmsq_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
