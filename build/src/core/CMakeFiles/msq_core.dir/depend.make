# Empty dependencies file for msq_core.
# This may be replaced when dependencies are built.
