file(REMOVE_RECURSE
  "libmsq_core.a"
)
