file(REMOVE_RECURSE
  "CMakeFiles/msq_core.dir/toolflow.cc.o"
  "CMakeFiles/msq_core.dir/toolflow.cc.o.d"
  "libmsq_core.a"
  "libmsq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
