file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_qubits.dir/bench_table1_qubits.cc.o"
  "CMakeFiles/bench_table1_qubits.dir/bench_table1_qubits.cc.o.d"
  "bench_table1_qubits"
  "bench_table1_qubits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_qubits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
