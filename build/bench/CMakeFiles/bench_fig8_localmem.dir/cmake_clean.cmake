file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_localmem.dir/bench_fig8_localmem.cc.o"
  "CMakeFiles/bench_fig8_localmem.dir/bench_fig8_localmem.cc.o.d"
  "bench_fig8_localmem"
  "bench_fig8_localmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_localmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
