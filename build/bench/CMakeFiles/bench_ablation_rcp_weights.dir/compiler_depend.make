# Empty compiler generated dependencies file for bench_ablation_rcp_weights.
# This may be replaced when dependencies are built.
