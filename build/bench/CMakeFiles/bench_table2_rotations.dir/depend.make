# Empty dependencies file for bench_table2_rotations.
# This may be replaced when dependencies are built.
