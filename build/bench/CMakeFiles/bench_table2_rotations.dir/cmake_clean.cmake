file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rotations.dir/bench_table2_rotations.cc.o"
  "CMakeFiles/bench_table2_rotations.dir/bench_table2_rotations.cc.o.d"
  "bench_table2_rotations"
  "bench_table2_rotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
