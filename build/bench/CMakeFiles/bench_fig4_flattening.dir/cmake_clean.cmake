file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_flattening.dir/bench_fig4_flattening.cc.o"
  "CMakeFiles/bench_fig4_flattening.dir/bench_fig4_flattening.cc.o.d"
  "bench_fig4_flattening"
  "bench_fig4_flattening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_flattening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
