# Empty dependencies file for bench_fig4_flattening.
# This may be replaced when dependencies are built.
