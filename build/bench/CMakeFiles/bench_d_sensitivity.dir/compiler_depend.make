# Empty compiler generated dependencies file for bench_d_sensitivity.
# This may be replaced when dependencies are built.
