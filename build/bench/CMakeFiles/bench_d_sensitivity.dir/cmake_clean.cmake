file(REMOVE_RECURSE
  "CMakeFiles/bench_d_sensitivity.dir/bench_d_sensitivity.cc.o"
  "CMakeFiles/bench_d_sensitivity.dir/bench_d_sensitivity.cc.o.d"
  "bench_d_sensitivity"
  "bench_d_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
