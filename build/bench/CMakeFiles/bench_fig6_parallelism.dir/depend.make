# Empty dependencies file for bench_fig6_parallelism.
# This may be replaced when dependencies are built.
