# Empty dependencies file for bench_ablation_lpfs.
# This may be replaced when dependencies are built.
