file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lpfs.dir/bench_ablation_lpfs.cc.o"
  "CMakeFiles/bench_ablation_lpfs.dir/bench_ablation_lpfs.cc.o.d"
  "bench_ablation_lpfs"
  "bench_ablation_lpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
