# Empty compiler generated dependencies file for scaffold_compile.
# This may be replaced when dependencies are built.
