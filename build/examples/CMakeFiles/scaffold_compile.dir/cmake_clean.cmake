file(REMOVE_RECURSE
  "CMakeFiles/scaffold_compile.dir/scaffold_compile.cc.o"
  "CMakeFiles/scaffold_compile.dir/scaffold_compile.cc.o.d"
  "scaffold_compile"
  "scaffold_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffold_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
