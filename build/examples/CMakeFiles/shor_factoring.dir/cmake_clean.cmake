file(REMOVE_RECURSE
  "CMakeFiles/shor_factoring.dir/shor_factoring.cc.o"
  "CMakeFiles/shor_factoring.dir/shor_factoring.cc.o.d"
  "shor_factoring"
  "shor_factoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shor_factoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
