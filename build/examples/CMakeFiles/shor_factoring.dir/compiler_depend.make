# Empty compiler generated dependencies file for shor_factoring.
# This may be replaced when dependencies are built.
