
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/architecture_explorer.cc" "examples/CMakeFiles/architecture_explorer.dir/architecture_explorer.cc.o" "gcc" "examples/CMakeFiles/architecture_explorer.dir/architecture_explorer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/msq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/msq_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/msq_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/msq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/msq_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/ctqg/CMakeFiles/msq_ctqg.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/msq_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
