file(REMOVE_RECURSE
  "CMakeFiles/architecture_explorer.dir/architecture_explorer.cc.o"
  "CMakeFiles/architecture_explorer.dir/architecture_explorer.cc.o.d"
  "architecture_explorer"
  "architecture_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
