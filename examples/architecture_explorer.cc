/**
 * @file
 * Example: design-space exploration across Multi-SIMD(k,d) parameters
 * for one workload — the kind of study the architecture model exists
 * for. Sweeps k, d and local-memory capacity, reporting schedule length
 * and movement statistics.
 *
 * Usage: architecture_explorer [workload]   (default: gse; one of
 *        bf bwt cn grovers gse sha1 shors tfp)
 */

#include <iostream>
#include <string>

#include "core/toolflow.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "workloads/workloads.hh"

using namespace msq;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gse";
    auto spec = workloads::findWorkload(workloads::scaledParams(), name);

    std::cout << "architecture exploration for " << spec.name << "\n\n";

    // Sweep 1: number of regions k (d = inf, no local memory).
    {
        ResultTable table("sweep k (d = inf, no local memory, LPFS)");
        table.setHeader({"k", "cycles", "speedup-vs-naive"});
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            Program prog = spec.build();
            ToolflowConfig config;
            config.scheduler = SchedulerKind::Lpfs;
            config.arch = MultiSimdArch(k);
            config.commMode = CommMode::Global;
            config.rotations = Toolflow::rotationPresetFor(spec.shortName);
            auto result = Toolflow(config).run(prog);
            table.beginRow();
            table.addCell(static_cast<unsigned long long>(k));
            table.addCell(withCommas(result.scheduledCycles));
            table.addCell(result.speedupVsNaive, 2);
        }
        table.printAscii(std::cout);
        std::cout << "\n";
    }

    // Sweep 2: region data width d (k = 4). The paper notes results
    // barely change down to d = 32 (§5.4).
    {
        ResultTable table("sweep d (k = 4, no local memory, LPFS)");
        table.setHeader({"d", "cycles", "speedup-vs-naive"});
        for (uint64_t d : {uint64_t{4}, uint64_t{16}, uint64_t{32},
                           uint64_t{128}, unbounded}) {
            Program prog = spec.build();
            ToolflowConfig config;
            config.scheduler = SchedulerKind::Lpfs;
            config.arch = MultiSimdArch(4, d);
            config.commMode = CommMode::Global;
            config.rotations = Toolflow::rotationPresetFor(spec.shortName);
            auto result = Toolflow(config).run(prog);
            table.beginRow();
            table.addCell(d == unbounded ? std::string("inf")
                                         : std::to_string(d));
            table.addCell(withCommas(result.scheduledCycles));
            table.addCell(result.speedupVsNaive, 2);
        }
        table.printAscii(std::cout);
        std::cout << "\n";
    }

    // Sweep 3: local-memory capacity (k = 4, d = inf).
    {
        ResultTable table("sweep local-memory capacity (k = 4, LPFS)");
        table.setHeader({"capacity", "cycles", "speedup-vs-naive"});
        for (uint64_t capacity : {uint64_t{0}, uint64_t{2}, uint64_t{8},
                                  uint64_t{32}, unbounded}) {
            Program prog = spec.build();
            ToolflowConfig config;
            config.scheduler = SchedulerKind::Lpfs;
            config.arch = MultiSimdArch(4, unbounded, capacity);
            config.commMode = capacity == 0
                                  ? CommMode::Global
                                  : CommMode::GlobalWithLocalMem;
            config.rotations = Toolflow::rotationPresetFor(spec.shortName);
            auto result = Toolflow(config).run(prog);
            table.beginRow();
            table.addCell(capacity == unbounded
                              ? std::string("inf")
                              : std::to_string(capacity));
            table.addCell(withCommas(result.scheduledCycles));
            table.addCell(result.speedupVsNaive, 2);
        }
        table.printAscii(std::cout);
    }
    return 0;
}
