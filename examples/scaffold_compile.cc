/**
 * @file
 * Example: a miniature `scaffcc`-style command-line compiler. Reads a
 * Scaffold-subset source file (or a built-in demo program when no file
 * is given), runs the decomposition + flattening + scheduling pipeline,
 * prints the schedule summary, and emits hierarchical QASM.
 *
 * Usage: scaffold_compile [file.scaffold] [--scheduler rcp|lpfs]
 *                         [--k N] [--local N] [--emit-qasm]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/toolflow.hh"
#include "frontend/parser.hh"
#include "frontend/qasm_emitter.hh"
#include "support/logging.hh"
#include "support/strings.hh"

using namespace msq;

namespace {

const char *demoSource = R"(
// Demo: an entangling kernel repeated inside a measurement loop.
module bell_pair(qbit a, qbit b) {
    H(a);
    CNOT(a, b);
}

module kernel(qbit q[4]) {
    qbit anc;
    bell_pair(q[0], q[1]);
    bell_pair(q[2], q[3]);
    Toffoli(q[0], q[2], anc);
    Rz(anc, 0.196349540849);
    Toffoli(q[0], q[2], anc);
}

module main() {
    qbit q[4];
    repeat 100 kernel(q);
    MeasZ(q[0]);
    MeasZ(q[1]);
}
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool emit_qasm = false;
    ToolflowConfig config;
    config.scheduler = SchedulerKind::Lpfs;
    config.commMode = CommMode::Global;
    config.rotations.sequenceLength = 100;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--emit-qasm") {
            emit_qasm = true;
        } else if (arg == "--scheduler" && i + 1 < argc) {
            std::string kind = argv[++i];
            if (kind == "rcp")
                config.scheduler = SchedulerKind::Rcp;
            else if (kind == "lpfs")
                config.scheduler = SchedulerKind::Lpfs;
            else if (kind == "sequential")
                config.scheduler = SchedulerKind::Sequential;
            else
                fatal("unknown scheduler: " + kind);
        } else if (arg == "--k" && i + 1 < argc) {
            config.arch.k = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--local" && i + 1 < argc) {
            config.arch.localMemCapacity =
                std::strtoull(argv[++i], nullptr, 10);
            config.commMode = CommMode::GlobalWithLocalMem;
        } else {
            path = arg;
        }
    }

    try {
        Program prog = path.empty() ? parseScaffold(demoSource)
                                    : parseScaffoldFile(path);
        std::cout << "parsed " << prog.reachableModules().size()
                  << " reachable module(s); entry = "
                  << prog.module(prog.entry()).name() << "\n";

        ToolflowResult result = Toolflow(config).run(prog);
        std::cout << "target:          " << config.arch.describe() << "\n"
                  << "scheduler:       "
                  << schedulerKindName(config.scheduler) << "\n"
                  << "total gates:     " << withCommas(result.totalGates)
                  << "\n"
                  << "critical path:   "
                  << withCommas(result.criticalPath) << "\n"
                  << "qubits (Q):      " << result.qubits << "\n"
                  << "scheduled cycles: "
                  << withCommas(result.scheduledCycles) << "\n"
                  << csprintf("speedup vs sequential: %.2f\n",
                              result.speedupVsSequential)
                  << csprintf("speedup vs naive:      %.2f\n",
                              result.speedupVsNaive);

        if (emit_qasm) {
            std::cout << "\n--- hierarchical QASM (post-pipeline) ---\n";
            emitHierarchicalQasm(std::cout, prog);
        }
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
