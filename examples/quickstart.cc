/**
 * @file
 * Quickstart: build a small quantum program with the IR builder API,
 * compile it through the full MSQ toolflow, and compare the schedulers
 * on a Multi-SIMD(4,inf) machine with local scratchpad memories.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <iostream>

#include "core/toolflow.hh"
#include "ir/printer.hh"
#include "support/stats.hh"

using namespace msq;

namespace {

/** A toy program: repeated Toffoli mixing plus a rotation chain. */
Program
buildDemo()
{
    Program prog;

    ModuleId mixer = prog.addModule("mixer");
    {
        Module &mod = prog.module(mixer);
        QubitId a = mod.addParam("a");
        QubitId b = mod.addParam("b");
        QubitId c = mod.addParam("c");
        mod.addGate(GateKind::Toffoli, {a, b, c});
        mod.addGate(GateKind::Toffoli, {a, c, b});
        mod.addGate(GateKind::Rz, {c}, 0.3141);
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        auto reg = mod.addRegister("q", 6);
        for (QubitId q : reg)
            mod.addGate(GateKind::PrepZ, {q});
        for (QubitId q : reg)
            mod.addGate(GateKind::H, {q});
        // Two independent mixer streams, repeated: parallelism across
        // calls, seriality within each.
        mod.addCall(mixer, {reg[0], reg[1], reg[2]}, 50);
        mod.addCall(mixer, {reg[3], reg[4], reg[5]}, 50);
        for (QubitId q : reg)
            mod.addGate(GateKind::MeasZ, {q});
    }
    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace

int
main()
{
    std::cout << "MSQ quickstart: scheduling a toy program on "
              << MultiSimdArch(4).describe() << "\n\n";

    {
        Program prog = buildDemo();
        std::cout << "Input program:\n";
        printProgram(std::cout, prog);
    }

    ResultTable table("scheduler comparison (k=4, global comm + 8-qubit "
                      "local memories)");
    table.setHeader({"scheduler", "gates", "critical-path", "cycles",
                     "speedup-vs-seq", "speedup-vs-naive"});

    for (SchedulerKind kind : {SchedulerKind::Sequential,
                               SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        Program prog = buildDemo(); // passes rewrite in place: fresh copy
        ToolflowConfig config;
        config.scheduler = kind;
        config.arch = MultiSimdArch(4, unbounded, 8);
        config.commMode = CommMode::GlobalWithLocalMem;
        ToolflowResult result = Toolflow(config).run(prog);

        table.beginRow();
        table.addCell(std::string(schedulerKindName(kind)));
        table.addCell(static_cast<unsigned long long>(result.totalGates));
        table.addCell(
            static_cast<unsigned long long>(result.criticalPath));
        table.addCell(
            static_cast<unsigned long long>(result.scheduledCycles));
        table.addCell(result.speedupVsSequential, 2);
        table.addCell(result.speedupVsNaive, 2);
    }
    table.printAscii(std::cout);

    std::cout << "\nNext steps: see examples/grover_search.cc and "
                 "examples/architecture_explorer.cc, and the bench/ "
                 "binaries that regenerate each paper table/figure.\n";
    return 0;
}
