/**
 * @file
 * Example: Shor's factoring through the toolflow, illustrating the
 * paper's §5.4 observation — decomposed rotations stay blackbox modules
 * in the coarse-grained schedule, so Shor's (unlike the rest of the
 * suite) keeps speeding up as SIMD regions are added.
 *
 * Usage: shor_factoring [n]    (factor an n-bit number, default 8)
 */

#include <cstdlib>
#include <iostream>

#include "core/toolflow.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "workloads/workloads.hh"

using namespace msq;

int
main(int argc, char **argv)
{
    unsigned n = 8;
    if (argc > 1)
        n = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));

    std::cout << "Shor's factoring of an " << n << "-bit modulus\n\n";

    ResultTable table("k sensitivity (LPFS, outlined rotations, "
                      "infinite local memories)");
    table.setHeader({"k", "gates", "critical-path", "cycles",
                     "speedup-vs-naive"});

    for (unsigned k : {2u, 4u, 8u, 16u, 32u}) {
        Program prog = workloads::buildShors(n);
        ToolflowConfig config;
        config.scheduler = SchedulerKind::Lpfs;
        config.arch = MultiSimdArch(k, unbounded, unbounded);
        config.commMode = CommMode::GlobalWithLocalMem;
        config.rotations = Toolflow::rotationPresetFor("shors");
        ToolflowResult result = Toolflow(config).run(prog);

        table.beginRow();
        table.addCell(static_cast<unsigned long long>(k));
        table.addCell(withCommas(result.totalGates));
        table.addCell(withCommas(result.criticalPath));
        table.addCell(withCommas(result.scheduledCycles));
        table.addCell(result.speedupVsNaive, 2);
    }
    table.printAscii(std::cout);

    std::cout << "\nEach Fourier-basis constant-add fans out one "
                 "distinct-angle rotation per work qubit; decomposed "
                 "into serial blackboxes, every concurrent rotation "
                 "needs its own SIMD region (paper Table 2 / Fig. 9).\n";
    return 0;
}
