/**
 * @file
 * Example: compile Grover's Search end-to-end and study how the two
 * communication-aware schedulers (RCP vs LPFS) and local scratchpad
 * memories affect its runtime on Multi-SIMD machines of varying width.
 *
 * Usage: grover_search [n]     (search space 2^n, default n = 10)
 */

#include <cstdlib>
#include <iostream>

#include "analysis/qubit_estimator.hh"
#include "core/toolflow.hh"
#include "support/stats.hh"
#include "support/strings.hh"
#include "workloads/workloads.hh"

using namespace msq;

int
main(int argc, char **argv)
{
    unsigned n = 10;
    if (argc > 1)
        n = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));

    std::cout << "Grover's Search, database of 2^" << n << " elements\n\n";

    {
        Program prog = workloads::buildGrovers(n);
        QubitEstimator qubits(prog);
        std::cout << "minimum qubits Q (sequential, ancilla reuse): "
                  << qubits.programQubits() << "\n\n";
    }

    ResultTable table("schedulers x architectures (speedup over the "
                      "naive movement model)");
    table.setHeader({"scheduler", "arch", "cycles", "speedup-vs-naive"});

    for (SchedulerKind kind : {SchedulerKind::Rcp, SchedulerKind::Lpfs}) {
        for (unsigned k : {2u, 4u}) {
            for (uint64_t local : {uint64_t{0}, unbounded}) {
                Program prog = workloads::buildGrovers(n);
                ToolflowConfig config;
                config.scheduler = kind;
                config.arch = MultiSimdArch(k, unbounded, local);
                config.commMode = local == 0
                                      ? CommMode::Global
                                      : CommMode::GlobalWithLocalMem;
                ToolflowResult result = Toolflow(config).run(prog);

                table.beginRow();
                table.addCell(std::string(schedulerKindName(kind)));
                table.addCell(config.arch.describe());
                table.addCell(withCommas(result.scheduledCycles));
                table.addCell(result.speedupVsNaive, 2);
            }
        }
    }
    table.printAscii(std::cout);

    std::cout << "\nGrover's is mostly serial (critical-path bound "
                 "~1.6x), so the wins come from movement elimination "
                 "and local memories rather than width.\n";
    return 0;
}
