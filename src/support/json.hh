/**
 * @file
 * Minimal JSON value model and recursive-descent parser — just enough
 * for the msq-served NDJSON request protocol (core/serve.hh). Writing
 * JSON stays string-based (jsonEscape/jsonNumber in telemetry.hh);
 * this header only covers the *reading* side, which the repo previously
 * never needed.
 *
 * Scope: full JSON syntax (objects, arrays, strings with escapes,
 * numbers, booleans, null) with two deliberate simplifications —
 * numbers are stored as double (compile requests carry small integers
 * and scale factors; 2^53 is plenty) and \uXXXX escapes outside the
 * Basic Multilingual Plane are decoded per surrogate half.
 */

#ifndef MSQ_SUPPORT_JSON_HH
#define MSQ_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace msq {

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind : uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /// @name Typed accessors (defaulted when the kind does not match,
    /// so protocol code reads optional fields without kind juggling)
    /// @{
    bool asBool(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }

    double asNumber(double fallback = 0.0) const
    {
        return isNumber() ? num_ : fallback;
    }

    /** asNumber clamped/truncated to uint64_t (negative -> fallback). */
    uint64_t asUnsigned(uint64_t fallback = 0) const;

    const std::string &asString() const { return str_; }

    const std::vector<JsonValue> &elements() const { return arr_; }

    /** Object member by key, or a shared Null value when absent. */
    const JsonValue &get(const std::string &key) const;

    bool has(const std::string &key) const
    {
        return obj_.count(key) > 0;
    }
    /// @}

    /// @name Construction (parser + tests)
    /// @{
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(std::map<std::string, JsonValue> v);
    /// @}

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/**
 * Parse @p text as one JSON document.
 * @param error receives a human-readable message on failure.
 * @return the parsed value, or nullptr on malformed input (never
 *         throws: daemon request lines are untrusted).
 */
std::unique_ptr<JsonValue> parseJson(const std::string &text,
                                     std::string &error);

} // namespace msq

#endif // MSQ_SUPPORT_JSON_HH
