/**
 * @file
 * Lightweight tabular reporting used by the benchmark harness to print the
 * rows/series of each paper table and figure, in both aligned-ASCII and CSV
 * form.
 */

#ifndef MSQ_SUPPORT_STATS_HH
#define MSQ_SUPPORT_STATS_HH

#include <ostream>
#include <string>
#include <vector>

namespace msq {

/**
 * A simple column-oriented results table. Cells are strings; numeric
 * convenience adders format with sensible precision. Rows are printed in
 * insertion order.
 */
class ResultTable
{
  public:
    /** @param title table caption printed above the header. */
    explicit ResultTable(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; must be called before adding rows. */
    void setHeader(std::vector<std::string> names);

    /** Begin a new row. Subsequent addCell calls fill it left to right. */
    void beginRow();

    /** Append a string cell to the current row. */
    void addCell(const std::string &value);

    /** Append an integer cell. */
    void addCell(long long value);
    void addCell(unsigned long long value);

    /** Append a floating-point cell with @p precision decimals. */
    void addCell(double value, int precision = 3);

    /** Number of data rows so far. */
    size_t rows() const { return cells.size(); }

    /** Print with aligned columns. */
    void printAscii(std::ostream &os) const;

    /** Print as CSV (header row first). */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> cells;
};

} // namespace msq

#endif // MSQ_SUPPORT_STATS_HH
