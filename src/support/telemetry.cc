#include "support/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace msq {

// --- JSON helpers -------------------------------------------------------

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    // JSON has no NaN/Inf literals; metrics should never produce them,
    // but keep the document well-formed if one slips through.
    if (!std::isfinite(value))
        return "0";
    // Shortest decimal form that round-trips (stable across runs for
    // identical values, unlike a fixed high precision with its noise
    // digits).
    char buf[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

// --- Distribution -------------------------------------------------------

void
Distribution::record(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(value);
}

std::vector<double>
Distribution::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

DistributionStats
Distribution::stats() const
{
    std::vector<double> sorted = samples();
    DistributionStats stats;
    if (sorted.empty())
        return stats;
    std::sort(sorted.begin(), sorted.end());
    stats.count = sorted.size();
    for (double v : sorted)
        stats.sum += v;
    stats.min = sorted.front();
    stats.max = sorted.back();
    // Nearest-rank percentiles: the smallest sample such that at least
    // p% of the set is <= it.
    auto rank = [&](unsigned pct) {
        size_t r = (sorted.size() * pct + 99) / 100;
        return sorted[r > 0 ? r - 1 : 0];
    };
    stats.p50 = rank(50);
    stats.p99 = rank(99);
    return stats;
}

// --- MetricsSnapshot ----------------------------------------------------

const MetricEntry *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricEntry &entry : entries)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const MetricEntry *entry = find(name);
    return entry != nullptr ? entry->counterValue : 0;
}

int64_t
MetricsSnapshot::gauge(const std::string &name) const
{
    const MetricEntry *entry = find(name);
    return entry != nullptr ? entry->gaugeValue : 0;
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n  \"version\": 1,\n  \"metrics\": [\n";
    for (size_t i = 0; i < entries.size(); ++i) {
        const MetricEntry &entry = entries[i];
        os << "    {\"name\": \"" << jsonEscape(entry.name) << "\", ";
        switch (entry.kind) {
          case MetricEntry::Kind::Counter:
            os << "\"type\": \"counter\", \"value\": "
               << entry.counterValue;
            break;
          case MetricEntry::Kind::Gauge:
            os << "\"type\": \"gauge\", \"value\": " << entry.gaugeValue;
            break;
          case MetricEntry::Kind::Distribution:
            os << "\"type\": \"distribution\", \"count\": "
               << entry.dist.count << ", \"sum\": "
               << jsonNumber(entry.dist.sum) << ", \"min\": "
               << jsonNumber(entry.dist.min) << ", \"max\": "
               << jsonNumber(entry.dist.max) << ", \"p50\": "
               << jsonNumber(entry.dist.p50) << ", \"p99\": "
               << jsonNumber(entry.dist.p99);
            break;
        }
        os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

// --- MetricsRegistry ----------------------------------------------------

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Distribution &
MetricsRegistry::distribution(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = distributions_[name];
    if (!slot)
        slot = std::make_unique<Distribution>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_) {
        MetricEntry entry;
        entry.name = name;
        entry.kind = MetricEntry::Kind::Counter;
        entry.counterValue = counter->value();
        snap.entries.push_back(std::move(entry));
    }
    for (const auto &[name, gauge] : gauges_) {
        MetricEntry entry;
        entry.name = name;
        entry.kind = MetricEntry::Kind::Gauge;
        entry.gaugeValue = gauge->value();
        snap.entries.push_back(std::move(entry));
    }
    for (const auto &[name, dist] : distributions_) {
        MetricEntry entry;
        entry.name = name;
        entry.kind = MetricEntry::Kind::Distribution;
        entry.dist = dist->stats();
        snap.entries.push_back(std::move(entry));
    }
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const MetricEntry &a, const MetricEntry &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::mergeInto(MetricsRegistry &dst) const
{
    // Copy under our lock, then apply through dst's public interface
    // (which takes dst's own lock) — the locks are never held together,
    // so merge direction cannot deadlock.
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, std::vector<double>>> dists;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, counter] : counters_)
            counters.emplace_back(name, counter->value());
        for (const auto &[name, gauge] : gauges_)
            gauges.emplace_back(name, gauge->value());
        for (const auto &[name, dist] : distributions_)
            dists.emplace_back(name, dist->samples());
    }
    for (const auto &[name, value] : counters)
        dst.counter(name).add(value);
    for (const auto &[name, value] : gauges) {
        const bool peak = name.size() >= 5 &&
                          name.compare(name.size() - 5, 5, "_peak") == 0;
        if (peak)
            dst.gauge(name).setMax(value);
        else
            dst.gauge(name).set(value);
    }
    for (const auto &[name, samples] : dists) {
        Distribution &dist = dst.distribution(name);
        for (double sample : samples)
            dist.record(sample);
    }
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    distributions_.clear();
}

// --- clocks and thread ids ---------------------------------------------

uint64_t
telemetryNowUs()
{
    static const auto process_start = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - process_start)
            .count());
}

uint32_t
TraceRecorder::currentThreadId()
{
#ifdef __linux__
    thread_local const uint32_t tid =
        static_cast<uint32_t>(::syscall(SYS_gettid));
#else
    thread_local const uint32_t tid = static_cast<uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
    return tid;
}

// --- TraceRecorder ------------------------------------------------------

struct TraceRecorder::Buffer
{
    /**
     * Guards events against the flushing thread only: record() is
     * called exclusively by the buffer's owning thread, so this mutex
     * is uncontended (a single CAS) except while a flush is draining.
     */
    std::mutex mutex;
    std::vector<TraceEvent> events;
};

namespace {

std::atomic<uint64_t> next_recorder_id{1};

} // anonymous namespace

TraceRecorder::TraceRecorder()
    : id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed))
{
}

void
TraceRecorder::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

TraceRecorder::Buffer &
TraceRecorder::threadBuffer()
{
    // Per-thread cache of (recorder id -> buffer). shared_ptr keeps a
    // cached buffer alive even if the recorder dies first, so a stale
    // entry can only ever drop events, never touch freed memory.
    struct Ref
    {
        uint64_t recorderId;
        std::shared_ptr<Buffer> buffer;
    };
    thread_local std::vector<Ref> refs;
    for (const Ref &ref : refs)
        if (ref.recorderId == id_)
            return *ref.buffer;
    auto buffer = std::make_shared<Buffer>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(buffer);
    }
    refs.push_back({id_, buffer});
    return *buffer;
}

void
TraceRecorder::record(TraceEvent event)
{
    Buffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceRecorder::flush()
{
    std::vector<std::shared_ptr<Buffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::vector<TraceEvent> events;
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        events.insert(events.end(),
                      std::make_move_iterator(buffer->events.begin()),
                      std::make_move_iterator(buffer->events.end()));
        buffer->events.clear();
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.name < b.name;
              });
    return events;
}

void
TraceRecorder::writeChromeTrace(std::ostream &os)
{
#ifdef __linux__
    const uint32_t pid = static_cast<uint32_t>(::getpid());
#else
    const uint32_t pid = 1;
#endif
    std::vector<TraceEvent> events = flush();
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &event = events[i];
        os << "  {\"name\": \"" << jsonEscape(event.name)
           << "\", \"cat\": \"msq\", \"ph\": \"X\", \"ts\": "
           << event.tsUs << ", \"dur\": " << event.durUs
           << ", \"pid\": " << pid << ", \"tid\": " << event.tid;
        if (!event.args.empty())
            os << ", \"args\": {" << event.args << "}";
        os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    os << "]}\n";
}

// --- TraceSpan ----------------------------------------------------------

TraceSpan::TraceSpan(TraceRecorder &recorder, std::string name)
{
    if (!recorder.enabled())
        return;
    recorder_ = &recorder;
    name_ = std::move(name);
    startUs_ = telemetryNowUs();
}

void
TraceSpan::setArgs(std::string args_json)
{
    if (recorder_ != nullptr)
        args_ = std::move(args_json);
}

TraceSpan::~TraceSpan()
{
    if (recorder_ == nullptr)
        return;
    TraceEvent event;
    event.name = std::move(name_);
    event.args = std::move(args_);
    event.tsUs = startUs_;
    event.durUs = telemetryNowUs() - startUs_;
    event.tid = TraceRecorder::currentThreadId();
    recorder_->record(std::move(event));
}

// --- Telemetry (process-wide wiring) ------------------------------------

namespace {

std::atomic<bool> g_metrics_enabled{false};

std::string &
envMetricsPath()
{
    static std::string path;
    return path;
}

std::string &
envTracePath()
{
    static std::string path;
    return path;
}

} // anonymous namespace

MetricsRegistry &
Telemetry::metrics()
{
    static MetricsRegistry registry;
    return registry;
}

TraceRecorder &
Telemetry::trace()
{
    static TraceRecorder recorder;
    return recorder;
}

bool
Telemetry::metricsEnabled()
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

void
Telemetry::setMetricsEnabled(bool enabled)
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void
Telemetry::initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Force the globals to outlive the atexit hook (constructed
        // before the hook registers, hence destroyed after it runs).
        (void)metrics();
        (void)trace();
        const char *metrics_path = std::getenv("MSQ_METRICS");
        if (metrics_path != nullptr && *metrics_path != '\0') {
            envMetricsPath() = metrics_path;
            setMetricsEnabled(true);
        }
        const char *trace_path = std::getenv("MSQ_TRACE");
        if (trace_path != nullptr && *trace_path != '\0') {
            envTracePath() = trace_path;
            trace().setEnabled(true);
        }
        if (!envMetricsPath().empty() || !envTracePath().empty())
            std::atexit([] { flushEnvOutputs(); });
    });
}

void
Telemetry::setMetricsPath(const std::string &path)
{
    envMetricsPath() = path;
    setMetricsEnabled(!path.empty());
}

void
Telemetry::setTracePath(const std::string &path)
{
    envTracePath() = path;
}

const std::string &
Telemetry::metricsPath()
{
    return envMetricsPath();
}

const std::string &
Telemetry::tracePath()
{
    return envTracePath();
}

void
Telemetry::flushEnvOutputs()
{
    if (!envMetricsPath().empty()) {
        std::ofstream out(envMetricsPath());
        if (out)
            metrics().snapshot().writeJson(out);
    }
    if (!envTracePath().empty()) {
        std::ofstream out(envTracePath());
        if (out)
            trace().writeChromeTrace(out);
    }
}

} // namespace msq
