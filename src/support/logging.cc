#include "support/logging.hh"

#include <atomic>
#include <iostream>

namespace msq {

namespace {

std::atomic<bool> verboseEnabled{false};

} // anonymous namespace

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (verboseEnabled.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool enabled)
{
    verboseEnabled.store(enabled, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseEnabled.load(std::memory_order_relaxed);
}

} // namespace msq
