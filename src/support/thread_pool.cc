#include "support/thread_pool.hh"

#include "support/logging.hh"

namespace msq {

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : numThreads_(num_threads == 0 ? hardwareThreads() : num_threads)
{
    workers.reserve(numThreads_ - 1);
    for (unsigned i = 1; i < numThreads_; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::runIndices()
{
    for (;;) {
        uint64_t i = nextIndex.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_)
            return;
        try {
            (*body_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError || i < firstErrorIndex) {
                firstError = std::current_exception();
                firstErrorIndex = i;
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex);
            wake.wait(lock,
                      [&] { return stopping || generation != seen; });
            if (stopping)
                return;
            seen = generation;
        }
        runIndices();
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (--activeWorkers == 0)
                done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(uint64_t count,
                        const std::function<void(uint64_t)> &body)
{
    if (count == 0)
        return;
    if (workers.empty() || count == 1) {
        // Exact sequential path: exceptions propagate directly.
        for (uint64_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex);
        if (body_)
            panic("ThreadPool::parallelFor is not reentrant");
        body_ = &body;
        count_ = count;
        nextIndex.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        activeWorkers = workers.size();
        ++generation;
    }
    wake.notify_all();

    runIndices(); // the caller participates

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex);
        done.wait(lock, [&] { return activeWorkers == 0; });
        body_ = nullptr;
        count_ = 0;
        error = firstError;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace msq
