#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/strings.hh"

namespace msq {

uint64_t
JsonValue::asUnsigned(uint64_t fallback) const
{
    if (!isNumber() || num_ < 0 || std::isnan(num_))
        return fallback;
    return static_cast<uint64_t>(num_);
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    static const JsonValue nullValue;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullValue : it->second;
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out.kind_ = Kind::Number;
    out.num_ = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.str_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue out;
    out.kind_ = Kind::Array;
    out.arr_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> v)
{
    JsonValue out;
    out.kind_ = Kind::Object;
    out.obj_ = std::move(v);
    return out;
}

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;
    unsigned depth = 0;

    static constexpr unsigned maxDepth = 64; ///< stack-overflow guard

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = csprintf("JSON parse error at offset %zu: %s", pos,
                             msg.c_str());
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            return fail(csprintf("expected '%c'", c));
        ++pos;
        return true;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return fail(csprintf("invalid literal, expected \"%s\"",
                                 word));
        pos += len;
        return true;
    }

    bool
    parseHex4(uint32_t &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            char esc = text[pos++];
            switch (esc) {
              case '"':  out.push_back('"');  break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/');  break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u': {
                  uint32_t cp = 0;
                  if (!parseHex4(cp))
                      return false;
                  appendUtf8(out, cp);
                  break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            return fail("invalid number");
        out = JsonValue::makeNumber(value);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size()) {
            --depth;
            return fail("unexpected end of input");
        }
        bool ok = false;
        switch (text[pos]) {
          case '{': {
              ++pos;
              std::map<std::string, JsonValue> members;
              skipSpace();
              if (pos < text.size() && text[pos] == '}') {
                  ++pos;
                  ok = true;
              } else {
                  while (true) {
                      std::string key;
                      skipSpace();
                      if (!parseString(key))
                          break;
                      if (!consume(':'))
                          break;
                      JsonValue value;
                      if (!parseValue(value))
                          break;
                      members[std::move(key)] = std::move(value);
                      skipSpace();
                      if (pos < text.size() && text[pos] == ',') {
                          ++pos;
                          continue;
                      }
                      ok = consume('}');
                      break;
                  }
              }
              if (ok)
                  out = JsonValue::makeObject(std::move(members));
              break;
          }
          case '[': {
              ++pos;
              std::vector<JsonValue> items;
              skipSpace();
              if (pos < text.size() && text[pos] == ']') {
                  ++pos;
                  ok = true;
              } else {
                  while (true) {
                      JsonValue value;
                      if (!parseValue(value))
                          break;
                      items.push_back(std::move(value));
                      skipSpace();
                      if (pos < text.size() && text[pos] == ',') {
                          ++pos;
                          continue;
                      }
                      ok = consume(']');
                      break;
                  }
              }
              if (ok)
                  out = JsonValue::makeArray(std::move(items));
              break;
          }
          case '"': {
              std::string s;
              ok = parseString(s);
              if (ok)
                  out = JsonValue::makeString(std::move(s));
              break;
          }
          case 't':
            ok = literal("true");
            if (ok)
                out = JsonValue::makeBool(true);
            break;
          case 'f':
            ok = literal("false");
            if (ok)
                out = JsonValue::makeBool(false);
            break;
          case 'n':
            ok = literal("null");
            if (ok)
                out = JsonValue::makeNull();
            break;
          default:
            ok = parseNumber(out);
            break;
        }
        --depth;
        return ok;
    }
};

} // anonymous namespace

std::unique_ptr<JsonValue>
parseJson(const std::string &text, std::string &error)
{
    Parser parser{text};
    auto value = std::make_unique<JsonValue>();
    if (!parser.parseValue(*value)) {
        error = parser.error.empty() ? "JSON parse error"
                                     : parser.error;
        return nullptr;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        error = csprintf("JSON parse error: trailing content at "
                         "offset %zu", parser.pos);
        return nullptr;
    }
    error.clear();
    return value;
}

} // namespace msq
