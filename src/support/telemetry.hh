/**
 * @file
 * Toolflow telemetry: a thread-safe metrics registry plus RAII trace
 * spans that emit Chrome trace-event JSON (chrome://tracing /
 * ui.perfetto.dev compatible).
 *
 * Metrics (MetricsRegistry) come in three kinds:
 *  - Counter: monotonic uint64, atomic add;
 *  - Gauge: last-written int64 (plus an atomic-max update);
 *  - Distribution: value stream summarised as count / sum / min / max /
 *    p50 / p99 at snapshot time.
 *
 * Naming convention: dotted lowercase paths ("comm.teleport_moves").
 * Distributions carrying wall-clock time end in "_ms"; everything else
 * is a pure function of the compiled program and configuration, so the
 * determinism contract of DESIGN.md §9 extends to it — counter, gauge
 * and non-"_ms" distribution values are bit-identical for every
 * ToolflowConfig::numThreads and for memoization on/off
 * (tests/test_determinism.cc).
 *
 * Snapshots (MetricsSnapshot) are sorted by name, so the rendered JSON
 * has a stable key order across runs and thread counts; only the values
 * of "_ms" entries vary.
 *
 * Trace spans (TraceSpan) record complete ("ph":"X") events with real
 * thread ids into per-thread buffers owned by a TraceRecorder — the
 * record path touches no global lock, so spans are safe and cheap
 * inside ThreadPool fan-out (DESIGN.md §9); buffers are merged and
 * time-sorted at flush. A disabled recorder makes span construction a
 * single relaxed atomic load.
 *
 * Process-wide wiring (Telemetry): a global registry/recorder pair plus
 * the MSQ_METRICS=<path> / MSQ_TRACE=<path> environment fallback used
 * by the bench harness — initFromEnv() enables collection and registers
 * an atexit hook that writes the files.
 */

#ifndef MSQ_SUPPORT_TELEMETRY_HH
#define MSQ_SUPPORT_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msq {

/** Monotonic counter (atomic; hot-path safe). */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written value (atomic; also supports a monotonic-max update). */
class Gauge
{
  public:
    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

    /** Raise the gauge to @p v if it is higher than the current value. */
    void
    setMax(int64_t v)
    {
        int64_t cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed)) {
        }
    }

    int64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Summary statistics of a Distribution at snapshot time. */
struct DistributionStats
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0; ///< nearest-rank median
    double p99 = 0.0; ///< nearest-rank 99th percentile
};

/**
 * A recorded value stream. Samples are kept verbatim (instrumented
 * sites record at most a few thousand values per run) and summarised
 * at snapshot time; percentiles are computed on the sorted sample set,
 * so they do not depend on recording order.
 */
class Distribution
{
  public:
    void record(double value);

    DistributionStats stats() const;

    /** Copy of the raw samples (for merging registries). */
    std::vector<double> samples() const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> samples_;
};

/** One named metric inside a snapshot. */
struct MetricEntry
{
    enum class Kind : uint8_t { Counter, Gauge, Distribution };

    std::string name;
    Kind kind = Kind::Counter;
    uint64_t counterValue = 0;   ///< Kind::Counter
    int64_t gaugeValue = 0;      ///< Kind::Gauge
    DistributionStats dist;      ///< Kind::Distribution
};

/** A point-in-time copy of a registry, sorted by metric name. */
struct MetricsSnapshot
{
    std::vector<MetricEntry> entries; ///< ascending by name

    /** Entry by name, or nullptr. */
    const MetricEntry *find(const std::string &name) const;

    /** Counter value by name (0 when absent). */
    uint64_t counter(const std::string &name) const;

    /** Gauge value by name (0 when absent). */
    int64_t gauge(const std::string &name) const;

    /**
     * Render as a JSON document:
     *   {"version": 1, "metrics": [{"name": ..., "type": "counter",
     *    "value": N} | {..., "type": "gauge", "value": N} |
     *    {..., "type": "distribution", "count": N, "sum": X, "min": X,
     *    "max": X, "p50": X, "p99": X}, ...]}
     * Keys appear in sorted-name order — stable across runs.
     */
    std::string toJson() const;

    /** Write toJson() to @p os. */
    void writeJson(std::ostream &os) const;
};

/**
 * Thread-safe named metric registry. counter()/gauge()/distribution()
 * create on first use and return references that stay valid for the
 * registry's lifetime, so hot loops can resolve a metric once and
 * update it lock-free afterwards.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Distribution &distribution(const std::string &name);

    /** Sorted point-in-time copy of every metric. */
    MetricsSnapshot snapshot() const;

    /**
     * Fold this registry into @p dst: counters add, gauges overwrite
     * (setMax for names ending in "_peak"), distributions append their
     * samples. Used to accumulate per-run registries into the global
     * MSQ_METRICS sink.
     */
    void mergeInto(MetricsRegistry &dst) const;

    /** Drop every metric. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Distribution>> distributions_;
};

/** One completed trace event ("ph":"X" in the Chrome trace format). */
struct TraceEvent
{
    std::string name;
    std::string args; ///< pre-rendered JSON object body ("" = none)
    uint64_t tsUs = 0;  ///< start, microseconds since process start
    uint64_t durUs = 0; ///< duration, microseconds
    uint32_t tid = 0;   ///< OS thread id
};

/**
 * Collects trace events into per-thread buffers. record() appends to
 * the calling thread's own buffer (registered on first use), so
 * concurrent spans never contend on a shared structure; flush() merges
 * every buffer and sorts by timestamp. Disabled (the default) the
 * recorder costs one relaxed atomic load per span.
 */
class TraceRecorder
{
  public:
    TraceRecorder();
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    void setEnabled(bool enabled);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Append a completed event to the calling thread's buffer. */
    void record(TraceEvent event);

    /** Merge all buffers, clear them, and return events sorted by ts. */
    std::vector<TraceEvent> flush();

    /**
     * flush() rendered as a Chrome trace document:
     *   {"traceEvents": [{"name": ..., "cat": "msq", "ph": "X",
     *    "ts": N, "dur": N, "pid": N, "tid": N, "args": {...}}, ...]}
     */
    void writeChromeTrace(std::ostream &os);

    /** The OS thread id recorded into events (gettid on Linux). */
    static uint32_t currentThreadId();

  private:
    struct Buffer;

    Buffer &threadBuffer();

    std::atomic<bool> enabled_{false};
    uint64_t id_; ///< distinguishes recorders in the thread-local cache
    std::mutex mutex_;
    std::vector<std::shared_ptr<Buffer>> buffers_;
};

/**
 * RAII span: records one complete trace event covering its lifetime.
 * Construction against a disabled recorder deactivates the span
 * entirely (no clock read, no allocation). For spans with expensive
 * names or args, guard on recorder.enabled() before composing them.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceRecorder &recorder, std::string name);
    TraceSpan(TraceSpan &&) = delete;
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
    ~TraceSpan();

    bool active() const { return recorder_ != nullptr; }

    /** Attach a pre-rendered JSON object body, e.g. "\"gates\": 12". */
    void setArgs(std::string args_json);

  private:
    TraceRecorder *recorder_ = nullptr;
    std::string name_;
    std::string args_;
    uint64_t startUs_ = 0;
};

/** Microseconds since process start (steady clock). */
uint64_t telemetryNowUs();

/** Wall-clock stopwatch (steady clock). */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** RAII timer recording its lifetime into a "_ms" distribution. */
class ScopedTimerMs
{
  public:
    explicit ScopedTimerMs(Distribution &dist) : dist_(dist) {}
    ScopedTimerMs(const ScopedTimerMs &) = delete;
    ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;
    ~ScopedTimerMs() { dist_.record(timer_.elapsedMs()); }

  private:
    Distribution &dist_;
    WallTimer timer_;
};

/**
 * Process-wide telemetry wiring: the global metrics sink, the global
 * trace recorder, and the environment fallback.
 */
class Telemetry
{
  public:
    /** The global metrics registry (the MSQ_METRICS sink). */
    static MetricsRegistry &metrics();

    /** The global trace recorder every TraceSpan in the library uses. */
    static TraceRecorder &trace();

    /**
     * Whether per-run registries should mergeInto() the global one
     * (Toolflow::run does so when this is set). Enabled by
     * initFromEnv() when MSQ_METRICS names an output file.
     */
    static bool metricsEnabled();
    static void setMetricsEnabled(bool enabled);

    /**
     * Honor the environment: MSQ_METRICS=<path> enables global metric
     * accumulation, MSQ_TRACE=<path> enables the trace recorder; both
     * register one atexit hook that writes the files. Idempotent; the
     * bench harness calls this from bench::banner().
     */
    static void initFromEnv();

    /** Write the MSQ_METRICS / MSQ_TRACE files now (idempotent). */
    static void flushEnvOutputs();

    /**
     * Point the metrics/trace output files somewhere explicitly —
     * the programmatic twin of MSQ_METRICS / MSQ_TRACE for long-running
     * processes (msq-served) that flush *periodically* rather than at
     * exit: the atexit hook alone loses everything when a daemon is
     * killed, so the daemon sets a path and calls flushEnvOutputs()
     * itself on a cadence. An empty path disables that output.
     * setMetricsPath also toggles metricsEnabled() accordingly.
     */
    static void setMetricsPath(const std::string &path);
    static void setTracePath(const std::string &path);

    /** Current output paths ("" = disabled). */
    static const std::string &metricsPath();
    static const std::string &tracePath();
};

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** Format a double for JSON (shortest round-trippable decimal form). */
std::string jsonNumber(double value);

} // namespace msq

#endif // MSQ_SUPPORT_TELEMETRY_HH
