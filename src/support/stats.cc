#include "support/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

void
ResultTable::setHeader(std::vector<std::string> names)
{
    if (!cells.empty())
        panic("ResultTable::setHeader called after rows were added");
    header = std::move(names);
}

void
ResultTable::beginRow()
{
    if (!cells.empty() && cells.back().size() != header.size())
        panic("ResultTable: previous row has " +
              std::to_string(cells.back().size()) + " cells, expected " +
              std::to_string(header.size()));
    cells.emplace_back();
}

void
ResultTable::addCell(const std::string &value)
{
    if (cells.empty())
        panic("ResultTable::addCell before beginRow");
    cells.back().push_back(value);
}

void
ResultTable::addCell(long long value)
{
    addCell(std::to_string(value));
}

void
ResultTable::addCell(unsigned long long value)
{
    addCell(std::to_string(value));
}

void
ResultTable::addCell(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    addCell(ss.str());
}

void
ResultTable::printAscii(std::ostream &os) const
{
    std::vector<size_t> widths(header.size(), 0);
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : cells)
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    print_row(header);
    std::string rule;
    for (size_t c = 0; c < header.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : cells)
        print_row(row);
}

void
ResultTable::printCsv(std::ostream &os) const
{
    os << join(header, ",") << "\n";
    for (const auto &row : cells)
        os << join(row, ",") << "\n";
}

} // namespace msq
