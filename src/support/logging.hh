/**
 * @file
 * Error-reporting and status-message helpers, modelled on the gem5
 * panic()/fatal()/warn()/inform() convention.
 *
 * panic() is for internal invariant violations (a bug in this library);
 * fatal() is for unrecoverable user errors (bad input program, bad
 * configuration). Both are implemented as [[noreturn]] functions that
 * throw typed exceptions so tests can assert on them.
 */

#ifndef MSQ_SUPPORT_LOGGING_HH
#define MSQ_SUPPORT_LOGGING_HH

#include <stdexcept>
#include <string>

namespace msq {

/** Exception thrown by panic(): an internal library bug was detected. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): user input or configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Report an internal invariant violation and unwind. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user/configuration error and unwind. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr (does not stop execution). */
void warn(const std::string &msg);

/** Print an informational message to stderr when verbose mode is on. */
void inform(const std::string &msg);

/** Globally enable/disable inform() output. Default: disabled. */
void setVerbose(bool enabled);

/** @return whether inform() output is currently enabled. */
bool verbose();

} // namespace msq

#endif // MSQ_SUPPORT_LOGGING_HH
