/**
 * @file
 * Small string-formatting helpers used across the library. GCC 12 does not
 * ship std::format, so we provide a minimal printf-style csprintf() plus a
 * few join/parse utilities.
 */

#ifndef MSQ_SUPPORT_STRINGS_HH
#define MSQ_SUPPORT_STRINGS_HH

#include <cstdio>
#include <string>
#include <vector>

namespace msq {

/**
 * printf-style formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return the formatted string.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join the elements of @p parts with @p sep between them. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p text on @p sep, dropping empty fields when @p keep_empty. */
std::vector<std::string> split(const std::string &text, char sep,
                               bool keep_empty = false);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** @return true when @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Render @p value with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string withCommas(unsigned long long value);

} // namespace msq

#endif // MSQ_SUPPORT_STRINGS_HH
