/**
 * @file
 * Structured diagnostics for the static-analysis subsystem.
 *
 * Every check in the IR verifier, the circuit linter, and the schedule
 * validators reports through a DiagnosticEngine instead of panicking on
 * the first violation. A diagnostic carries a stable machine-readable
 * code (printed as e.g. "V003"), a severity, the enclosing module /
 * operation / source line when known, and a human-readable message.
 *
 * The engine runs in one of three failure modes:
 *  - Collect: record everything and keep going (the msq-verify tool and
 *    the collect-all validator paths);
 *  - Panic: throw PanicError on the first error (compatibility mode for
 *    the schedule validators, whose violations are scheduler bugs);
 *  - Fatal: throw FatalError on the first error (compatibility mode for
 *    frontend callers, whose violations are user-input errors).
 */

#ifndef MSQ_SUPPORT_DIAGNOSTIC_HH
#define MSQ_SUPPORT_DIAGNOSTIC_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace msq {

/** Stable identifiers for every diagnostic the toolflow can emit. */
enum class DiagCode : uint16_t {
    // V***: IR verifier (ir well-formedness; errors).
    GateArity,          ///< V001 operand count != gateArity(kind)
    OperandOutOfRange,  ///< V002 qubit operand >= module qubit count
    DuplicateOperand,   ///< V003 one gate touches a qubit twice
    NoEntryModule,      ///< V004 program has no entry module
    BadCallee,          ///< V005 call targets an invalid module id
    CallArity,          ///< V006 call arg count != callee param count
    RecursiveCall,      ///< V007 cycle in the module call graph
    BadRepeat,          ///< V008 repeat count of 0 (or !=1 on a gate)
    UseAfterMeasure,    ///< V009 gate on a measured, un-reprepared qubit
    MalformedOperation, ///< V010 non-call op with a callee attached
    AngleOnNonRotation, ///< V011 non-rotation gate with an angle (warning)
    DuplicateCallArg,   ///< V012 same qubit bound to two callee params

    // L***: circuit linter (suspicious-but-legal circuits; warnings).
    UnusedQubit,            ///< L001 declared qubit never referenced
    DeadGate,               ///< L002 gate after a qubit's last measurement
    UncancelledInverses,    ///< L003 uncancelled inverse pair (possibly
                            ///<      separated by commuting gates)
    RotationBelowPrecision, ///< L004 |angle| below the decomposer floor
    NonCoalescableGate,     ///< L005 gate kind occurs once; never SIMDable
    UnreachableModule,      ///< L006 module unreachable from the entry
    InterprocUnusedQubit,   ///< L007 qubit only passed to calls that
                            ///<      never use it (interproc liveness)
    InterprocUseAfterMeasure, ///< L008 use of a measured qubit across a
                              ///<      call boundary (interproc dominance)

    // S***: leaf-schedule validator (scheduler invariants 1-6; errors).
    SchedKMismatch,          ///< S001 schedule k != architecture k
    SchedRegionCount,        ///< S002 timestep region count != k
    SchedOpOutOfRange,       ///< S003 scheduled op index out of range
    SchedOpTwice,            ///< S004 op scheduled in two slots
    SchedMixedKinds,         ///< S005 region mixes gate types in one step
    SchedWidthBudget,        ///< S006 region touches more than d qubits
    SchedQubitConflict,      ///< S007 qubit touched twice in one timestep
    SchedOpMissing,          ///< S008 module op never scheduled
    SchedDependence,         ///< S009 op not strictly after a predecessor
    SchedMoveUnknownQubit,   ///< S010 move of an out-of-range qubit
    SchedMoveSource,         ///< S011 move source != tracked location
    SchedMoveDegenerate,     ///< S012 move with source == destination
    SchedLocalMemOverflow,   ///< S013 local-memory occupancy > capacity
    SchedOperandNotResident, ///< S014 operand not in its op's region

    // C***: coarse-schedule validator (errors).
    CoarseNotAnalyzed,   ///< C001 reachable module never scheduled
    CoarseLeafMismatch,  ///< C002 leaf flag disagrees with the module
    CoarseNoDims,        ///< C003 analyzed module offers no dimensions
    CoarseDimsNotMonotone, ///< C004 width/length curve not monotone
    CoarseWidthExceedsK, ///< C005 blackbox wider than the machine
    CoarseTotalMismatch, ///< C006 totalCycles != entry best length

    // M***: communication-schedule race detector (verify/comm_checker).
    CommMoveDuringGate,     ///< M001 qubit moved away while a gate uses it
    CommConflictingMoves,   ///< M002 two moves of one qubit in one step
    CommRegionOvercap,      ///< M003 region occupancy exceeds d
    CommLocalOvercap,       ///< M004 scratchpad occupancy exceeds capacity
    CommDeadTeleport,       ///< M005 wasted move of a dead qubit (warning)
    CommMoveSourceMismatch, ///< M006 move source != replayed location
    CommOperandNotResident, ///< M007 operand absent from its gate's region
    CommRedundantMove,      ///< M008 move to the current location (warning)
    CommCoreOutOfRange,     ///< M009 memory endpoint on a nonexistent core
    CommLinkOvercap,        ///< M010 masked inter-core teleports on one
                            ///<      link in one step exceed link bandwidth

    // B***: makespan lower-bound checker (verify/bound_checker). A
    // schedule shorter than a sound lower bound is an internal
    // inconsistency: scheduler or cache corruption, never valid output.
    BoundBelowCriticalPath, ///< B001 leaf shorter than its CP bound
    BoundBelowResource,     ///< B002 leaf shorter than its resource bound
    BoundBelowInterval,     ///< B003 leaf shorter than its interval bound
    BoundDimBelowBound,     ///< B004 blackbox dim below its width's bound
    BoundProgramBelow,      ///< B005 program below the hierarchical bound
    BoundRepeatOverflow,    ///< B006 repeat algebra saturated (warning)
    BoundOptimalGapNotOne,  ///< B007 proven-optimal leaf with gap != 1.0

    // E***: schedule-summary estimate checker (verify/estimate_checker).
    // The composed resource estimate is exact by construction; any
    // divergence from an independently computed ground truth is an
    // internal inconsistency (summary fold, repeat algebra, or
    // scheduler bug), never an approximation error.
    EstimateLeafFoldMismatch, ///< E001 leaf fold != annotator statistics
    EstimateMakespanMismatch, ///< E002 estimate != fresh recomputation
    EstimateGateAlgebra,      ///< E003 composed gates != ResourceEstimator
    EstimateUnrolledMismatch, ///< E004 composed != materialized unrolled walk
    EstimateWeightMismatch,   ///< E005 composed != invocation-weighted sum
    EstimateSaturated,        ///< E006 repeat algebra saturated (warning)

    // P***: persistent leaf-cache deserialization (sched/cache_io).
    // A rejected file or entry is never fatal — the loader skips it and
    // the scheduler recomputes — so every P code is a warning; what is
    // NEVER allowed is silently rebinding a wrong or corrupt schedule.
    CacheFileBadMagic,    ///< P001 file does not start with the magic
    CacheFileBadVersion,  ///< P002 unsupported format version
    CacheFileTruncated,   ///< P003 file ends inside a header or entry
    CacheEntryCorrupt,    ///< P004 checksum/invariant failure in an entry
    CacheEntryKeyMismatch, ///< P005 stored counts/fingerprint disagree
                           ///<      with the entry's own key
    CacheRebindRejected,  ///< P006 cached result refused at rebind time
                          ///<      (module op/qubit counts disagree)
    CacheTopologyMismatch, ///< P007 entry's stored architecture
                           ///<      fingerprint disagrees with its key
                           ///<      (schedule compiled for another machine)

    // A***: architecture/topology construction validation
    // (arch/topology.cc). A rejected topology is user input, not an
    // internal bug: construction-time callers run in Fatal mode, the
    // CLI turns them into exit code 2.
    ArchNoCores,             ///< A001 topology with zero cores
    ArchZeroLinkBandwidth,   ///< A002 inter-core link bandwidth of 0
    ArchDisconnectedTopology, ///< A003 link graph does not reach all cores
    ArchSelfLoopLink,        ///< A004 link from a core to itself
    ArchNoRegionSplit,       ///< A005 multi-core without regionsPerCore

    NumCodes,
};

/** @return the stable printable code, e.g. "V003". */
const char *diagCodeName(DiagCode code);

/** Diagnostic severity levels. */
enum class Severity : uint8_t {
    Note,
    Warning,
    Error,
};

/** @return "note" / "warning" / "error". */
const char *severityName(Severity severity);

/** Default severity of @p code (AngleOnNonRotation and all linter codes
 * are warnings; everything else is an error). */
Severity diagDefaultSeverity(DiagCode code);

/** Sentinel: diagnostic not attached to a specific operation. */
constexpr uint32_t diagNoOp = std::numeric_limits<uint32_t>::max();

/** Optional location context attached to a diagnostic. */
struct DiagContext
{
    std::string module;         ///< enclosing module name ("" = program)
    uint32_t opIndex = diagNoOp; ///< op index within the module
    unsigned line = 0;           ///< 1-based source line (0 = unknown)
};

/** One reported diagnostic. */
struct Diagnostic
{
    DiagCode code = DiagCode::NumCodes;
    Severity severity = Severity::Error;
    DiagContext where;
    std::string message;

    /** Render as "error V003 [module main, op 2, line 7]: ...". */
    std::string format() const;
};

/** Collects diagnostics; optionally unwinds on the first error. */
class DiagnosticEngine
{
  public:
    /** What to do when an Error-severity diagnostic is reported. */
    enum class FailMode : uint8_t {
        Collect, ///< record and continue
        Panic,   ///< throw PanicError immediately (internal invariants)
        Fatal,   ///< throw FatalError immediately (user input)
    };

    explicit DiagnosticEngine(FailMode mode = FailMode::Collect)
        : mode_(mode)
    {}

    /** Report with an explicit severity. */
    void report(Severity severity, DiagCode code, const std::string &msg,
                DiagContext where = {});

    /** Report with the code's default severity. */
    void report(DiagCode code, const std::string &msg,
                DiagContext where = {});

    /** Report an Error-severity diagnostic. */
    void error(DiagCode code, const std::string &msg,
               DiagContext where = {});

    /** Report a Warning-severity diagnostic. */
    void warning(DiagCode code, const std::string &msg,
                 DiagContext where = {});

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    size_t numErrors() const { return numErrors_; }
    size_t numWarnings() const { return numWarnings_; }
    bool hasErrors() const { return numErrors_ > 0; }

    /** @return true when a diagnostic with @p code was reported. */
    bool has(DiagCode code) const;

    /** Number of distinct codes reported. */
    size_t numDistinctCodes() const;

    FailMode mode() const { return mode_; }

    /** Drop all recorded diagnostics and reset the counters. */
    void clear();

    /** One formatted diagnostic per line (trailing newline included). */
    std::string formatAll() const;

    /** Write formatAll() to @p out. */
    void printAll(std::ostream &out) const;

  private:
    FailMode mode_;
    std::vector<Diagnostic> diags_;
    size_t numErrors_ = 0;
    size_t numWarnings_ = 0;
};

} // namespace msq

#endif // MSQ_SUPPORT_DIAGNOSTIC_HH
