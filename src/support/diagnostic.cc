#include "support/diagnostic.hh"

#include <ostream>
#include <set>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

struct CodeInfo
{
    const char *name;
    Severity severity;
};

constexpr CodeInfo codeTable[] = {
    // Verifier.
    {"V001", Severity::Error},   // GateArity
    {"V002", Severity::Error},   // OperandOutOfRange
    {"V003", Severity::Error},   // DuplicateOperand
    {"V004", Severity::Error},   // NoEntryModule
    {"V005", Severity::Error},   // BadCallee
    {"V006", Severity::Error},   // CallArity
    {"V007", Severity::Error},   // RecursiveCall
    {"V008", Severity::Error},   // BadRepeat
    {"V009", Severity::Error},   // UseAfterMeasure
    {"V010", Severity::Error},   // MalformedOperation
    {"V011", Severity::Warning}, // AngleOnNonRotation
    {"V012", Severity::Error},   // DuplicateCallArg
    // Linter.
    {"L001", Severity::Warning}, // UnusedQubit
    {"L002", Severity::Warning}, // DeadGate
    {"L003", Severity::Warning}, // UncancelledInverses
    {"L004", Severity::Warning}, // RotationBelowPrecision
    {"L005", Severity::Warning}, // NonCoalescableGate
    {"L006", Severity::Warning}, // UnreachableModule
    {"L007", Severity::Warning}, // InterprocUnusedQubit
    {"L008", Severity::Warning}, // InterprocUseAfterMeasure
    // Leaf-schedule validator.
    {"S001", Severity::Error},   // SchedKMismatch
    {"S002", Severity::Error},   // SchedRegionCount
    {"S003", Severity::Error},   // SchedOpOutOfRange
    {"S004", Severity::Error},   // SchedOpTwice
    {"S005", Severity::Error},   // SchedMixedKinds
    {"S006", Severity::Error},   // SchedWidthBudget
    {"S007", Severity::Error},   // SchedQubitConflict
    {"S008", Severity::Error},   // SchedOpMissing
    {"S009", Severity::Error},   // SchedDependence
    {"S010", Severity::Error},   // SchedMoveUnknownQubit
    {"S011", Severity::Error},   // SchedMoveSource
    {"S012", Severity::Error},   // SchedMoveDegenerate
    {"S013", Severity::Error},   // SchedLocalMemOverflow
    {"S014", Severity::Error},   // SchedOperandNotResident
    // Coarse-schedule validator.
    {"C001", Severity::Error},   // CoarseNotAnalyzed
    {"C002", Severity::Error},   // CoarseLeafMismatch
    {"C003", Severity::Error},   // CoarseNoDims
    {"C004", Severity::Error},   // CoarseDimsNotMonotone
    {"C005", Severity::Error},   // CoarseWidthExceedsK
    {"C006", Severity::Error},   // CoarseTotalMismatch
    // Communication-schedule race detector.
    {"M001", Severity::Error},   // CommMoveDuringGate
    {"M002", Severity::Error},   // CommConflictingMoves
    {"M003", Severity::Error},   // CommRegionOvercap
    {"M004", Severity::Error},   // CommLocalOvercap
    {"M005", Severity::Warning}, // CommDeadTeleport
    {"M006", Severity::Error},   // CommMoveSourceMismatch
    {"M007", Severity::Error},   // CommOperandNotResident
    {"M008", Severity::Warning}, // CommRedundantMove
    {"M009", Severity::Error},   // CommCoreOutOfRange
    {"M010", Severity::Error},   // CommLinkOvercap
    // Makespan lower-bound checker.
    {"B001", Severity::Error},   // BoundBelowCriticalPath
    {"B002", Severity::Error},   // BoundBelowResource
    {"B003", Severity::Error},   // BoundBelowInterval
    {"B004", Severity::Error},   // BoundDimBelowBound
    {"B005", Severity::Error},   // BoundProgramBelow
    {"B006", Severity::Warning}, // BoundRepeatOverflow
    {"B007", Severity::Error},   // BoundOptimalGapNotOne
    // Schedule-summary estimate checker.
    {"E001", Severity::Error},   // EstimateLeafFoldMismatch
    {"E002", Severity::Error},   // EstimateMakespanMismatch
    {"E003", Severity::Error},   // EstimateGateAlgebra
    {"E004", Severity::Error},   // EstimateUnrolledMismatch
    {"E005", Severity::Error},   // EstimateWeightMismatch
    {"E006", Severity::Warning}, // EstimateSaturated
    // Persistent leaf-cache loader.
    {"P001", Severity::Warning}, // CacheFileBadMagic
    {"P002", Severity::Warning}, // CacheFileBadVersion
    {"P003", Severity::Warning}, // CacheFileTruncated
    {"P004", Severity::Warning}, // CacheEntryCorrupt
    {"P005", Severity::Warning}, // CacheEntryKeyMismatch
    {"P006", Severity::Warning}, // CacheRebindRejected
    {"P007", Severity::Warning}, // CacheTopologyMismatch
    // Architecture/topology construction validation.
    {"A001", Severity::Error},   // ArchNoCores
    {"A002", Severity::Error},   // ArchZeroLinkBandwidth
    {"A003", Severity::Error},   // ArchDisconnectedTopology
    {"A004", Severity::Error},   // ArchSelfLoopLink
    {"A005", Severity::Error},   // ArchNoRegionSplit
};

static_assert(sizeof(codeTable) / sizeof(codeTable[0]) ==
                  static_cast<size_t>(DiagCode::NumCodes),
              "codeTable must cover every DiagCode");

const CodeInfo &
info(DiagCode code)
{
    auto index = static_cast<size_t>(code);
    if (index >= static_cast<size_t>(DiagCode::NumCodes))
        panic("diagCodeName: invalid DiagCode");
    return codeTable[index];
}

} // anonymous namespace

const char *
diagCodeName(DiagCode code)
{
    return info(code).name;
}

Severity
diagDefaultSeverity(DiagCode code)
{
    return info(code).severity;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

std::string
Diagnostic::format() const
{
    std::string loc;
    if (!where.module.empty())
        loc += "module " + where.module;
    if (where.opIndex != diagNoOp) {
        if (!loc.empty())
            loc += ", ";
        loc += csprintf("op %u", where.opIndex);
    }
    if (where.line != 0) {
        if (!loc.empty())
            loc += ", ";
        loc += csprintf("line %u", where.line);
    }
    std::string out = severityName(severity);
    out += " ";
    out += diagCodeName(code);
    if (!loc.empty())
        out += " [" + loc + "]";
    out += ": " + message;
    return out;
}

void
DiagnosticEngine::report(Severity severity, DiagCode code,
                         const std::string &msg, DiagContext where)
{
    Diagnostic diag{code, severity, std::move(where), msg};
    if (severity == Severity::Error)
        ++numErrors_;
    else if (severity == Severity::Warning)
        ++numWarnings_;
    std::string formatted = diag.format();
    diags_.push_back(std::move(diag));
    if (severity == Severity::Error) {
        if (mode_ == FailMode::Panic)
            panic(formatted);
        if (mode_ == FailMode::Fatal)
            fatal(formatted);
    }
}

void
DiagnosticEngine::report(DiagCode code, const std::string &msg,
                         DiagContext where)
{
    report(diagDefaultSeverity(code), code, msg, std::move(where));
}

void
DiagnosticEngine::error(DiagCode code, const std::string &msg,
                        DiagContext where)
{
    report(Severity::Error, code, msg, std::move(where));
}

void
DiagnosticEngine::warning(DiagCode code, const std::string &msg,
                          DiagContext where)
{
    report(Severity::Warning, code, msg, std::move(where));
}

bool
DiagnosticEngine::has(DiagCode code) const
{
    for (const auto &diag : diags_)
        if (diag.code == code)
            return true;
    return false;
}

size_t
DiagnosticEngine::numDistinctCodes() const
{
    std::set<DiagCode> codes;
    for (const auto &diag : diags_)
        codes.insert(diag.code);
    return codes.size();
}

void
DiagnosticEngine::clear()
{
    diags_.clear();
    numErrors_ = 0;
    numWarnings_ = 0;
}

std::string
DiagnosticEngine::formatAll() const
{
    std::string out;
    for (const auto &diag : diags_)
        out += diag.format() + "\n";
    return out;
}

void
DiagnosticEngine::printAll(std::ostream &out) const
{
    out << formatAll();
}

} // namespace msq
