/**
 * @file
 * Deterministic pseudo-random number generation for workload generators and
 * the rotation decomposer. All randomness in the library flows through
 * SplitMix64 so that every experiment is exactly reproducible from its
 * seed — a hard requirement for regenerating the paper's tables/figures.
 */

#ifndef MSQ_SUPPORT_RNG_HH
#define MSQ_SUPPORT_RNG_HH

#include <cstdint>

namespace msq {

/**
 * SplitMix64 generator. Tiny state, excellent statistical quality for
 * non-cryptographic use, and trivially seedable from a hash.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** @return the next 64 pseudo-random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** @return a value uniform in [0, bound); bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a double uniform in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t state;
};

/** Stateless 64-bit mix, used to derive per-entity seeds from names/ids. */
constexpr uint64_t
hashMix64(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a hash of a string, for seeding generators from names. */
constexpr uint64_t
hashString(const char *s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    while (*s) {
        h ^= static_cast<unsigned char>(*s++);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace msq

#endif // MSQ_SUPPORT_RNG_HH
