/**
 * @file
 * Saturating 64-bit arithmetic. Paper-scale benchmarks reach 10^12 gate
 * operations and hierarchical products of repeat counts can exceed that;
 * all resource arithmetic saturates at UINT64_MAX instead of wrapping.
 */

#ifndef MSQ_SUPPORT_SATURATE_HH
#define MSQ_SUPPORT_SATURATE_HH

#include <cstdint>
#include <limits>

namespace msq {

/** @return a + b, saturating at UINT64_MAX. */
constexpr uint64_t
satAdd(uint64_t a, uint64_t b)
{
    uint64_t sum = a + b;
    return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}

/** @return a * b, saturating at UINT64_MAX. */
constexpr uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > std::numeric_limits<uint64_t>::max() / b)
        return std::numeric_limits<uint64_t>::max();
    return a * b;
}

/**
 * Saturation-detecting variants: @p saturated is OR-ed with whether this
 * operation clipped, so a chain of calls can share one sticky flag. The
 * hierarchical analyses use these to report (rather than silently absorb)
 * repeat-count products beyond 2^64-1.
 */
constexpr uint64_t
satAdd(uint64_t a, uint64_t b, bool &saturated)
{
    uint64_t sum = a + b;
    if (sum < a) {
        saturated = true;
        return std::numeric_limits<uint64_t>::max();
    }
    return sum;
}

constexpr uint64_t
satMul(uint64_t a, uint64_t b, bool &saturated)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > std::numeric_limits<uint64_t>::max() / b) {
        saturated = true;
        return std::numeric_limits<uint64_t>::max();
    }
    return a * b;
}

/** @return ceil(a / b), saturating; b == 0 yields 0 (empty workload). */
constexpr uint64_t
satCeilDiv(uint64_t a, uint64_t b)
{
    if (b == 0)
        return 0;
    return a / b + (a % b != 0 ? 1 : 0);
}

} // namespace msq

#endif // MSQ_SUPPORT_SATURATE_HH
