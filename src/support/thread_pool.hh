/**
 * @file
 * A small fixed-size thread pool for deterministic fan-out parallelism.
 *
 * Design constraints (DESIGN.md §9):
 *  - *Fixed worker count*, chosen at construction; no work stealing and
 *    no dynamic resizing, so scheduling work is reproducible.
 *  - *Deterministic task ordering*: parallelFor() hands out indices
 *    [0, count) from a single atomic counter. Which thread runs which
 *    index is nondeterministic, but tasks communicate only through
 *    index-addressed output slots, so results are bit-identical to a
 *    sequential run as long as each task is a pure function of its
 *    index.
 *  - numThreads() == 1 runs every task inline on the calling thread —
 *    the exact legacy sequential path, with no pool threads started.
 *
 * Exceptions thrown by tasks are captured; after the batch completes
 * the exception of the *lowest-indexed* failing task is rethrown on the
 * calling thread (again: deterministic, matching what a sequential loop
 * would have thrown first).
 */

#ifndef MSQ_SUPPORT_THREAD_POOL_HH
#define MSQ_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msq {

/** Work-stealing-free fixed-size thread pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads total parallelism including the calling thread
     *        (so num_threads - 1 workers are spawned); 0 selects
     *        hardwareThreads(), 1 spawns nothing and runs inline.
     */
    explicit ThreadPool(unsigned num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the participating caller). */
    unsigned numThreads() const { return numThreads_; }

    /**
     * Run @p body(i) for every i in [0, count), blocking until all
     * tasks finish. The calling thread participates. Not reentrant:
     * @p body must not call parallelFor() on the same pool.
     */
    void parallelFor(uint64_t count,
                     const std::function<void(uint64_t)> &body);

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned hardwareThreads();

  private:
    void workerLoop();
    void runIndices();

    unsigned numThreads_;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable wake; ///< workers wait for a new batch
    std::condition_variable done; ///< caller waits for batch completion
    bool stopping = false;
    uint64_t generation = 0;  ///< batch sequence number
    uint64_t activeWorkers = 0;

    // Current batch (valid while a parallelFor is in flight).
    const std::function<void(uint64_t)> *body_ = nullptr;
    uint64_t count_ = 0;
    std::atomic<uint64_t> nextIndex{0};

    std::mutex errorMutex;
    std::exception_ptr firstError;
    uint64_t firstErrorIndex = 0;
};

} // namespace msq

#endif // MSQ_SUPPORT_THREAD_POOL_HH
