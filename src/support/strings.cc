#include "support/strings.hh"

#include <cstdarg>
#include <cctype>

namespace msq {

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), static_cast<size_t>(len) + 1, fmt,
                       args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &text, char sep, bool keep_empty)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            if (keep_empty || !cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (keep_empty || !cur.empty())
        out.push_back(cur);
    return out;
}

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
withCommas(unsigned long long value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace msq
