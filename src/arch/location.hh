/**
 * @file
 * Where a logical qubit physically resides at a point in a schedule: the
 * global quantum memory, inside a SIMD operating region, or in a region's
 * local scratchpad memory.
 */

#ifndef MSQ_ARCH_LOCATION_HH
#define MSQ_ARCH_LOCATION_HH

#include <cstdint>
#include <string>

namespace msq {

/** A physical residence for one qubit. */
struct Location
{
    enum class Kind : uint8_t {
        GlobalMemory,
        Region,
        LocalMemory, ///< the scratchpad attached to @ref region
    };

    Kind kind = Kind::GlobalMemory;

    /**
     * For Region and LocalMemory: the SIMD region index. For
     * GlobalMemory: the index of the core whose memory bank this is —
     * always 0 on the flat single-core machine, which is why
     * Location::global() historically meant "the" global memory.
     */
    unsigned region = 0;

    static Location global() { return {Kind::GlobalMemory, 0}; }

    /** The global memory bank of core @p core (multi-core machines). */
    static Location inMemory(unsigned core)
    {
        return {Kind::GlobalMemory, core};
    }
    static Location inRegion(unsigned r) { return {Kind::Region, r}; }
    static Location inLocalMem(unsigned r) { return {Kind::LocalMemory, r}; }

    bool isGlobal() const { return kind == Kind::GlobalMemory; }
    bool isRegion() const { return kind == Kind::Region; }
    bool isLocalMem() const { return kind == Kind::LocalMemory; }

    bool
    operator==(const Location &other) const
    {
        // The region field always participates: for GlobalMemory it is
        // the core index, and single-core code only ever constructs
        // core 0, so the flat machine behaves as before.
        return kind == other.kind && region == other.region;
    }

    bool operator!=(const Location &other) const { return !(*this == other); }

    /** @return e.g. "mem", "r2", "r2.local". */
    std::string
    describe() const
    {
        switch (kind) {
          case Kind::GlobalMemory:
            // Core 0's bank keeps the flat machine's historical "mem"
            // spelling (golden dumps depend on it).
            return region == 0 ? "mem"
                               : "mem" + std::to_string(region);
          case Kind::Region:
            return "r" + std::to_string(region);
          case Kind::LocalMemory:
            return "r" + std::to_string(region) + ".local";
        }
        return "?";
    }
};

/**
 * One qubit movement between locations.
 *
 * A move is *local* (ballistic, 1 cycle) exactly when it shuttles between a
 * region and that same region's scratchpad; every other move teleports
 * through the global memory fabric (4 cycles).
 */
struct Move
{
    uint32_t qubit = 0;
    Location from;
    Location to;

    /**
     * Whether this move blocks the schedule. Teleports whose qubit is
     * idle for at least the teleport latency on both ends are masked by
     * EPR pre-distribution and pipelining (paper §2.3) and cost nothing;
     * tight moves serialize with computation. Local ballistic moves are
     * always non-blocking in the teleport sense but cost their one
     * cycle. Defaults to true (conservative) until the communication
     * analyzer classifies the move.
     */
    bool blocking = true;

    bool
    isLocal() const
    {
        return (from.isRegion() && to.isLocalMem() &&
                from.region == to.region) ||
               (from.isLocalMem() && to.isRegion() &&
                from.region == to.region);
    }
};

} // namespace msq

#endif // MSQ_ARCH_LOCATION_HH
