/**
 * @file
 * The quantum teleportation circuit of paper Fig. 2: transmitting the
 * state of a source qubit to a destination qubit through a
 * pre-distributed EPR pair and two classical bits.
 *
 * The Multi-SIMD cost model treats a teleport as an opaque 4-cycle move;
 * this generator makes the underlying gate sequence available as real IR
 * (for inspection, for counting the "four qubit manipulation steps"
 * §3.2 refers to, and for toolflows that want to schedule QT
 * sub-operations explicitly). The classically-controlled X/Z corrections
 * are emitted as plain gates — the IR carries no classical control, and
 * the schedule-level cost is identical.
 */

#ifndef MSQ_ARCH_TELEPORT_CIRCUIT_HH
#define MSQ_ARCH_TELEPORT_CIRCUIT_HH

#include "ir/module.hh"

namespace msq {

/**
 * Append the Fig. 2 teleportation sequence to @p mod:
 *
 *   prep + entangle the EPR pair (epr_src / epr_dst),
 *   source-side Bell measurement of (source, epr_src),
 *   destination-side X/Z corrections on epr_dst.
 *
 * Afterwards epr_dst carries the source state; source and epr_src end
 * measured (reusable as fresh ancilla / future EPR halves, §4.4).
 */
void appendTeleport(Module &mod, QubitId source, QubitId epr_src,
                    QubitId epr_dst);

/**
 * Number of logical timesteps the teleportation sequence occupies on
 * the source/destination critical path — the paper's 4-cycle move cost
 * (MultiSimdArch::teleportCycles). EPR preparation happens ahead of
 * time and does not count (§2.3).
 */
unsigned teleportCriticalSteps();

} // namespace msq

#endif // MSQ_ARCH_TELEPORT_CIRCUIT_HH
