/**
 * @file
 * Multi-core topology graph for the architecture layer (DESIGN.md §16).
 *
 * The paper's machine is one flat Multi-SIMD(k,d) tile; the related
 * multi-core line (Suance et al., Ovide et al.) splits the machine into
 * cores — each a local Multi-SIMD tile with its own regions, scratchpads
 * and memory bank — connected by EPR links of finite bandwidth and
 * latency. A Topology describes that graph; the degenerate one-core
 * topology (the default) reproduces the flat machine bit-for-bit: no
 * code path may behave differently under it.
 *
 * Region-to-core geometry: the architecture's k regions are split into
 * `cores` contiguous groups of `regionsPerCore` each, so region r lives
 * on core r / regionsPerCore. Global-memory locations carry the core
 * index of the memory bank they denote in Location::region (always 0 on
 * the flat machine, which is why Location::global() still means "the"
 * memory there).
 *
 * Construction validation (A-code family): zero cores (A001), zero link
 * bandwidth (A002), a disconnected link graph (A003) and self-loop
 * links (A004) are rejected at construction — a disconnected machine
 * cannot route a teleport, so no later layer needs to handle it.
 */

#ifndef MSQ_ARCH_TOPOLOGY_HH
#define MSQ_ARCH_TOPOLOGY_HH

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace msq {

class DiagnosticEngine;

/** How a topology's cores are wired together. */
enum class TopologyShape : uint8_t {
    /** One core, no links: the paper's flat Multi-SIMD machine. */
    SingleCore,
    /** Cycle: core i links to (i±1) mod cores. */
    Ring,
    /** Near-square 2D grid, row-major, no wraparound. */
    Mesh,
    /** Every pair of cores directly linked. */
    AllToAll,
};

/** How the mapping pass assigns qubits to home cores. */
enum class MappingStrategy : uint8_t {
    /** Interaction-graph greedy growth + swap refinement (the real
     * pass, analysis/qubit_mapping.hh). */
    Greedy,
    /** Naive qubit-index round-robin (the baseline the pass is
     * measured against). */
    RoundRobin,
};

/** @return "single" / "ring" / "mesh" / "all-to-all". */
const char *topologyShapeName(TopologyShape shape);

/** @return "greedy" / "roundrobin". */
const char *mappingStrategyName(MappingStrategy strategy);

/**
 * The core-and-link graph of one machine. Default-constructed it is the
 * degenerate single-core topology.
 */
struct Topology
{
    /** Number of cores (tiles). 1 = the flat machine. */
    unsigned cores = 1;

    /**
     * SIMD regions per core on the full machine. 0 (only meaningful
     * with cores == 1) means "all regions", which is what the flat
     * machine uses. The coarse scheduler's width sweep shrinks the
     * arch's k below cores * regionsPerCore; the split stays anchored
     * to the full machine so region->core geometry never shifts with
     * the sweep width.
     */
    unsigned regionsPerCore = 0;

    /** Link graph shape. */
    TopologyShape shape = TopologyShape::SingleCore;

    /**
     * Masked inter-core teleports one link can pipeline per timestep.
     * Excess masked traffic is demoted to blocking by the analyzer (and
     * policed by the M010 checker). ::unbounded = no link cap.
     */
    uint64_t linkBandwidth = std::numeric_limits<uint64_t>::max();

    /**
     * Cycles one blocking inter-core teleport spends per link hop.
     * Defaults to the intra-machine teleport time (4, Fig. 2) so a
     * one-hop inter-core move costs what a global teleport costs.
     */
    uint64_t linkLatency = 4;

    /** Which mapping pass places qubits on home cores. */
    MappingStrategy mapping = MappingStrategy::Greedy;

    /**
     * Explicit undirected links appended to the shape's generated edge
     * list (e.g. a chord across a ring), normalized into the canonical
     * edges() order. Self-loops (A004) and endpoints beyond the last
     * core (A003) are rejected by validate(). Spec syntax: `link=a-b`.
     */
    std::vector<std::pair<unsigned, unsigned>> extraLinks;

    /** @return whether this is a genuine multi-core machine. */
    bool multiCore() const { return cores > 1; }

    /** @return the core owning region @p region (0 on one core). */
    unsigned
    coreOfRegion(unsigned region) const
    {
        if (cores <= 1 || regionsPerCore == 0)
            return 0;
        unsigned core = region / regionsPerCore;
        return core < cores ? core : cores - 1;
    }

    /**
     * Canonical undirected link list, each pair ascending and the list
     * sorted — every consumer (router, checker, bench) sees the same
     * edge order, which is what keeps link-indexed bookkeeping
     * deterministic.
     */
    std::vector<std::pair<unsigned, unsigned>> edges() const;

    /**
     * Check construction invariants, reporting A-codes through
     * @p diags: A001 zero cores, A002 zero link bandwidth, A003
     * disconnected link graph, A004 self-loop link, A005 multi-core
     * without a per-core region split. With a null @p diags the first
     * violation calls fatal() (construction-time contract, like
     * MultiSimdArch::validate).
     * @return true when the topology is well-formed.
     */
    bool validate(DiagnosticEngine *diags = nullptr) const;

    /** @return e.g. "ring(4x2, link-bw=1, link-lat=3)"; "" on one core. */
    std::string describe() const;

    /**
     * Cache-key fragment, e.g. "topo=ring:4x2|lbw=1|llat=3|map=greedy".
     * Empty for the single-core topology so every flat-machine cache
     * key (in memory and in v1 .msqc files) keeps its historical bytes.
     */
    std::string fingerprint() const;

    bool
    operator==(const Topology &other) const
    {
        return cores == other.cores &&
               regionsPerCore == other.regionsPerCore &&
               shape == other.shape &&
               linkBandwidth == other.linkBandwidth &&
               linkLatency == other.linkLatency &&
               mapping == other.mapping &&
               extraLinks == other.extraLinks;
    }

    bool operator!=(const Topology &other) const
    {
        return !(*this == other);
    }
};

/**
 * Deterministic shortest-path routing tables over one Topology,
 * precomputed once (BFS per core, neighbors visited in ascending order)
 * and then O(hops) per query. Edge ids index Topology::edges().
 */
class TopologyRouter
{
  public:
    explicit TopologyRouter(const Topology &topo);

    unsigned numCores() const { return cores; }
    size_t numEdges() const { return edgeList.size(); }

    /** Hop count of the canonical route from @p from to @p to. */
    unsigned dist(unsigned from, unsigned to) const;

    /**
     * Append the edge ids of the canonical shortest route from @p from
     * to @p to onto @p out (lowest-index next hop at every step, so the
     * route is unique and deterministic).
     */
    void routeEdges(unsigned from, unsigned to,
                    std::vector<unsigned> &out) const;

    const std::vector<std::pair<unsigned, unsigned>> &
    edges() const
    {
        return edgeList;
    }

  private:
    unsigned at(unsigned from, unsigned to) const;

    unsigned cores;
    std::vector<std::pair<unsigned, unsigned>> edgeList;
    std::vector<unsigned> dist_;    ///< cores x cores hop counts
    std::vector<unsigned> nextHop_; ///< cores x cores first hop
    std::vector<unsigned> edgeId_;  ///< cores x cores adjacency -> edge
};

} // namespace msq

#endif // MSQ_ARCH_TOPOLOGY_HH
