#include "arch/topology.hh"

#include <algorithm>
#include <deque>

#include "support/diagnostic.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

constexpr uint64_t noLimit = std::numeric_limits<uint64_t>::max();

/** Near-square factorization of @p cores for the mesh: rows x cols with
 * rows <= cols and rows the largest divisor <= sqrt(cores). */
std::pair<unsigned, unsigned>
meshDims(unsigned cores)
{
    unsigned rows = 1;
    for (unsigned r = 1; r * r <= cores; ++r)
        if (cores % r == 0)
            rows = r;
    return {rows, cores / rows};
}

} // anonymous namespace

const char *
topologyShapeName(TopologyShape shape)
{
    switch (shape) {
      case TopologyShape::SingleCore:
        return "single";
      case TopologyShape::Ring:
        return "ring";
      case TopologyShape::Mesh:
        return "mesh";
      case TopologyShape::AllToAll:
        return "all-to-all";
    }
    panic("unknown TopologyShape");
}

const char *
mappingStrategyName(MappingStrategy strategy)
{
    switch (strategy) {
      case MappingStrategy::Greedy:
        return "greedy";
      case MappingStrategy::RoundRobin:
        return "roundrobin";
    }
    panic("unknown MappingStrategy");
}

std::vector<std::pair<unsigned, unsigned>>
Topology::edges() const
{
    std::vector<std::pair<unsigned, unsigned>> out;
    if (cores <= 1)
        return out;
    switch (shape) {
      case TopologyShape::SingleCore:
        break;
      case TopologyShape::Ring:
        if (cores == 2) {
            out.emplace_back(0, 1);
            break;
        }
        for (unsigned c = 0; c < cores; ++c) {
            unsigned next = (c + 1) % cores;
            out.emplace_back(std::min(c, next), std::max(c, next));
        }
        break;
      case TopologyShape::Mesh: {
        auto [rows, cols] = meshDims(cores);
        for (unsigned r = 0; r < rows; ++r) {
            for (unsigned c = 0; c < cols; ++c) {
                unsigned id = r * cols + c;
                if (c + 1 < cols)
                    out.emplace_back(id, id + 1);
                if (r + 1 < rows)
                    out.emplace_back(id, id + cols);
            }
        }
        break;
      }
      case TopologyShape::AllToAll:
        for (unsigned a = 0; a < cores; ++a)
            for (unsigned b = a + 1; b < cores; ++b)
                out.emplace_back(a, b);
        break;
    }
    for (const auto &[a, b] : extraLinks)
        out.emplace_back(std::min(a, b), std::max(a, b));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
Topology::validate(DiagnosticEngine *diags) const
{
    DiagnosticEngine fatal_engine(DiagnosticEngine::FailMode::Fatal);
    DiagnosticEngine &out = diags != nullptr ? *diags : fatal_engine;
    size_t errors_before = out.numErrors();

    if (cores == 0) {
        out.error(DiagCode::ArchNoCores,
                  "topology needs at least one core");
        return false;
    }
    if (linkBandwidth == 0) {
        out.error(DiagCode::ArchZeroLinkBandwidth,
                  "inter-core link bandwidth must be >= 1 (0 cannot "
                  "carry any teleport; use ::unbounded for uncapped "
                  "links)");
    }
    if (multiCore() && regionsPerCore == 0) {
        out.error(DiagCode::ArchNoRegionSplit,
                  csprintf("%u-core topology needs a per-core region "
                           "count (regionsPerCore >= 1)",
                           cores));
    }
    if (multiCore() && shape == TopologyShape::SingleCore) {
        // A multi-core machine whose link graph has no edges cannot
        // route anything between cores.
        out.error(DiagCode::ArchDisconnectedTopology,
                  csprintf("%u cores with the single-core (edgeless) "
                           "shape form a disconnected machine",
                           cores));
    }

    const auto edge_list = edges();
    for (const auto &[a, b] : edge_list) {
        if (a == b) {
            out.error(DiagCode::ArchSelfLoopLink,
                      csprintf("link from core %u to itself", a));
        } else if (a >= cores || b >= cores) {
            out.error(DiagCode::ArchDisconnectedTopology,
                      csprintf("link (%u, %u) names a core beyond the "
                               "last core %u",
                               a, b, cores - 1));
        }
    }
    if (multiCore() && shape != TopologyShape::SingleCore) {
        // BFS connectivity over the link graph.
        std::vector<std::vector<unsigned>> adj(cores);
        for (const auto &[a, b] : edge_list) {
            if (a < cores && b < cores && a != b) {
                adj[a].push_back(b);
                adj[b].push_back(a);
            }
        }
        std::vector<bool> seen(cores, false);
        std::deque<unsigned> work{0};
        seen[0] = true;
        unsigned reached = 1;
        while (!work.empty()) {
            unsigned c = work.front();
            work.pop_front();
            for (unsigned n : adj[c]) {
                if (!seen[n]) {
                    seen[n] = true;
                    ++reached;
                    work.push_back(n);
                }
            }
        }
        if (reached != cores) {
            out.error(DiagCode::ArchDisconnectedTopology,
                      csprintf("link graph reaches only %u of %u cores",
                               reached, cores));
        }
    }
    return out.numErrors() == errors_before;
}

std::string
Topology::describe() const
{
    if (!multiCore())
        return "";
    std::string bw = linkBandwidth == noLimit
                         ? "inf"
                         : std::to_string(linkBandwidth);
    return csprintf("%s(%ux%u, link-bw=%s, link-lat=%llu)",
                    topologyShapeName(shape), cores, regionsPerCore,
                    bw.c_str(),
                    static_cast<unsigned long long>(linkLatency));
}

std::string
Topology::fingerprint() const
{
    if (!multiCore())
        return "";
    std::string fp =
        csprintf("topo=%s:%ux%u|lbw=%llu|llat=%llu|map=%s",
                 topologyShapeName(shape), cores, regionsPerCore,
                 static_cast<unsigned long long>(linkBandwidth),
                 static_cast<unsigned long long>(linkLatency),
                 mappingStrategyName(mapping));
    if (!extraLinks.empty()) {
        // Canonicalized: extra links change the routable edge set, so
        // they must change the cache key, in a spec-order-independent
        // way.
        auto norm = extraLinks;
        for (auto &[a, b] : norm)
            if (a > b)
                std::swap(a, b);
        std::sort(norm.begin(), norm.end());
        norm.erase(std::unique(norm.begin(), norm.end()), norm.end());
        fp += "|links=";
        for (size_t i = 0; i < norm.size(); ++i) {
            if (i > 0)
                fp += ".";
            fp += csprintf("%u-%u", norm[i].first, norm[i].second);
        }
    }
    return fp;
}

TopologyRouter::TopologyRouter(const Topology &topo)
    : cores(topo.cores == 0 ? 1 : topo.cores), edgeList(topo.edges())
{
    constexpr unsigned unreachable =
        std::numeric_limits<unsigned>::max();
    dist_.assign(size_t(cores) * cores, unreachable);
    nextHop_.assign(size_t(cores) * cores, unreachable);
    edgeId_.assign(size_t(cores) * cores, unreachable);

    std::vector<std::vector<unsigned>> adj(cores);
    for (unsigned e = 0; e < edgeList.size(); ++e) {
        auto [a, b] = edgeList[e];
        if (a >= cores || b >= cores || a == b)
            continue;
        adj[a].push_back(b);
        adj[b].push_back(a);
        edgeId_[size_t(a) * cores + b] = e;
        edgeId_[size_t(b) * cores + a] = e;
    }
    // Ascending neighbor order makes the BFS parent (and therefore the
    // whole route) the lexicographically-least shortest path.
    for (auto &n : adj)
        std::sort(n.begin(), n.end());

    for (unsigned src = 0; src < cores; ++src) {
        dist_[size_t(src) * cores + src] = 0;
        nextHop_[size_t(src) * cores + src] = src;
        std::deque<unsigned> work{src};
        while (!work.empty()) {
            unsigned c = work.front();
            work.pop_front();
            for (unsigned n : adj[c]) {
                size_t idx = size_t(src) * cores + n;
                if (dist_[idx] != unreachable)
                    continue;
                dist_[idx] = dist_[size_t(src) * cores + c] + 1;
                // First hop out of src toward n: inherit c's, unless c
                // IS src (then the first hop is n itself).
                nextHop_[idx] = c == src
                                    ? n
                                    : nextHop_[size_t(src) * cores + c];
                work.push_back(n);
            }
        }
    }
}

unsigned
TopologyRouter::at(unsigned from, unsigned to) const
{
    if (from >= cores || to >= cores)
        panic("TopologyRouter: core index out of range");
    return dist_[size_t(from) * cores + to];
}

unsigned
TopologyRouter::dist(unsigned from, unsigned to) const
{
    unsigned d = at(from, to);
    if (d == std::numeric_limits<unsigned>::max())
        panic("TopologyRouter: no route between cores (validate() "
              "should have rejected a disconnected topology)");
    return d;
}

void
TopologyRouter::routeEdges(unsigned from, unsigned to,
                           std::vector<unsigned> &out) const
{
    dist(from, to); // range + reachability check
    unsigned c = from;
    while (c != to) {
        unsigned n = nextHop_[size_t(c) * cores + to];
        unsigned e = edgeId_[size_t(c) * cores + n];
        if (e == std::numeric_limits<unsigned>::max())
            panic("TopologyRouter: next hop without a link");
        out.push_back(e);
        c = n;
    }
}

} // namespace msq
