/**
 * @file
 * The Multi-SIMD(k,d) architecture model (paper §2.4) and its logical-level
 * cost constants (§2.3, §2.5, §3.2).
 *
 * The machine has k independently controlled SIMD operating regions; in one
 * logical timestep each active region applies a single gate type to at most
 * d qubits. Qubits move between regions and the global quantum memory by
 * quantum teleportation (4 cycles worth of gate operations per move, Fig. 2)
 * and between a region and its optional local scratchpad memory by ballistic
 * transport (1 cycle, §2.5).
 */

#ifndef MSQ_ARCH_MULTI_SIMD_HH
#define MSQ_ARCH_MULTI_SIMD_HH

#include <cstdint>
#include <limits>
#include <string>

#include "arch/topology.hh"

namespace msq {

/** Sentinel meaning "unbounded" for d and local-memory capacity. */
constexpr uint64_t unbounded = std::numeric_limits<uint64_t>::max();

/** How communication is modelled when costing a schedule. */
enum class CommMode : uint8_t {
    /** Communication is free (parallelism-only studies, Fig. 6). */
    None,
    /** Teleportation to/from global memory only (Fig. 7). */
    Global,
    /** Global teleportation plus per-region local scratchpads (Fig. 8). */
    GlobalWithLocalMem,
};

/** @return human-readable name of @p mode. */
const char *commModeName(CommMode mode);

/**
 * Static description of one Multi-SIMD machine configuration.
 */
struct MultiSimdArch
{
    /** Number of independently controlled SIMD operating regions (k). */
    unsigned k = 4;

    /** Max qubits one region operates on per timestep (d); paper uses ∞. */
    uint64_t d = unbounded;

    /**
     * Capacity (in qubits) of each region's local scratchpad memory.
     * 0 disables local memories; ::unbounded models the paper's "Inf"
     * configuration. Only consulted when CommMode is GlobalWithLocalMem.
     */
    uint64_t localMemCapacity = 0;

    /**
     * EPR-pair channel bandwidth: how many blocking teleports one
     * movement phase can service. The paper assumes sufficient EPR
     * distribution and leaves constrained channels to future work
     * (§2.3, "longer distances do imply higher EPR bandwidth
     * requirements"); ::unbounded (the default) reproduces the paper's
     * model, finite values serialize excess blocking moves into extra
     * 4-cycle phases.
     */
    uint64_t eprBandwidth = unbounded;

    /**
     * Core-and-link graph of the machine (DESIGN.md §16). The default
     * single-core topology is the paper's flat machine and changes
     * nothing anywhere; with cores > 1 the k regions split into
     * contiguous per-core groups (topology.regionsPerCore each, so
     * k == cores * regionsPerCore on the full machine), every qubit
     * gets a home core from the mapping pass, and cross-core moves are
     * routed over the link graph.
     */
    Topology topology;

    /** Cycles per logical gate operation (all gates, §3.2). */
    static constexpr uint64_t gateCycles = 1;

    /** Cycles of gate work per teleportation move (Fig. 2, §2.3). */
    static constexpr uint64_t teleportCycles = 4;

    /** Cycles per ballistic region<->local-memory move (§2.5). */
    static constexpr uint64_t localMoveCycles = 1;

    /**
     * Fixed overhead per module invocation: active qubits are flushed to
     * global memory around calls (§3.2), "a fixed overhead of a single
     * teleportation cycle".
     */
    static constexpr uint64_t callOverheadCycles = 1;

    /**
     * The naive movement model moves data between regions and global
     * memory every timestep, "effectively increasing the overall runtime
     * by 5X" (§4, §5.2): 1 compute cycle + 4 teleport cycles.
     */
    static constexpr uint64_t naiveCyclesPerGate = gateCycles +
                                                   teleportCycles;

    /** Construct a Multi-SIMD(k,d) machine. */
    MultiSimdArch() = default;
    MultiSimdArch(unsigned k, uint64_t d = unbounded,
                  uint64_t local_mem_capacity = 0)
        : k(k), d(d), localMemCapacity(local_mem_capacity)
    {}

    /** Validate the configuration; calls fatal() on nonsense. */
    void validate() const;

    /// @name Per-op cycle costs of the coarse (non-leaf) level, §4.3
    /// @{

    /**
     * Cycles one coarse-level gate operation costs under @p mode: the
     * gate cycle itself plus, when communication is modelled, the
     * 4-cycle teleport of its operands between global memory and a
     * region ("a plain gate has execution cost 1 and movement cost 4").
     */
    static constexpr uint64_t
    coarseGateCost(CommMode mode)
    {
        return mode == CommMode::None ? gateCycles
                                      : gateCycles + teleportCycles;
    }

    /**
     * Fixed per-invocation cost of a call under @p mode: the flush of
     * active qubits to global memory around the call (§3.2, "a fixed
     * overhead of a single teleportation cycle"); free when
     * communication is not modelled.
     */
    static constexpr uint64_t
    callOverhead(CommMode mode)
    {
        return mode == CommMode::None ? 0 : callOverheadCycles;
    }

    /// @}

    /** @return this architecture with a finite EPR channel bandwidth. */
    MultiSimdArch
    withEprBandwidth(uint64_t bandwidth) const
    {
        MultiSimdArch copy = *this;
        copy.eprBandwidth = bandwidth;
        return copy;
    }

    /** @return the core owning region @p region (0 on one core). */
    unsigned
    coreOfRegion(unsigned region) const
    {
        return topology.coreOfRegion(region);
    }

    /**
     * Canonical cache-key fragment covering every architecture
     * parameter a leaf-schedule result depends on (the single source of
     * truth for leafScheduleKeySuffix, the .msqc v2 entry guard, and
     * the serve warm-start path — DESIGN.md §16). On the flat machine
     * this is byte-identical to the historical hand-listed
     * "d=..|lm=..|epr=.." suffix, so existing keys and v1 cache files
     * keep hitting; multi-core appends the topology fingerprint.
     */
    std::string fingerprint() const;

    /** @return e.g. "Multi-SIMD(4,inf)+local(32)" or
     * "Multi-SIMD(8,inf) on ring(4x2, link-bw=1, link-lat=3)". */
    std::string describe() const;
};

/**
 * Parse a `--topology=<spec>` string into @p arch: comma-separated
 * key=value pairs, e.g. "cores=4,k=8,d=2,link-bw=1,link-lat=3,
 * shape=ring,map=greedy,local-mem=16,epr=2". `k` is the per-core region
 * count (the machine total becomes cores * k); keys that are absent
 * leave the corresponding field of @p arch untouched; "shape" accepts
 * ring|mesh|all-to-all (default ring for cores > 1), "map" accepts
 * greedy|roundrobin, and "link=a-b" (repeatable) adds an explicit extra
 * link between two cores. The resulting topology is validated.
 * @return false (with @p error set) on a malformed or invalid spec.
 */
bool parseTopologySpec(const std::string &spec, MultiSimdArch &arch,
                       std::string &error);

} // namespace msq

#endif // MSQ_ARCH_MULTI_SIMD_HH
