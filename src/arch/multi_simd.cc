#include "arch/multi_simd.hh"

#include <stdexcept>

#include "support/diagnostic.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

const char *
commModeName(CommMode mode)
{
    switch (mode) {
      case CommMode::None:
        return "none";
      case CommMode::Global:
        return "global";
      case CommMode::GlobalWithLocalMem:
        return "global+local";
    }
    panic("unknown CommMode");
}

void
MultiSimdArch::validate() const
{
    if (k == 0)
        fatal("Multi-SIMD architecture needs at least one region (k >= 1)");
    if (d == 0)
        fatal("Multi-SIMD region width d must be >= 1");
    if (eprBandwidth == 0)
        fatal("Multi-SIMD EPR channel bandwidth must be >= 1 (0 cannot "
              "service any teleport; use ::unbounded for the paper's "
              "model)");
    topology.validate(); // fatal() on any A-code violation
    if (topology.multiCore()) {
        // The width sweep shrinks k below the full machine; it can
        // never exceed it (region->core geometry is anchored to the
        // full machine's split).
        uint64_t full = static_cast<uint64_t>(topology.cores) *
                        topology.regionsPerCore;
        if (k > full) {
            fatal(csprintf("architecture has k=%u regions but the "
                           "topology provides only %llu (%u cores x %u "
                           "regions)",
                           k, static_cast<unsigned long long>(full),
                           topology.cores, topology.regionsPerCore));
        }
    }
}

std::string
MultiSimdArch::fingerprint() const
{
    std::string fp =
        csprintf("d=%llu|lm=%llu|epr=%llu",
                 static_cast<unsigned long long>(d),
                 static_cast<unsigned long long>(localMemCapacity),
                 static_cast<unsigned long long>(eprBandwidth));
    // Single-core machines keep the historical suffix bytes, so every
    // pre-topology cache key (in memory and on disk) still matches.
    std::string topo = topology.fingerprint();
    if (!topo.empty())
        fp += "|" + topo;
    return fp;
}

std::string
MultiSimdArch::describe() const
{
    std::string d_text = d == unbounded ? "inf" : std::to_string(d);
    std::string text = csprintf("Multi-SIMD(%u,%s)", k, d_text.c_str());
    if (localMemCapacity == unbounded)
        text += "+local(inf)";
    else if (localMemCapacity > 0)
        text += csprintf("+local(%llu)",
                         static_cast<unsigned long long>(localMemCapacity));
    if (topology.multiCore())
        text += " on " + topology.describe();
    return text;
}

bool
parseTopologySpec(const std::string &spec, MultiSimdArch &arch,
                  std::string &error)
{
    Topology topo;
    topo.linkLatency = MultiSimdArch::teleportCycles;
    unsigned per_core_k = 0;
    bool shape_set = false;

    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "topology spec item \"" + item +
                    "\" is not key=value";
            return false;
        }
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        auto parse_count = [&](uint64_t &out_value) {
            if (value == "inf" || value == "unbounded") {
                out_value = unbounded;
                return true;
            }
            try {
                size_t used = 0;
                out_value = std::stoull(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (...) {
                error = "topology spec: \"" + key +
                        "\" needs a count, got \"" + value + "\"";
                return false;
            }
            return true;
        };
        uint64_t number = 0;
        if (key == "cores") {
            if (!parse_count(number))
                return false;
            if (number == 0 || number > 1024) {
                error = "topology spec: cores must be in [1, 1024]";
                return false;
            }
            topo.cores = static_cast<unsigned>(number);
        } else if (key == "k") {
            if (!parse_count(number))
                return false;
            if (number == 0 || number > (1u << 20)) {
                error = "topology spec: per-core k must be in "
                        "[1, 2^20]";
                return false;
            }
            per_core_k = static_cast<unsigned>(number);
        } else if (key == "d") {
            if (!parse_count(number))
                return false;
            arch.d = number == 0 ? unbounded : number;
        } else if (key == "local-mem") {
            if (!parse_count(number))
                return false;
            arch.localMemCapacity = number;
        } else if (key == "epr") {
            if (!parse_count(number))
                return false;
            arch.eprBandwidth = number;
        } else if (key == "link-bw") {
            if (!parse_count(number))
                return false;
            topo.linkBandwidth = number;
        } else if (key == "link-lat") {
            if (!parse_count(number))
                return false;
            if (number == 0 || number == unbounded) {
                error = "topology spec: link-lat must be a positive "
                        "cycle count";
                return false;
            }
            topo.linkLatency = number;
        } else if (key == "shape") {
            shape_set = true;
            if (value == "ring")
                topo.shape = TopologyShape::Ring;
            else if (value == "mesh")
                topo.shape = TopologyShape::Mesh;
            else if (value == "all-to-all" || value == "all")
                topo.shape = TopologyShape::AllToAll;
            else if (value == "single")
                topo.shape = TopologyShape::SingleCore;
            else {
                error = "topology spec: unknown shape \"" + value +
                        "\" (ring|mesh|all-to-all|single)";
                return false;
            }
        } else if (key == "link") {
            size_t dash = value.find('-');
            try {
                if (dash == std::string::npos)
                    throw std::invalid_argument(value);
                size_t used_a = 0, used_b = 0;
                std::string lhs = value.substr(0, dash);
                std::string rhs = value.substr(dash + 1);
                unsigned long a = std::stoul(lhs, &used_a);
                unsigned long b = std::stoul(rhs, &used_b);
                if (used_a != lhs.size() || used_b != rhs.size())
                    throw std::invalid_argument(value);
                topo.extraLinks.emplace_back(
                    static_cast<unsigned>(a), static_cast<unsigned>(b));
            } catch (...) {
                error = "topology spec: link needs \"a-b\" core "
                        "indices, got \"" + value + "\"";
                return false;
            }
        } else if (key == "map") {
            if (value == "greedy")
                topo.mapping = MappingStrategy::Greedy;
            else if (value == "roundrobin" || value == "round-robin")
                topo.mapping = MappingStrategy::RoundRobin;
            else {
                error = "topology spec: unknown map \"" + value +
                        "\" (greedy|roundrobin)";
                return false;
            }
        } else {
            error = "topology spec: unknown key \"" + key + "\"";
            return false;
        }
    }

    if (topo.cores > 1 && !shape_set)
        topo.shape = TopologyShape::Ring;
    if (topo.cores == 1) {
        topo.shape = TopologyShape::SingleCore;
        topo.regionsPerCore = 0;
        if (per_core_k > 0)
            arch.k = per_core_k;
    } else {
        // Default per-core region count: keep the arch's current k as
        // the per-core tile size when the spec omits k.
        topo.regionsPerCore = per_core_k > 0 ? per_core_k : arch.k;
        if (topo.regionsPerCore == 0) {
            error = "topology spec: per-core k must be >= 1";
            return false;
        }
        arch.k = topo.cores * topo.regionsPerCore;
    }

    DiagnosticEngine diags;
    if (!topo.validate(&diags)) {
        error = "invalid topology: ";
        for (const auto &diag : diags.diagnostics()) {
            error += diag.format();
            error += "; ";
        }
        error.erase(error.size() - 2);
        return false;
    }
    arch.topology = topo;
    return true;
}

} // namespace msq
