#include "arch/multi_simd.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

const char *
commModeName(CommMode mode)
{
    switch (mode) {
      case CommMode::None:
        return "none";
      case CommMode::Global:
        return "global";
      case CommMode::GlobalWithLocalMem:
        return "global+local";
    }
    panic("unknown CommMode");
}

void
MultiSimdArch::validate() const
{
    if (k == 0)
        fatal("Multi-SIMD architecture needs at least one region (k >= 1)");
    if (d == 0)
        fatal("Multi-SIMD region width d must be >= 1");
    if (eprBandwidth == 0)
        fatal("Multi-SIMD EPR channel bandwidth must be >= 1 (0 cannot "
              "service any teleport; use ::unbounded for the paper's "
              "model)");
}

std::string
MultiSimdArch::describe() const
{
    std::string d_text = d == unbounded ? "inf" : std::to_string(d);
    std::string text = csprintf("Multi-SIMD(%u,%s)", k, d_text.c_str());
    if (localMemCapacity == unbounded)
        text += "+local(inf)";
    else if (localMemCapacity > 0)
        text += csprintf("+local(%llu)",
                         static_cast<unsigned long long>(localMemCapacity));
    return text;
}

} // namespace msq
