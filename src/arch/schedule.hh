/**
 * @file
 * Schedule representation for leaf modules, following paper §4: "Schedules
 * are stored as a list of sequential timesteps. Each timestep consists of
 * an array of k+1 SIMD regions. The 0th region contains a list of the
 * qubits that will be moved and their sources and destinations. The
 * remaining SIMD regions contain an unsorted list of operations to be
 * performed in that region."
 *
 * The storage is NOT the literal nested-vector translation of that
 * sentence (one Timestep struct per step owning k RegionSlot vectors,
 * k+1 heap allocations per step even when almost every slot is empty).
 * The paper evaluates machines up to k = 128 on circuits of 10^7..10^12
 * gates; at that scale the nested representation's allocator traffic and
 * per-step overhead dominate. Schedules are therefore stored as a compact
 * structure-of-arrays ScheduleBuffer:
 *
 *   ops        one flat op-index stream for the whole schedule
 *   slots      one record per *active* (step, region) pair: the region,
 *              the SIMD gate kind, and the exclusive end of its op range
 *              (the begin is the previous slot's end — op ranges tile the
 *              stream); slots are sorted by region within each step
 *   slotEnd    per step, the exclusive end of its slot range
 *   moves      one flat movement stream (the "0th region")
 *   moveEnd    per step, the exclusive end of its move range
 *   activeWords dense per-step bitmap of active regions, (k+63)/64
 *              words per step, for O(1) "is region r active?" queries
 *
 * Empty regions cost zero bytes and zero allocations. Consumers read
 * through the cheap TimestepView / RegionSlotView value types, stream
 * through ScheduleSink / ScheduleWalker, and produce through
 * ScheduleBuilder (schedulers) or MoveAnnotator (communication
 * analysis). See DESIGN.md §11 for the layout math and migration notes.
 *
 * LeafSchedule holds the buffer behind a shared_ptr with copy-on-write
 * mutation: the leaf-schedule cache shares buffers across threads and
 * Toolflow runs, and a cached schedule can never be corrupted through an
 * aliasing handle (the old public mutable steps() accessor is gone).
 */

#ifndef MSQ_ARCH_SCHEDULE_HH
#define MSQ_ARCH_SCHEDULE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/location.hh"
#include "arch/multi_simd.hh"
#include "ir/module.hh"

namespace msq {

class LeafSchedule;

/// @name Movement-phase cost helpers (free functions over move ranges)
/// @{

/** Number of blocking (tight) teleports in [@p begin, @p end). */
uint64_t blockingMoveCount(const Move *begin, const Move *end);

/** Any ballistic region<->scratchpad move in [@p begin, @p end)? */
bool hasLocalMove(const Move *begin, const Move *end);

/** Any teleport that blocks the schedule in [@p begin, @p end)? */
bool hasBlockingGlobalMove(const Move *begin, const Move *end);

/**
 * Cycles spent on one timestep's movement phase: the full 4-cycle
 * teleport time if any blocking global move occurs (paper §4.4), 1 cycle
 * if only local (ballistic) moves occur, 0 otherwise — masked teleports
 * overlap computation (paper §2.3). A finite EPR channel bandwidth
 * serializes excess blocking moves into additional teleport phases.
 * Zero bandwidth is a configuration error (MultiSimdArch::validate()
 * rejects it at construction time) and panics here.
 */
uint64_t movePhaseCycles(const Move *begin, const Move *end,
                         uint64_t epr_bandwidth = unbounded);

/** Core that houses @p loc: region/scratchpad locations map through the
 * topology's region->core assignment; a GlobalMemory location names its
 * core (bank index) directly. */
unsigned locationCore(const Location &loc, const MultiSimdArch &arch);

/**
 * Topology-aware movement-phase cost model. On the flat one-core machine
 * it reduces exactly to movePhaseCycles(begin, end, arch.eprBandwidth);
 * on a multi-core topology the phase additionally routes blocking
 * inter-core teleports over the link graph:
 *
 *   intra  = ceil(blockingIntra / eprBandwidth) * teleportCycles
 *   inter  = linkLatency * (maxHops + rounds - 1), where rounds is the
 *            max over links of ceil(blockingLoad(link) / linkBandwidth)
 *   phase  = max(intra, inter), or localMoveCycles if that is zero and
 *            a ballistic move occurs
 *
 * i.e. intra-core and inter-core traffic overlap (separate fabrics), a
 * longer route costs one linkLatency per hop, and links serialize their
 * excess load into extra pipelined rounds. Build one per schedule walk —
 * construction builds the all-pairs route table.
 */
class MovePhaseCostModel
{
  public:
    explicit MovePhaseCostModel(const MultiSimdArch &arch);

    /** Cycles for one timestep's movement phase [@p begin, @p end). */
    uint64_t cycles(const Move *begin, const Move *end) const;

    const MultiSimdArch &arch() const { return *arch_; }
    const TopologyRouter &router() const { return router_; }

    /** Is @p m an inter-core teleport (endpoints on different cores)? */
    bool
    interCore(const Move &m) const
    {
        return arch_->topology.multiCore() &&
               locationCore(m.from, *arch_) != locationCore(m.to, *arch_);
    }

    /** Link hops between @p m's endpoint cores (0 when intra-core). */
    uint64_t
    hops(const Move &m) const
    {
        return router_.dist(locationCore(m.from, *arch_),
                            locationCore(m.to, *arch_));
    }

  private:
    const MultiSimdArch *arch_;
    TopologyRouter router_;
    /** Scratch per-link blocking loads, reused across cycles() calls. */
    mutable std::vector<uint64_t> edgeLoad;
};

/// @}

/**
 * Structure-of-arrays storage for one leaf schedule. Pure data, no
 * reference to the scheduled Module — which is what lets the leaf cache
 * share one buffer across structurally identical modules (their op
 * indices are interchangeable by definition of the structural hash).
 *
 * Invariants (checked by consumers, produced by ScheduleBuilder):
 *  - slotEnd and moveEnd have one entry per step, non-decreasing;
 *  - slots of one step are sorted by strictly increasing region < k;
 *  - every slot has a non-empty op range (inactive regions have none);
 *  - activeWords has wordsPerStep() words per step mirroring the slots.
 */
struct ScheduleBuffer
{
    /** One active (step, region) pair. The op range begin is implicit:
     * the previous slot's opEnd (0 for the very first slot). */
    struct Slot
    {
        uint32_t opEnd;  ///< exclusive end into ops
        uint32_t region; ///< region index in [0, k)
        GateKind kind;   ///< the region's SIMD gate type this step
    };

    unsigned k = 0;                  ///< regions per timestep
    std::vector<Slot> slots;         ///< region-sorted within each step
    std::vector<uint32_t> slotEnd;   ///< per step: exclusive end into slots
    std::vector<uint32_t> ops;       ///< flat op-index stream
    std::vector<Move> moves;         ///< flat movement stream
    std::vector<uint64_t> moveEnd;   ///< per step: exclusive end into moves
    std::vector<uint64_t> activeWords; ///< per-step active-region bitmap

    uint64_t numSteps() const { return slotEnd.size(); }

    /** Bitmap words per timestep. */
    size_t wordsPerStep() const { return (size_t(k) + 63) / 64; }

    uint32_t
    slotBegin(uint64_t step) const
    {
        return step == 0 ? 0 : slotEnd[step - 1];
    }

    uint32_t
    opBegin(uint32_t slot_index) const
    {
        return slot_index == 0 ? 0 : slots[slot_index - 1].opEnd;
    }

    uint64_t
    moveBegin(uint64_t step) const
    {
        return step == 0 ? 0 : moveEnd[step - 1];
    }

    /** O(1): does region @p r execute ops in @p step? */
    bool
    regionActive(uint64_t step, unsigned r) const
    {
        return (activeWords[step * wordsPerStep() + r / 64] >>
                (r % 64)) &
               1;
    }

    /** Heap bytes held by this buffer (capacity-based, plus the struct
     * itself) — the quantity bench_schedule_memory reports. */
    uint64_t byteSize() const;
};

/** Contiguous read-only range of scheduled op indices. */
struct OpSpan
{
    const uint32_t *first = nullptr;
    const uint32_t *last = nullptr;

    const uint32_t *begin() const { return first; }
    const uint32_t *end() const { return last; }
    size_t size() const { return static_cast<size_t>(last - first); }
    bool empty() const { return first == last; }
    uint32_t operator[](size_t i) const { return first[i]; }
};

/** Contiguous read-only range of moves (one timestep's "0th region"). */
struct MoveSpan
{
    const Move *first = nullptr;
    const Move *last = nullptr;

    const Move *begin() const { return first; }
    const Move *end() const { return last; }
    size_t size() const { return static_cast<size_t>(last - first); }
    bool empty() const { return first == last; }
    const Move &operator[](size_t i) const { return first[i]; }
};

/**
 * What one SIMD region does in one timestep: a single gate type applied
 * to the operands of one or more operations (SIMD semantics: one control
 * signal, many qubits). A cheap value type over ScheduleBuffer — only
 * *active* regions have a slot, so a view is never empty.
 */
class RegionSlotView
{
  public:
    RegionSlotView(const ScheduleBuffer &buf, uint32_t index)
        : buf(&buf), index_(index)
    {}

    unsigned region() const { return buf->slots[index_].region; }
    GateKind kind() const { return buf->slots[index_].kind; }

    OpSpan
    ops() const
    {
        const uint32_t *base = buf->ops.data();
        return {base + buf->opBegin(index_),
                base + buf->slots[index_].opEnd};
    }

    size_t numOps() const { return ops().size(); }

  private:
    const ScheduleBuffer *buf;
    uint32_t index_;
};

/**
 * One logical timestep: the movement slot plus the step's active region
 * slots. A cheap value type; iterating its slots visits active regions
 * in ascending region order.
 */
class TimestepView
{
  public:
    TimestepView(const ScheduleBuffer &buf, uint64_t step)
        : buf(&buf), step_(step)
    {}

    uint64_t index() const { return step_; }
    unsigned k() const { return buf->k; }

    /** Number of regions executing an operation this step. */
    unsigned
    activeRegions() const
    {
        return buf->slotEnd[step_] - buf->slotBegin(step_);
    }

    unsigned numSlots() const { return activeRegions(); }

    /** The @p i-th active slot (region-ascending order). */
    RegionSlotView
    slot(unsigned i) const
    {
        return RegionSlotView(*buf, buf->slotBegin(step_) + i);
    }

    /** O(1) bitmap lookup: does region @p r execute ops this step? */
    bool regionActive(unsigned r) const
    {
        return buf->regionActive(step_, r);
    }

    MoveSpan
    moves() const
    {
        const Move *base = buf->moves.data();
        return {base + buf->moveBegin(step_),
                base + buf->moveEnd[step_]};
    }

    bool
    hasBlockingGlobalMove() const
    {
        MoveSpan m = moves();
        return msq::hasBlockingGlobalMove(m.begin(), m.end());
    }

    bool
    hasLocalMove() const
    {
        MoveSpan m = moves();
        return msq::hasLocalMove(m.begin(), m.end());
    }

    uint64_t
    blockingMoveCount() const
    {
        MoveSpan m = moves();
        return msq::blockingMoveCount(m.begin(), m.end());
    }

    uint64_t
    movePhaseCycles(uint64_t epr_bandwidth = unbounded) const
    {
        MoveSpan m = moves();
        return msq::movePhaseCycles(m.begin(), m.end(), epr_bandwidth);
    }

    /// @name Slot iteration (range-for yields RegionSlotView)
    /// @{
    class SlotIterator
    {
      public:
        SlotIterator(const ScheduleBuffer &buf, uint32_t index)
            : buf(&buf), index_(index)
        {}
        RegionSlotView operator*() const
        {
            return RegionSlotView(*buf, index_);
        }
        SlotIterator &operator++()
        {
            ++index_;
            return *this;
        }
        bool operator!=(const SlotIterator &o) const
        {
            return index_ != o.index_;
        }

      private:
        const ScheduleBuffer *buf;
        uint32_t index_;
    };

    SlotIterator begin() const
    {
        return SlotIterator(*buf, buf->slotBegin(step_));
    }
    SlotIterator end() const
    {
        return SlotIterator(*buf, buf->slotEnd[step_]);
    }
    /// @}

  private:
    const ScheduleBuffer *buf;
    uint64_t step_;
};

/**
 * Push-style streaming consumer interface. LeafSchedule::stream() drives
 * one schedule through a sink in timestep order:
 *
 *   beginSchedule, then per step: beginStep, slot()* (region-ascending),
 *   move()*, endStep; finally endSchedule.
 *
 * Sinks that need random access within the current step (e.g. the
 * timeline printer's inactive-region markers) use the TimestepView
 * passed to beginStep/endStep.
 */
class ScheduleSink
{
  public:
    virtual ~ScheduleSink() = default;
    virtual void beginSchedule(const LeafSchedule & /*sched*/) {}
    virtual void beginStep(const TimestepView & /*step*/) {}
    virtual void slot(const RegionSlotView & /*slot*/) {}
    virtual void move(const Move & /*move*/) {}
    virtual void endStep(const TimestepView & /*step*/) {}
    virtual void endSchedule() {}
};

/**
 * A complete fine-grained schedule of one leaf module on a Multi-SIMD
 * machine. Produced by the leaf schedulers through ScheduleBuilder
 * (compute placement only) and then annotated with movement by the
 * CommunicationAnalyzer through MoveAnnotator.
 *
 * The underlying ScheduleBuffer is shared (leaf cache, fan-out threads)
 * and copy-on-write: the few mutation entry points (appendMove,
 * appendEmptyStep, MoveAnnotator) detach a private copy when the buffer
 * is aliased, so no handle can corrupt another's schedule.
 */
class LeafSchedule
{
  public:
    /**
     * An empty schedule.
     * @param mod the scheduled leaf module (must outlive the schedule).
     * @param k number of SIMD regions the schedule may use.
     */
    LeafSchedule(const Module &mod, unsigned k);

    /**
     * Rebind an existing (typically cached) buffer to @p mod. The module
     * must be structurally identical to the one the buffer was built
     * from — the leaf cache guarantees this via Module::structuralHash().
     */
    LeafSchedule(const Module &mod,
                 std::shared_ptr<const ScheduleBuffer> buffer);

    const Module &module() const { return *mod; }
    unsigned k() const { return buf_->k; }

    const ScheduleBuffer &buffer() const { return *buf_; }

    /** Share the underlying storage (what the leaf cache stores). */
    std::shared_ptr<const ScheduleBuffer> sharedBuffer() const
    {
        return buf_;
    }

    /** Number of compute timesteps. */
    uint64_t computeTimesteps() const { return buf_->numSteps(); }

    TimestepView step(uint64_t ts) const
    {
        return TimestepView(*buf_, ts);
    }

    /// @name Timestep iteration (range-for yields TimestepView)
    /// @{
    class StepIterator
    {
      public:
        StepIterator(const ScheduleBuffer &buf, uint64_t step)
            : buf(&buf), step_(step)
        {}
        TimestepView operator*() const
        {
            return TimestepView(*buf, step_);
        }
        StepIterator &operator++()
        {
            ++step_;
            return *this;
        }
        bool operator!=(const StepIterator &o) const
        {
            return step_ != o.step_;
        }

      private:
        const ScheduleBuffer *buf;
        uint64_t step_;
    };

    struct StepRange
    {
        const ScheduleBuffer *buf;
        StepIterator begin() const { return StepIterator(*buf, 0); }
        StepIterator end() const
        {
            return StepIterator(*buf, buf->numSteps());
        }
        uint64_t size() const { return buf->numSteps(); }
    };

    /** Read-only view range over all timesteps. */
    StepRange steps() const { return StepRange{buf_.get()}; }
    /// @}

    /**
     * Stream the schedule through @p sink in timestep order.
     * @param max_steps stop after this many steps (0 = all).
     */
    void stream(ScheduleSink &sink, uint64_t max_steps = 0) const;

    /** Append a timestep with no active regions and no moves (COW). */
    void appendEmptyStep();

    /**
     * Append @p move to timestep @p ts's movement slot (COW). O(moves)
     * when @p ts is not the last step — meant for fault injection and
     * tests, not bulk annotation (use MoveAnnotator for that).
     */
    void appendMove(uint64_t ts, const Move &move);

    /** Maximum number of simultaneously active regions over all steps. */
    unsigned width() const;

    /** Total operations placed (for completeness checks). */
    uint64_t scheduledOps() const { return buf_->ops.size(); }

    /**
     * Total cycles including per-step movement phases. Before movement
     * annotation this equals computeTimesteps().
     * @param epr_bandwidth optional EPR channel constraint (see
     *        msq::movePhaseCycles).
     */
    uint64_t totalCycles(uint64_t epr_bandwidth = unbounded) const;

    /** Topology-aware total cycles: per-step phases are priced by a
     * MovePhaseCostModel over @p arch. Equals totalCycles(
     * arch.eprBandwidth) on a single-core topology. */
    uint64_t totalCycles(const MultiSimdArch &arch) const;

    /** Largest number of blocking teleports in any single timestep —
     * the peak EPR bandwidth demand of this schedule. */
    uint64_t peakBlockingMoves() const;

    /** Number of teleportation (global) moves across all steps. */
    uint64_t teleportMoves() const;

    /** Number of ballistic (local-memory) moves across all steps. */
    uint64_t localMoves() const;

  private:
    friend class MoveAnnotator;

    /** Detach a private copy when the buffer is shared. */
    ScheduleBuffer &mutableBuffer();

    const Module *mod;
    std::shared_ptr<const ScheduleBuffer> buf_;
};

/**
 * Incremental producer interface for the leaf schedulers. The builder
 * keeps one dense draft of k slots that is reused across timesteps —
 * after the first few steps warm their capacity up, emitting a step
 * performs no heap allocation beyond the amortized growth of the flat
 * output arrays:
 *
 *   ScheduleBuilder b(mod, arch.k);
 *   while (work) {
 *       b.beginStep();
 *       b.slot(r).kind = ...; b.slot(r).ops.push_back(op);  // any order
 *       ... (drafted placements may be read back within the step) ...
 *       b.endStep();   // compacts the draft into the SoA buffer
 *   }
 *   LeafSchedule sched = b.finish();
 */
class ScheduleBuilder
{
  public:
    /** Mutable draft of one region's slot for the current timestep. */
    struct DraftSlot
    {
        GateKind kind = GateKind::X;
        std::vector<uint32_t> ops;

        bool active() const { return !ops.empty(); }
    };

    ScheduleBuilder(const Module &mod, unsigned k);

    unsigned k() const { return buf->k; }

    /** Open the next timestep; all draft slots become empty. */
    void beginStep();

    /** The draft slot of region @p r in the open timestep. */
    DraftSlot &slot(unsigned r) { return draft[r]; }
    const DraftSlot &slot(unsigned r) const { return draft[r]; }

    /** Seal the open timestep into the buffer. */
    void endStep();

    /** @return the finished schedule; the builder is then exhausted. */
    LeafSchedule finish();

  private:
    const Module *mod;
    std::shared_ptr<ScheduleBuffer> buf;
    std::vector<DraftSlot> draft;
    bool stepOpen = false;
};

/**
 * Single-pass movement-stream rebuilder for the CommunicationAnalyzer:
 * clears the schedule's existing movement annotation on construction
 * (detaching a private buffer copy if shared), then refills it step by
 * step. The slot/op arrays are untouched throughout, so reading the
 * schedule's compute placement through views stays valid during
 * annotation; move spans of unsealed steps must not be read until
 * finish().
 *
 *   MoveAnnotator annot(sched);           // moves cleared
 *   for each step: annot.add(move)...; annot.endStep();
 *   annot.finish();                       // checks step-count match
 */
class MoveAnnotator
{
  public:
    explicit MoveAnnotator(LeafSchedule &sched);

    /** Append @p move to the movement slot of the current timestep. */
    void add(const Move &move) { buf->moves.push_back(move); }

    /** Seal the current timestep's movement slot. */
    void
    endStep()
    {
        buf->moveEnd.push_back(buf->moves.size());
    }

    /** Finish annotation; panics unless every timestep was sealed. */
    void finish();

  private:
    ScheduleBuffer *buf;
};

/**
 * Pull-style streaming cursor over a schedule's timesteps — the
 * counterpart of ScheduleSink for consumers that interleave their own
 * state machine with the walk (validator, movement replay).
 */
class ScheduleWalker
{
  public:
    explicit ScheduleWalker(const LeafSchedule &sched)
        : buf(&sched.buffer())
    {}

    bool atEnd() const { return step_ == buf->numSteps(); }
    uint64_t index() const { return step_; }
    TimestepView step() const { return TimestepView(*buf, step_); }
    void next() { ++step_; }

  private:
    const ScheduleBuffer *buf;
    uint64_t step_ = 0;
};

} // namespace msq

#endif // MSQ_ARCH_SCHEDULE_HH
