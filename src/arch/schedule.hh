/**
 * @file
 * Schedule representation for leaf modules, exactly as described in paper
 * §4: "Schedules are stored as a list of sequential timesteps. Each
 * timestep consists of an array of k+1 SIMD regions. The 0th region
 * contains a list of the qubits that will be moved and their sources and
 * destinations. The remaining SIMD regions contain an unsorted list of
 * operations to be performed in that region."
 */

#ifndef MSQ_ARCH_SCHEDULE_HH
#define MSQ_ARCH_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "arch/location.hh"
#include "arch/multi_simd.hh"
#include "ir/module.hh"

namespace msq {

/**
 * What one SIMD region does in one timestep: a single gate type applied to
 * the operands of one or more operations (SIMD semantics: one control
 * signal, many qubits).
 */
struct RegionSlot
{
    GateKind kind = GateKind::X;
    std::vector<uint32_t> ops; ///< indices into the module's op list

    bool active() const { return !ops.empty(); }
};

/** One logical timestep: the movement slot plus k region slots. */
struct Timestep
{
    std::vector<Move> moves;         ///< the "0th region"
    std::vector<RegionSlot> regions; ///< exactly k entries

    /** Number of regions executing an operation this step. */
    unsigned
    activeRegions() const
    {
        unsigned n = 0;
        for (const auto &slot : regions)
            if (slot.active())
                ++n;
        return n;
    }

    /** Any teleport that blocks the schedule (tight reuse window). */
    bool
    hasBlockingGlobalMove() const
    {
        for (const auto &move : moves)
            if (!move.isLocal() && move.blocking)
                return true;
        return false;
    }

    bool
    hasLocalMove() const
    {
        for (const auto &move : moves)
            if (move.isLocal())
                return true;
        return false;
    }

    /** Number of blocking (tight) teleports in this step's move slot. */
    uint64_t
    blockingMoveCount() const
    {
        uint64_t count = 0;
        for (const auto &move : moves)
            if (!move.isLocal() && move.blocking)
                ++count;
        return count;
    }

    /**
     * Cycles spent on this timestep's movement phase: the full 4-cycle
     * teleport time if any blocking global move occurs (paper §4.4),
     * 1 cycle if only local (ballistic) moves block, 0 otherwise —
     * masked teleports overlap computation (paper §2.3). A finite EPR
     * channel bandwidth serializes excess blocking moves into
     * additional teleport phases.
     */
    uint64_t
    movePhaseCycles(uint64_t epr_bandwidth = unbounded) const
    {
        uint64_t blocking = blockingMoveCount();
        if (blocking > 0) {
            uint64_t phases = 1;
            if (epr_bandwidth != unbounded && epr_bandwidth > 0)
                phases = (blocking + epr_bandwidth - 1) / epr_bandwidth;
            return phases * MultiSimdArch::teleportCycles;
        }
        if (hasLocalMove())
            return MultiSimdArch::localMoveCycles;
        return 0;
    }
};

/**
 * A complete fine-grained schedule of one leaf module on a Multi-SIMD
 * machine. Produced by the leaf schedulers (compute placement only) and
 * then annotated with movement by the CommunicationAnalyzer.
 */
class LeafSchedule
{
  public:
    /**
     * @param mod the scheduled leaf module (must outlive the schedule).
     * @param k number of SIMD regions the schedule may use.
     */
    LeafSchedule(const Module &mod, unsigned k) : mod(&mod), k_(k) {}

    const Module &module() const { return *mod; }
    unsigned k() const { return k_; }

    /** Append an empty timestep (regions pre-sized to k) and return it. */
    Timestep &appendStep();

    const std::vector<Timestep> &steps() const { return steps_; }
    std::vector<Timestep> &steps() { return steps_; }

    /** Number of compute timesteps. */
    uint64_t computeTimesteps() const { return steps_.size(); }

    /** Maximum number of simultaneously active regions over all steps. */
    unsigned width() const;

    /** Total operations placed (for completeness checks). */
    uint64_t scheduledOps() const;

    /**
     * Total cycles including per-step movement phases. Before movement
     * annotation this equals computeTimesteps().
     * @param epr_bandwidth optional EPR channel constraint (see
     *        Timestep::movePhaseCycles).
     */
    uint64_t totalCycles(uint64_t epr_bandwidth = unbounded) const;

    /** Largest number of blocking teleports in any single timestep —
     * the peak EPR bandwidth demand of this schedule. */
    uint64_t peakBlockingMoves() const;

    /** Number of teleportation (global) moves across all steps. */
    uint64_t teleportMoves() const;

    /** Number of ballistic (local-memory) moves across all steps. */
    uint64_t localMoves() const;

  private:
    const Module *mod;
    unsigned k_;
    std::vector<Timestep> steps_;
};

} // namespace msq

#endif // MSQ_ARCH_SCHEDULE_HH
