#include "arch/teleport_circuit.hh"

namespace msq {

void
appendTeleport(Module &mod, QubitId source, QubitId epr_src,
               QubitId epr_dst)
{
    using GK = GateKind;
    // EPR pair preparation + distribution (pipelined ahead of time in
    // the execution model, §2.3).
    mod.addGate(GK::PrepZ, {epr_src});
    mod.addGate(GK::PrepZ, {epr_dst});
    mod.addGate(GK::H, {epr_src});
    mod.addGate(GK::CNOT, {epr_src, epr_dst});

    // Source-side Bell measurement (Fig. 2: the q1/q2 column).
    mod.addGate(GK::CNOT, {source, epr_src});
    mod.addGate(GK::H, {source});
    mod.addGate(GK::MeasZ, {source});
    mod.addGate(GK::MeasZ, {epr_src});

    // Destination-side corrections (classically controlled on the two
    // measurement bits; emitted unconditionally at the logical level).
    mod.addGate(GK::X, {epr_dst});
    mod.addGate(GK::Z, {epr_dst});
}

unsigned
teleportCriticalSteps()
{
    // CNOT(source, epr_src) -> H(source) -> measurements -> corrections:
    // four sequential manipulation steps between "source available" and
    // "destination usable" (Fig. 2, §2.3).
    return 4;
}

} // namespace msq
