#include "arch/schedule.hh"

#include <algorithm>

namespace msq {

Timestep &
LeafSchedule::appendStep()
{
    steps_.emplace_back();
    steps_.back().regions.resize(k_);
    return steps_.back();
}

unsigned
LeafSchedule::width() const
{
    unsigned best = 0;
    for (const auto &step : steps_)
        best = std::max(best, step.activeRegions());
    return best;
}

uint64_t
LeafSchedule::scheduledOps() const
{
    uint64_t count = 0;
    for (const auto &step : steps_)
        for (const auto &slot : step.regions)
            count += slot.ops.size();
    return count;
}

uint64_t
LeafSchedule::totalCycles(uint64_t epr_bandwidth) const
{
    uint64_t cycles = 0;
    for (const auto &step : steps_)
        cycles += MultiSimdArch::gateCycles +
                  step.movePhaseCycles(epr_bandwidth);
    return cycles;
}

uint64_t
LeafSchedule::peakBlockingMoves() const
{
    uint64_t peak = 0;
    for (const auto &step : steps_)
        peak = std::max(peak, step.blockingMoveCount());
    return peak;
}

uint64_t
LeafSchedule::teleportMoves() const
{
    uint64_t count = 0;
    for (const auto &step : steps_)
        for (const auto &move : step.moves)
            if (!move.isLocal())
                ++count;
    return count;
}

uint64_t
LeafSchedule::localMoves() const
{
    uint64_t count = 0;
    for (const auto &step : steps_)
        for (const auto &move : step.moves)
            if (move.isLocal())
                ++count;
    return count;
}

} // namespace msq
