#include "arch/schedule.hh"

#include <algorithm>

#include "support/logging.hh"

namespace msq {

uint64_t
blockingMoveCount(const Move *begin, const Move *end)
{
    uint64_t count = 0;
    for (const Move *m = begin; m != end; ++m)
        if (!m->isLocal() && m->blocking)
            ++count;
    return count;
}

bool
hasLocalMove(const Move *begin, const Move *end)
{
    for (const Move *m = begin; m != end; ++m)
        if (m->isLocal())
            return true;
    return false;
}

bool
hasBlockingGlobalMove(const Move *begin, const Move *end)
{
    for (const Move *m = begin; m != end; ++m)
        if (!m->isLocal() && m->blocking)
            return true;
    return false;
}

uint64_t
movePhaseCycles(const Move *begin, const Move *end, uint64_t epr_bandwidth)
{
    if (epr_bandwidth == 0)
        panic("movePhaseCycles: EPR bandwidth of 0 cannot move anything; "
              "MultiSimdArch::validate() should have rejected this "
              "configuration");
    uint64_t blocking = blockingMoveCount(begin, end);
    if (blocking > 0) {
        uint64_t phases = 1;
        if (epr_bandwidth != unbounded)
            phases = (blocking + epr_bandwidth - 1) / epr_bandwidth;
        return phases * MultiSimdArch::teleportCycles;
    }
    if (hasLocalMove(begin, end))
        return MultiSimdArch::localMoveCycles;
    return 0;
}

unsigned
locationCore(const Location &loc, const MultiSimdArch &arch)
{
    if (loc.isGlobal())
        return loc.region;
    return arch.coreOfRegion(loc.region);
}

MovePhaseCostModel::MovePhaseCostModel(const MultiSimdArch &arch)
    : arch_(&arch), router_(arch.topology),
      edgeLoad(router_.numEdges(), 0)
{}

uint64_t
MovePhaseCostModel::cycles(const Move *begin, const Move *end) const
{
    const Topology &topo = arch_->topology;
    if (!topo.multiCore())
        return movePhaseCycles(begin, end, arch_->eprBandwidth);

    if (arch_->eprBandwidth == 0)
        panic("MovePhaseCostModel: EPR bandwidth of 0 cannot move "
              "anything; MultiSimdArch::validate() should have rejected "
              "this configuration");

    uint64_t intra_blocking = 0;
    uint64_t max_hops = 0;
    bool any_inter = false;
    bool any_local = false;
    std::fill(edgeLoad.begin(), edgeLoad.end(), 0);
    std::vector<unsigned> route;
    for (const Move *m = begin; m != end; ++m) {
        if (m->isLocal()) {
            any_local = true;
            continue;
        }
        if (!m->blocking)
            continue;
        unsigned from = locationCore(m->from, *arch_);
        unsigned to = locationCore(m->to, *arch_);
        if (from == to) {
            ++intra_blocking;
            continue;
        }
        any_inter = true;
        max_hops = std::max<uint64_t>(max_hops, router_.dist(from, to));
        route.clear();
        router_.routeEdges(from, to, route);
        for (unsigned e : route)
            ++edgeLoad[e];
    }

    uint64_t intra = 0;
    if (intra_blocking > 0) {
        uint64_t phases = 1;
        if (arch_->eprBandwidth != unbounded)
            phases = (intra_blocking + arch_->eprBandwidth - 1) /
                     arch_->eprBandwidth;
        intra = phases * MultiSimdArch::teleportCycles;
    }

    uint64_t inter = 0;
    if (any_inter) {
        // Pipelined store-and-forward: the first round drains after
        // maxHops link traversals, and every extra round a saturated
        // link needs adds one more traversal behind it.
        uint64_t rounds = 1;
        if (topo.linkBandwidth != unbounded)
            for (uint64_t load : edgeLoad)
                rounds = std::max(
                    rounds,
                    (load + topo.linkBandwidth - 1) / topo.linkBandwidth);
        inter = topo.linkLatency * (max_hops + rounds - 1);
    }

    uint64_t phase = std::max(intra, inter);
    if (phase == 0 && any_local)
        return MultiSimdArch::localMoveCycles;
    return phase;
}

uint64_t
ScheduleBuffer::byteSize() const
{
    return sizeof(ScheduleBuffer) +
           slots.capacity() * sizeof(Slot) +
           slotEnd.capacity() * sizeof(uint32_t) +
           ops.capacity() * sizeof(uint32_t) +
           moves.capacity() * sizeof(Move) +
           moveEnd.capacity() * sizeof(uint64_t) +
           activeWords.capacity() * sizeof(uint64_t);
}

LeafSchedule::LeafSchedule(const Module &mod, unsigned k) : mod(&mod)
{
    auto buf = std::make_shared<ScheduleBuffer>();
    buf->k = k;
    buf_ = std::move(buf);
}

LeafSchedule::LeafSchedule(const Module &mod,
                           std::shared_ptr<const ScheduleBuffer> buffer)
    : mod(&mod), buf_(std::move(buffer))
{
    if (!buf_)
        panic("LeafSchedule: null schedule buffer");
}

ScheduleBuffer &
LeafSchedule::mutableBuffer()
{
    // Copy-on-write: a buffer may be aliased by the leaf cache or by
    // other schedule handles; never mutate through a shared reference.
    if (buf_.use_count() != 1)
        buf_ = std::make_shared<ScheduleBuffer>(*buf_);
    return *std::const_pointer_cast<ScheduleBuffer>(buf_);
}

void
LeafSchedule::appendEmptyStep()
{
    ScheduleBuffer &buf = mutableBuffer();
    buf.slotEnd.push_back(static_cast<uint32_t>(buf.slots.size()));
    buf.moveEnd.push_back(buf.moves.size());
    buf.activeWords.resize(buf.activeWords.size() + buf.wordsPerStep(),
                           0);
}

void
LeafSchedule::appendMove(uint64_t ts, const Move &move)
{
    ScheduleBuffer &buf = mutableBuffer();
    if (ts >= buf.numSteps())
        panic("LeafSchedule::appendMove: timestep out of range");
    buf.moves.insert(buf.moves.begin() +
                         static_cast<ptrdiff_t>(buf.moveEnd[ts]),
                     move);
    for (uint64_t s = ts; s < buf.numSteps(); ++s)
        ++buf.moveEnd[s];
}

unsigned
LeafSchedule::width() const
{
    unsigned best = 0;
    uint32_t prev = 0;
    for (uint32_t end : buf_->slotEnd) {
        best = std::max(best, end - prev);
        prev = end;
    }
    return best;
}

uint64_t
LeafSchedule::totalCycles(uint64_t epr_bandwidth) const
{
    const ScheduleBuffer &buf = *buf_;
    uint64_t cycles = buf.numSteps() * MultiSimdArch::gateCycles;
    const Move *base = buf.moves.data();
    uint64_t prev = 0;
    for (uint64_t end : buf.moveEnd) {
        cycles += movePhaseCycles(base + prev, base + end, epr_bandwidth);
        prev = end;
    }
    return cycles;
}

uint64_t
LeafSchedule::totalCycles(const MultiSimdArch &arch) const
{
    if (!arch.topology.multiCore())
        return totalCycles(arch.eprBandwidth);
    MovePhaseCostModel cost(arch);
    const ScheduleBuffer &buf = *buf_;
    uint64_t cycles = buf.numSteps() * MultiSimdArch::gateCycles;
    const Move *base = buf.moves.data();
    uint64_t prev = 0;
    for (uint64_t end : buf.moveEnd) {
        cycles += cost.cycles(base + prev, base + end);
        prev = end;
    }
    return cycles;
}

uint64_t
LeafSchedule::peakBlockingMoves() const
{
    const ScheduleBuffer &buf = *buf_;
    const Move *base = buf.moves.data();
    uint64_t peak = 0;
    uint64_t prev = 0;
    for (uint64_t end : buf.moveEnd) {
        peak = std::max(peak, blockingMoveCount(base + prev, base + end));
        prev = end;
    }
    return peak;
}

uint64_t
LeafSchedule::teleportMoves() const
{
    uint64_t count = 0;
    for (const Move &move : buf_->moves)
        if (!move.isLocal())
            ++count;
    return count;
}

uint64_t
LeafSchedule::localMoves() const
{
    uint64_t count = 0;
    for (const Move &move : buf_->moves)
        if (move.isLocal())
            ++count;
    return count;
}

void
LeafSchedule::stream(ScheduleSink &sink, uint64_t max_steps) const
{
    const ScheduleBuffer &buf = *buf_;
    uint64_t limit = max_steps == 0
                         ? buf.numSteps()
                         : std::min<uint64_t>(max_steps, buf.numSteps());
    sink.beginSchedule(*this);
    for (uint64_t ts = 0; ts < limit; ++ts) {
        TimestepView step(buf, ts);
        sink.beginStep(step);
        for (RegionSlotView slot : step)
            sink.slot(slot);
        for (const Move &move : step.moves())
            sink.move(move);
        sink.endStep(step);
    }
    sink.endSchedule();
}

ScheduleBuilder::ScheduleBuilder(const Module &mod, unsigned k)
    : mod(&mod), buf(std::make_shared<ScheduleBuffer>()), draft(k)
{
    if (k == 0)
        panic("ScheduleBuilder: k must be >= 1");
    buf->k = k;
}

void
ScheduleBuilder::beginStep()
{
    if (stepOpen)
        panic("ScheduleBuilder: beginStep with a step already open");
    stepOpen = true;
    // clear() keeps each draft slot's capacity, so steady-state steps
    // allocate nothing here.
    for (DraftSlot &slot : draft)
        slot.ops.clear();
}

void
ScheduleBuilder::endStep()
{
    if (!stepOpen)
        panic("ScheduleBuilder: endStep without beginStep");
    stepOpen = false;
    const size_t words = buf->wordsPerStep();
    const size_t word_base = buf->activeWords.size();
    buf->activeWords.resize(word_base + words, 0);
    for (unsigned r = 0; r < draft.size(); ++r) {
        const DraftSlot &slot = draft[r];
        if (!slot.active())
            continue;
        buf->ops.insert(buf->ops.end(), slot.ops.begin(),
                        slot.ops.end());
        buf->slots.push_back({static_cast<uint32_t>(buf->ops.size()), r,
                              slot.kind});
        buf->activeWords[word_base + r / 64] |= uint64_t{1} << (r % 64);
    }
    buf->slotEnd.push_back(static_cast<uint32_t>(buf->slots.size()));
    buf->moveEnd.push_back(buf->moves.size());
}

LeafSchedule
ScheduleBuilder::finish()
{
    if (stepOpen)
        panic("ScheduleBuilder: finish with a step still open");
    if (!buf)
        panic("ScheduleBuilder: finish called twice");
    // Schedules are built once and read many times (and possibly cached
    // process-wide); return the excess growth capacity to the allocator.
    buf->slots.shrink_to_fit();
    buf->slotEnd.shrink_to_fit();
    buf->ops.shrink_to_fit();
    buf->moveEnd.shrink_to_fit();
    buf->activeWords.shrink_to_fit();
    return LeafSchedule(*mod, std::move(buf));
}

MoveAnnotator::MoveAnnotator(LeafSchedule &sched)
    : buf(&sched.mutableBuffer())
{
    buf->moves.clear();
    buf->moveEnd.clear();
}

void
MoveAnnotator::finish()
{
    if (buf->moveEnd.size() != buf->slotEnd.size())
        panic("MoveAnnotator: sealed step count does not match the "
              "schedule");
}

} // namespace msq
