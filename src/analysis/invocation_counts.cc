#include "analysis/invocation_counts.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"

namespace msq {

InvocationCountAnalysis::InvocationCountAnalysis(const Program &prog,
                                                 DiagnosticEngine *diags)
    : prog(&prog), counts(prog.numModules(), 0)
{
    // Top-down: callers before callees.
    auto order = prog.bottomUpOrder();
    std::reverse(order.begin(), order.end());
    counts[prog.entry()] = 1;
    for (ModuleId id : order) {
        const Module &mod = prog.module(id);
        for (uint32_t i = 0; i < mod.numOps(); ++i) {
            const Operation &op = mod.op(i);
            if (!op.isCall())
                continue;
            bool clipped = false;
            counts[op.callee] = satAdd(
                counts[op.callee], satMul(counts[id], op.repeat, clipped),
                clipped);
            if (!clipped)
                continue;
            saturated_ = true;
            if (diags != nullptr) {
                diags->warning(
                    DiagCode::BoundRepeatOverflow,
                    csprintf("invocation count of '%s' saturated at "
                             "2^64-1 (caller runs %llu time(s), call "
                             "repeat %llu); downstream aggregates are "
                             "lower bounds",
                             prog.module(op.callee).name().c_str(),
                             static_cast<unsigned long long>(counts[id]),
                             static_cast<unsigned long long>(op.repeat)),
                    DiagContext{mod.name(), i, op.line});
            }
        }
    }
}

uint64_t
InvocationCountAnalysis::invocations(ModuleId id) const
{
    if (id >= counts.size())
        panic("InvocationCountAnalysis: module id out of range");
    return counts[id];
}

} // namespace msq
