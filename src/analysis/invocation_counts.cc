#include "analysis/invocation_counts.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/saturate.hh"

namespace msq {

InvocationCountAnalysis::InvocationCountAnalysis(const Program &prog)
    : prog(&prog), counts(prog.numModules(), 0)
{
    // Top-down: callers before callees.
    auto order = prog.bottomUpOrder();
    std::reverse(order.begin(), order.end());
    counts[prog.entry()] = 1;
    for (ModuleId id : order) {
        const Module &mod = prog.module(id);
        for (const auto &op : mod.ops()) {
            if (!op.isCall())
                continue;
            counts[op.callee] = satAdd(
                counts[op.callee], satMul(counts[id], op.repeat));
        }
    }
}

uint64_t
InvocationCountAnalysis::invocations(ModuleId id) const
{
    if (id >= counts.size())
        panic("InvocationCountAnalysis: module id out of range");
    return counts[id];
}

} // namespace msq
