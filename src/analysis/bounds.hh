/**
 * @file
 * Static makespan lower bounds (DESIGN.md §12).
 *
 * The paper evaluates RCP against LPFS but never against *optimal*; this
 * analysis computes, per module, a certified lower bound on the makespan
 * of ANY valid schedule, so schedule quality can be stated as an
 * optimality gap (makespan / lower bound >= 1) and a schedule shorter
 * than its bound can be rejected as corrupt (verify/bound_checker.hh,
 * diagnostic codes B001-B006).
 *
 * Three bound families are computed for leaf modules, all in *compute
 * timesteps* (every valid schedule's cycle count, with or without
 * movement phases, is >= its compute-timestep count):
 *
 *  - critical path: ops on a dependence chain occupy distinct timesteps
 *    (no-cloning serialization, ir/dag.hh), so the longest chain bounds
 *    the step count;
 *  - resource: one timestep touches at most min(k*d, numQubits) qubit
 *    operands (k regions of d operands each — validator invariant S006 —
 *    and no qubit twice per step — S007), so total operand touches
 *    divided by that capacity bounds the step count;
 *  - interval (Fernandez-style, cf. SNIPPETS.md snippet 2): every op
 *    must execute inside its [earliest-start, latest-finish] window
 *    derived from ASAP/ALAP levels at the critical-path length; if the
 *    ops confined to some window demand more step-capacity than the
 *    window holds, the whole schedule must stretch by the excess. The
 *    window pairs examined are endpoint-sampled (soundness does not
 *    depend on which intervals are examined, only tightness does).
 *
 * Leaf bounds deliberately charge no teleport cycles: the communication
 * model masks any teleport whose qubit was last touched >= 4 steps ago
 * (sched/comm.cc), and first fetches are always masked, so there exist
 * leaves whose optimal schedules pay zero movement cycles; a bound that
 * charged them would not be a bound. Teleport/move cycles enter where
 * the cost model charges them deterministically: the hierarchical
 * composition prices non-leaf gates at MultiSimdArch::coarseGateCost
 * (1 or 1+4 cycles) and calls at repeat * (callee bound +
 * MultiSimdArch::callOverhead) — the same per-op cycle costs the coarse
 * scheduler itself uses, composed through the invocation_counts repeat
 * algebra in O(distinct modules).
 */

#ifndef MSQ_ANALYSIS_BOUNDS_HH
#define MSQ_ANALYSIS_BOUNDS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/multi_simd.hh"
#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/** Certified lower bounds on one module's schedule makespan (cycles). */
struct MakespanBounds
{
    uint64_t criticalPath = 0; ///< longest weighted dependence chain
    uint64_t resource = 0;     ///< work / per-step machine capacity
    uint64_t interval = 0;     ///< Fernandez window bound (leaves only)
    bool saturated = false;    ///< repeat algebra clipped at 2^64-1

    /** The strongest (largest) of the families — still a lower bound. */
    uint64_t
    composite() const
    {
        return std::max(criticalPath, std::max(resource, interval));
    }
};

/**
 * Lower-bound the compute-timestep count of any valid schedule of leaf
 * @p mod on @p arch (arch.k is the width budget; pass a width-clamped
 * copy to bound narrower sweep points).
 */
MakespanBounds computeLeafBounds(const Module &mod,
                                 const MultiSimdArch &arch);

/**
 * Hierarchical (whole-program) makespan lower bounds: leaf bounds
 * composed bottom-up through the call graph with the coarse scheduler's
 * own per-op cycle costs, so every module's bound certifiably
 * under-approximates the CoarseScheduler's blackbox lengths for the
 * same (arch, mode).
 */
class MakespanBoundAnalysis
{
  public:
    /**
     * Analyze all modules reachable from @p prog's entry.
     * @param mode communication mode the schedule under test was costed
     *        with (selects the coarse-level gate/call cycle costs).
     * @param diags optional sink for B006 repeat-overflow warnings.
     */
    MakespanBoundAnalysis(const Program &prog, const MultiSimdArch &arch,
                          CommMode mode,
                          DiagnosticEngine *diags = nullptr);

    /** Bounds of one invocation of module @p id (at full width k). */
    const MakespanBounds &bounds(ModuleId id) const;

    /** Composite lower bound of module @p id (at full width k). */
    uint64_t lowerBound(ModuleId id) const { return bounds(id).composite(); }

    /** Composite lower bound of the entry module. */
    uint64_t programLowerBound() const;

    /**
     * Lower bound of module @p id when restricted to @p width regions
     * (bounds every blackbox dimension of the width sweep: the bound is
     * non-increasing in width, the dims curve is non-increasing by the
     * monotone clamp, and each raw length respects its width's bound).
     */
    uint64_t lowerBoundAt(ModuleId id, unsigned width) const;

    /**
     * Region-cycle area lower bound of module @p id: any schedule of
     * the module occupying w regions for len cycles has w * len >= this
     * (the numerator of the width-parametric resource bound).
     */
    uint64_t areaBound(ModuleId id) const;

    /** Did any repeat product clip at 2^64-1 during composition? */
    bool saturated() const { return saturated_; }

  private:
    const Program *prog;
    MultiSimdArch arch;
    CommMode mode;
    std::vector<MakespanBounds> bounds_; ///< indexed by ModuleId
    std::vector<uint64_t> areas_;        ///< indexed by ModuleId
    bool saturated_ = false;
};

} // namespace msq

#endif // MSQ_ANALYSIS_BOUNDS_HH
