#include "analysis/schedule_summary.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"

namespace msq {

uint64_t
ResourceSummary::computeCycles() const
{
    if (saturated)
        return 0;
    if (serialCycles < commCycles)
        panic("ResourceSummary: commCycles exceeds serialCycles");
    return serialCycles - commCycles;
}

double
ResourceSummary::meanRegionOccupancy() const
{
    if (activeRegionSteps == 0)
        return 0.0;
    return static_cast<double>(operandTouches) /
           static_cast<double>(activeRegionSteps);
}

double
ResourceSummary::commFraction() const
{
    if (serialCycles == 0)
        return 0.0;
    return static_cast<double>(commCycles) /
           static_cast<double>(serialCycles);
}

uint64_t
ResourceSummary::occupancySteps() const
{
    uint64_t total = 0;
    for (uint64_t count : occupancy)
        total = satAdd(total, count);
    return total;
}

const std::vector<uint64_t> &
ResourceSummary::occupancyBounds()
{
    // Powers of two up to the paper's largest machine (k = 128, Fig. 9);
    // wider steps land in the overflow bucket.
    static const std::vector<uint64_t> bounds = {1, 2, 4, 8,
                                                 16, 32, 64, 128};
    return bounds;
}

size_t
ResourceSummary::numOccupancyBuckets()
{
    return occupancyBounds().size() + 1;
}

size_t
ResourceSummary::occupancyBucket(uint64_t active_regions)
{
    const auto &bounds = occupancyBounds();
    return static_cast<size_t>(
        std::upper_bound(bounds.begin(), bounds.end(),
                         active_regions == 0 ? 0 : active_regions - 1) -
        bounds.begin());
}

std::string
ResourceSummary::occupancyLabel(size_t index)
{
    const auto &bounds = occupancyBounds();
    if (index >= bounds.size())
        return ">" + std::to_string(bounds.back());
    if (index == 0)
        return "0-" + std::to_string(bounds[0]);
    uint64_t lo = bounds[index - 1] + 1;
    uint64_t hi = bounds[index];
    if (lo == hi)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

namespace {

/**
 * Streaming fold of one annotated leaf schedule. Every counter is
 * bounded by the materialized buffer's element counts, so plain 64-bit
 * arithmetic cannot overflow here; saturation only enters at the
 * composition level where repeat products multiply these values.
 */
class SummarySink : public ScheduleSink
{
  public:
    /** @param cost topology cost model for multi-core folds; null keeps
     * the flat machine's historical per-step formula bit-for-bit. */
    explicit SummarySink(uint64_t epr_bandwidth,
                         const MovePhaseCostModel *cost = nullptr)
        : bw(epr_bandwidth), cost(cost)
    {
        sum.occupancy.assign(ResourceSummary::numOccupancyBuckets(), 0);
    }

    void
    beginSchedule(const LeafSchedule &sched) override
    {
        mod = &sched.module();
    }

    void
    beginStep(const TimestepView & /*step*/) override
    {
        stepBlocking = 0;
        stepHasLocal = false;
    }

    void
    slot(const RegionSlotView &slot) override
    {
        uint64_t operands = 0;
        for (uint32_t op_index : slot.ops()) {
            ++sum.gateOps;
            operands += mod->op(op_index).operands.size();
        }
        // Mirror the annotator: a region counts as active only when it
        // touches operands this step (validated gates always do).
        if (operands > 0) {
            ++sum.activeRegionSteps;
            sum.operandTouches += operands;
            sum.peakRegionOccupancy =
                std::max(sum.peakRegionOccupancy, operands);
        }
    }

    void
    move(const Move &move) override
    {
        if (move.isLocal()) {
            ++sum.localMoves;
            stepHasLocal = true;
        } else {
            ++sum.teleportMoves;
            if (cost && cost->interCore(move))
                ++sum.interCoreTeleports;
            if (move.blocking) {
                ++sum.blockingTeleports;
                ++stepBlocking;
            }
        }
    }

    void
    endStep(const TimestepView &step) override
    {
        // Movement-phase cost. On the flat machine, recomputed from
        // this pass's own move classification (arch/schedule.cc
        // movePhaseCycles semantics): blocking teleports cost full
        // 4-cycle phases, serialized by a finite EPR bandwidth; a
        // local-only phase costs one cycle. Multi-core phases route
        // through the shared MovePhaseCostModel — the same fold
        // CommStats::totalCycles uses, which E001 checks.
        if (cost) {
            MoveSpan m = step.moves();
            sum.commCycles += cost->cycles(m.begin(), m.end());
            if (stepBlocking > 0)
                ++sum.stepsWithBlockingMove;
            else if (stepHasLocal)
                ++sum.stepsWithOnlyLocalMoves;
        } else if (stepBlocking > 0) {
            ++sum.stepsWithBlockingMove;
            uint64_t phases =
                bw == unbounded ? 1 : (stepBlocking + bw - 1) / bw;
            sum.commCycles += phases * MultiSimdArch::teleportCycles;
        } else if (stepHasLocal) {
            ++sum.stepsWithOnlyLocalMoves;
            sum.commCycles += MultiSimdArch::localMoveCycles;
        }
        sum.peakBlockingMovesPerStep =
            std::max(sum.peakBlockingMovesPerStep, stepBlocking);

        const uint64_t active = step.activeRegions();
        sum.peakActiveRegions = std::max(sum.peakActiveRegions, active);
        ++sum.occupancy[ResourceSummary::occupancyBucket(active)];
        ++steps;
    }

    void
    endSchedule() override
    {
        sum.serialCycles = steps + sum.commCycles;
    }

    ResourceSummary take() { return std::move(sum); }

  private:
    const Module *mod = nullptr;
    uint64_t bw;
    const MovePhaseCostModel *cost;
    ResourceSummary sum;
    uint64_t steps = 0;
    uint64_t stepBlocking = 0;
    bool stepHasLocal = false;
};

} // anonymous namespace

ResourceSummary
summarizeLeafSchedule(const LeafSchedule &sched, uint64_t epr_bandwidth)
{
    if (epr_bandwidth == 0)
        panic("summarizeLeafSchedule: EPR bandwidth of 0 cannot move "
              "anything; MultiSimdArch::validate() should have rejected "
              "this configuration");
    SummarySink sink(epr_bandwidth);
    sched.stream(sink);
    return sink.take();
}

ResourceSummary
summarizeLeafSchedule(const LeafSchedule &sched, const MultiSimdArch &arch)
{
    if (!arch.topology.multiCore())
        return summarizeLeafSchedule(sched, arch.eprBandwidth);
    MovePhaseCostModel cost(arch);
    SummarySink sink(arch.eprBandwidth, &cost);
    sched.stream(sink);
    return sink.take();
}

ScheduleSummaryAnalysis::ScheduleSummaryAnalysis(
    const Program &prog, CommMode mode, const LeafSummaryFn &leaf_summary,
    DiagnosticEngine *diags)
    : prog(&prog), mode(mode), order(prog.bottomUpOrder()),
      summaries(prog.numModules())
{
    const uint64_t gate_cost = MultiSimdArch::coarseGateCost(mode);
    const uint64_t gate_comm = gate_cost - MultiSimdArch::gateCycles;
    const uint64_t call_oh = MultiSimdArch::callOverhead(mode);
    const size_t buckets = ResourceSummary::numOccupancyBuckets();

    // Callees precede callers in `order`, so one pass suffices.
    for (ModuleId id : order) {
        const Module &mod = prog.module(id);
        if (mod.isLeaf()) {
            ResourceSummary leaf = leaf_summary(mod, id);
            if (leaf.occupancy.size() != buckets)
                leaf.occupancy.resize(buckets, 0);
            saturated_ |= leaf.saturated;
            summaries[id] = std::move(leaf);
            continue;
        }

        ResourceSummary s;
        s.occupancy.assign(buckets, 0);
        bool sat = false;
        for (size_t i = 0; i < mod.numOps(); ++i) {
            const Operation &op = mod.op(i);
            if (!op.isCall()) {
                s.gateOps = satAdd(s.gateOps, 1, sat);
                s.serialCycles = satAdd(s.serialCycles, gate_cost, sat);
                s.commCycles = satAdd(s.commCycles, gate_comm, sat);
                continue;
            }

            const ResourceSummary &c = summaries[op.callee];
            const uint64_t r = op.repeat;
            // Track whether *this call site's* products clip, so the
            // warning lands on the line that overflowed (B006 idiom).
            bool site = false;
            s.gateOps = satAdd(s.gateOps, satMul(r, c.gateOps, site),
                               site);
            s.serialCycles = satAdd(
                s.serialCycles,
                satMul(r, satAdd(c.serialCycles, call_oh, site), site),
                site);
            s.commCycles = satAdd(
                s.commCycles,
                satMul(r, satAdd(c.commCycles, call_oh, site), site),
                site);
            s.teleportMoves = satAdd(
                s.teleportMoves, satMul(r, c.teleportMoves, site), site);
            s.blockingTeleports =
                satAdd(s.blockingTeleports,
                       satMul(r, c.blockingTeleports, site), site);
            s.localMoves = satAdd(s.localMoves,
                                  satMul(r, c.localMoves, site), site);
            s.stepsWithBlockingMove =
                satAdd(s.stepsWithBlockingMove,
                       satMul(r, c.stepsWithBlockingMove, site), site);
            s.stepsWithOnlyLocalMoves =
                satAdd(s.stepsWithOnlyLocalMoves,
                       satMul(r, c.stepsWithOnlyLocalMoves, site), site);
            s.activeRegionSteps =
                satAdd(s.activeRegionSteps,
                       satMul(r, c.activeRegionSteps, site), site);
            s.operandTouches =
                satAdd(s.operandTouches,
                       satMul(r, c.operandTouches, site), site);
            s.interCoreTeleports =
                satAdd(s.interCoreTeleports,
                       satMul(r, c.interCoreTeleports, site), site);
            s.callInvocations = satAdd(
                s.callInvocations,
                satMul(r, satAdd(c.callInvocations, 1, site), site),
                site);
            for (size_t b = 0; b < buckets; ++b) {
                s.occupancy[b] =
                    satAdd(s.occupancy[b],
                           satMul(r, c.occupancy[b], site), site);
            }
            s.peakRegionOccupancy =
                std::max(s.peakRegionOccupancy, c.peakRegionOccupancy);
            s.peakBlockingMovesPerStep =
                std::max(s.peakBlockingMovesPerStep,
                         c.peakBlockingMovesPerStep);
            s.peakActiveRegions =
                std::max(s.peakActiveRegions, c.peakActiveRegions);

            if (site && diags != nullptr) {
                diags->warning(
                    DiagCode::EstimateSaturated,
                    csprintf("summary of call to '%s' (repeat %llu) "
                             "saturated at 2^64-1; dependent estimate "
                             "fields are poisoned, exactness cannot be "
                             "verified",
                             prog.module(op.callee).name().c_str(),
                             static_cast<unsigned long long>(r)),
                    DiagContext{mod.name(),
                                static_cast<uint32_t>(i)});
            }
            sat |= site;
            sat |= c.saturated;
        }
        s.saturated = sat;
        saturated_ |= sat;
        summaries[id] = std::move(s);
    }
}

const ResourceSummary &
ScheduleSummaryAnalysis::summary(ModuleId id) const
{
    if (id >= summaries.size() || summaries[id].occupancy.empty())
        panic("ScheduleSummaryAnalysis: module not analyzed");
    return summaries[id];
}

const ResourceSummary &
ScheduleSummaryAnalysis::programSummary() const
{
    return summary(prog->entry());
}

ResourceSummary
ScheduleSummaryAnalysis::localContribution(ModuleId id) const
{
    const Module &mod = prog->module(id);
    if (mod.isLeaf())
        return summary(id);

    const uint64_t gate_cost = MultiSimdArch::coarseGateCost(mode);
    const uint64_t gate_comm = gate_cost - MultiSimdArch::gateCycles;
    const uint64_t call_oh = MultiSimdArch::callOverhead(mode);

    ResourceSummary s;
    s.occupancy.assign(ResourceSummary::numOccupancyBuckets(), 0);
    bool sat = false;
    for (const Operation &op : mod.ops()) {
        if (!op.isCall()) {
            s.gateOps = satAdd(s.gateOps, 1, sat);
            s.serialCycles = satAdd(s.serialCycles, gate_cost, sat);
            s.commCycles = satAdd(s.commCycles, gate_comm, sat);
            continue;
        }
        // The flush overhead around a call belongs to the caller; the
        // callee's body is someone else's local contribution.
        s.serialCycles = satAdd(s.serialCycles,
                                satMul(op.repeat, call_oh, sat), sat);
        s.commCycles = satAdd(s.commCycles,
                              satMul(op.repeat, call_oh, sat), sat);
        s.callInvocations = satAdd(s.callInvocations, op.repeat, sat);
    }
    s.saturated = sat;
    return s;
}

} // namespace msq
