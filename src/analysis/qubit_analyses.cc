#include "analysis/qubit_analyses.hh"

#include <numeric>
#include <unordered_map>

#include "ir/dag.hh"
#include "ir/gate.hh"

namespace msq {

namespace {

bool
isPrepGate(GateKind kind)
{
    return kind == GateKind::PrepZ || kind == GateKind::PrepX;
}

/**
 * Backward liveness over the dependence DAG. A prep is a definition and
 * kills its operand; every other gate (measurement included) reads its
 * operands; a call reads exactly the arguments its callee transitively
 * uses. Unknown callees (invalid id, unanalyzed) read everything.
 */
class LivenessProblem : public DataflowProblem
{
  public:
    LivenessProblem(const Program &prog,
                    const std::vector<ModuleLiveness> &mods)
        : prog(prog), mods(mods)
    {}

    DataflowDirection direction() const override
    {
        return DataflowDirection::Backward;
    }

    void
    transfer(const Module &mod, uint32_t op_index,
             QubitSet &state) const override
    {
        (void)mod;
        const Operation &op = mod.op(op_index);
        if (op.isCall()) {
            const ModuleLiveness *callee =
                op.callee < prog.numModules() ? &mods[op.callee] : nullptr;
            for (size_t j = 0; j < op.operands.size(); ++j) {
                bool uses = !callee || !callee->analyzed ||
                            j >= callee->paramUsed.size() ||
                            callee->paramUsed[j];
                if (uses)
                    state.set(op.operands[j]);
            }
        } else if (isPrepGate(op.kind)) {
            for (QubitId q : op.operands)
                state.reset(q);
        } else {
            for (QubitId q : op.operands)
                state.set(q);
        }
    }

  private:
    const Program &prog;
    const std::vector<ModuleLiveness> &mods;
};

/**
 * Forward may-measured state. Measurement sets, preparation clears, a
 * call applies its callee's per-parameter end-state summary. The
 * boundary is empty: parameters are assumed clean on entry, and the
 * caller checks its arguments against the callee's useBeforePrep
 * summary instead.
 */
class MayMeasuredProblem : public DataflowProblem
{
  public:
    MayMeasuredProblem(const Program &prog,
                       const std::vector<MeasurementDominance::Summary> &sums)
        : prog(prog), sums(sums)
    {}

    DataflowDirection direction() const override
    {
        return DataflowDirection::Forward;
    }

    void
    transfer(const Module &mod, uint32_t op_index,
             QubitSet &state) const override
    {
        (void)mod;
        const Operation &op = mod.op(op_index);
        if (op.isCall()) {
            const MeasurementDominance::Summary *callee =
                op.callee < prog.numModules() ? &sums[op.callee] : nullptr;
            for (size_t j = 0; j < op.operands.size(); ++j) {
                QubitId q = op.operands[j];
                if (!callee || !callee->analyzed || j >= callee->end.size()) {
                    // Unknown callee: assume it re-prepares, matching
                    // the verifier's conservative V009 semantics.
                    state.reset(q);
                    continue;
                }
                switch (callee->end[j]) {
                  case MeasurementDominance::EndState::Measured:
                    state.set(q);
                    break;
                  case MeasurementDominance::EndState::Prepared:
                    state.reset(q);
                    break;
                  case MeasurementDominance::EndState::Untouched:
                    break;
                }
            }
        } else if (isMeasureGate(op.kind)) {
            for (QubitId q : op.operands)
                state.set(q);
        } else if (isPrepGate(op.kind)) {
            for (QubitId q : op.operands)
                state.reset(q);
        }
        // Any other gate leaves the measured state unchanged; using a
        // measured qubit is the *violation*, detected from the before
        // state, not a state change.
    }

  private:
    const Program &prog;
    const std::vector<MeasurementDominance::Summary> &sums;
};

} // anonymous namespace

LivenessAnalysis
LivenessAnalysis::analyze(const Program &prog)
{
    LivenessAnalysis result;
    result.modules_.resize(prog.numModules());
    std::vector<ModuleId> order = acyclicBottomUpOrder(prog, &result.cyclic_);
    result.valid_ = !result.cyclic_ && !order.empty();

    LivenessProblem problem(prog, result.modules_);
    for (ModuleId m : order) {
        const Module &mod = prog.module(m);
        ModuleLiveness &ml = result.modules_[m];
        ml.ranges.assign(mod.numQubits(), {});
        ml.locallyReferenced.assign(mod.numQubits(), 0);
        ml.paramUsed.assign(mod.numParams(), 0);

        DepDag dag = DepDag::build(mod);
        DataflowResult solved = solveDataflow(mod, dag, problem);
        // Backward problem: after[] holds the state before the op in
        // program order, i.e. live-in.
        ml.liveIn = std::move(solved.after);

        for (uint32_t i = 0; i < mod.numOps(); ++i) {
            const Operation &op = mod.op(i);
            const ModuleLiveness *callee =
                op.isCall() && op.callee < prog.numModules()
                    ? &result.modules_[op.callee]
                    : nullptr;
            for (size_t j = 0; j < op.operands.size(); ++j) {
                QubitId q = op.operands[j];
                if (q >= mod.numQubits())
                    continue; // malformed; the verifier reports V002
                ml.locallyReferenced[q] = 1;
                bool effective = true;
                if (op.isCall())
                    effective = !callee || !callee->analyzed ||
                                j >= callee->paramUsed.size() ||
                                callee->paramUsed[j];
                if (!effective)
                    continue;
                if (!ml.ranges[q].used) {
                    ml.ranges[q].used = true;
                    ml.ranges[q].firstUse = i;
                }
                ml.ranges[q].lastUse = i;
            }
        }
        for (size_t p = 0; p < mod.numParams(); ++p)
            ml.paramUsed[p] = ml.ranges[p].used;
        ml.analyzed = true;
    }
    return result;
}

MeasurementDominance
MeasurementDominance::analyze(const Program &prog)
{
    MeasurementDominance result;
    result.summaries_.resize(prog.numModules());
    bool cyclic = false;
    std::vector<ModuleId> order = acyclicBottomUpOrder(prog, &cyclic);
    result.valid_ = !cyclic && !order.empty();

    MayMeasuredProblem problem(prog, result.summaries_);
    for (ModuleId m : order) {
        const Module &mod = prog.module(m);
        Summary &sum = result.summaries_[m];
        sum.useBeforePrep.assign(mod.numParams(), 0);
        sum.end.assign(mod.numParams(), EndState::Untouched);

        DepDag dag = DepDag::build(mod);
        DataflowResult solved = solveDataflow(mod, dag, problem);

        // Sequential walk for facts the bitset solve cannot carry: the
        // *origin* of a measured bit (local measure vs. call) and the
        // per-parameter summary states. Per-qubit facts are exact in a
        // sequential walk because ops on one qubit are totally ordered.
        std::vector<char> measuredByCall(mod.numQubits(), 0);
        std::vector<char> holdsEntry(mod.numQubits(), 0);
        std::vector<EndState> effect(mod.numQubits(), EndState::Untouched);
        for (size_t p = 0; p < mod.numParams(); ++p)
            holdsEntry[p] = 1;

        for (uint32_t i = 0; i < mod.numOps(); ++i) {
            const Operation &op = mod.op(i);
            if (op.isCall()) {
                const Summary *callee =
                    op.callee < prog.numModules() &&
                            result.summaries_[op.callee].analyzed
                        ? &result.summaries_[op.callee]
                        : nullptr;
                for (size_t j = 0; j < op.operands.size(); ++j) {
                    QubitId q = op.operands[j];
                    if (q >= mod.numQubits())
                        continue;
                    bool known = callee && j < callee->end.size();
                    // Violations visible at this call site: a possibly
                    // measured argument handed to a callee that uses it
                    // before re-preparing...
                    if (known && callee->useBeforePrep[j] &&
                        solved.before[i].test(q))
                        result.violations_.push_back({m, i, q, true});
                    // ...or a repeated call whose iteration N+1 re-uses
                    // what iteration N left measured.
                    else if (known && callee->useBeforePrep[j] &&
                             op.repeat > 1 &&
                             callee->end[j] == EndState::Measured)
                        result.violations_.push_back({m, i, q, true});
                    if (holdsEntry[q] && known && callee->useBeforePrep[j])
                        if (q < mod.numParams())
                            sum.useBeforePrep[q] = 1;
                    if (!known) {
                        holdsEntry[q] = 0;
                        measuredByCall[q] = 0;
                        effect[q] = EndState::Prepared;
                        continue;
                    }
                    switch (callee->end[j]) {
                      case EndState::Measured:
                        holdsEntry[q] = 0;
                        measuredByCall[q] = 1;
                        effect[q] = EndState::Measured;
                        break;
                      case EndState::Prepared:
                        holdsEntry[q] = 0;
                        measuredByCall[q] = 0;
                        effect[q] = EndState::Prepared;
                        break;
                      case EndState::Untouched:
                        break;
                    }
                }
            } else if (isMeasureGate(op.kind)) {
                // Measuring an already-measured qubit is legal (mirrors
                // verifier V009); it just refreshes the state locally.
                for (QubitId q : op.operands) {
                    if (q >= mod.numQubits())
                        continue;
                    holdsEntry[q] = 0;
                    measuredByCall[q] = 0;
                    effect[q] = EndState::Measured;
                }
            } else if (isPrepGate(op.kind)) {
                for (QubitId q : op.operands) {
                    if (q >= mod.numQubits())
                        continue;
                    holdsEntry[q] = 0;
                    measuredByCall[q] = 0;
                    effect[q] = EndState::Prepared;
                }
            } else {
                for (QubitId q : op.operands) {
                    if (q >= mod.numQubits())
                        continue;
                    if (solved.before[i].test(q))
                        result.violations_.push_back(
                            {m, i, q, measuredByCall[q] != 0});
                    if (holdsEntry[q] && q < mod.numParams())
                        sum.useBeforePrep[q] = 1;
                }
            }
        }

        for (size_t p = 0; p < mod.numParams(); ++p)
            sum.end[p] = effect[p];
        sum.analyzed = true;
    }
    return result;
}

EntanglementGroups
EntanglementGroups::analyze(const Program &prog)
{
    EntanglementGroups result;
    result.modules_.resize(prog.numModules());
    bool cyclic = false;
    std::vector<ModuleId> order = acyclicBottomUpOrder(prog, &cyclic);
    result.valid_ = !cyclic && !order.empty();

    for (ModuleId m : order) {
        const Module &mod = prog.module(m);
        ModuleGroups &mg = result.modules_[m];
        mg.parent.resize(mod.numQubits());
        std::iota(mg.parent.begin(), mg.parent.end(), 0);

        auto find = [&mg](QubitId q) {
            while (mg.parent[q] != q) {
                mg.parent[q] = mg.parent[mg.parent[q]]; // path halving
                q = mg.parent[q];
            }
            return q;
        };
        auto unite = [&mg, &find](QubitId a, QubitId b) {
            if (a >= mg.parent.size() || b >= mg.parent.size())
                return;
            QubitId ra = find(a), rb = find(b);
            if (ra != rb)
                mg.parent[rb] = ra;
        };

        for (const Operation &op : mod.ops()) {
            if (!op.isCall()) {
                for (size_t j = 1; j < op.operands.size(); ++j)
                    unite(op.operands[0], op.operands[j]);
                continue;
            }
            const ModuleGroups *callee =
                op.callee < prog.numModules() &&
                        result.modules_[op.callee].analyzed
                    ? &result.modules_[op.callee]
                    : nullptr;
            if (!callee) {
                // Unknown callee: assume it may entangle everything it
                // was handed.
                for (size_t j = 1; j < op.operands.size(); ++j)
                    unite(op.operands[0], op.operands[j]);
                continue;
            }
            // Unite arguments whose parameters the callee connects,
            // possibly through callee locals.
            std::unordered_map<QubitId, QubitId> group_to_arg;
            for (size_t j = 0; j < op.operands.size(); ++j) {
                if (j >= callee->parent.size())
                    break;
                QubitId root = callee->parent[j];
                auto [it, fresh] = group_to_arg.emplace(root, op.operands[j]);
                if (!fresh)
                    unite(it->second, op.operands[j]);
            }
        }

        // Canonicalize so lookups need no unions.
        for (QubitId q = 0; q < mg.parent.size(); ++q)
            mg.parent[q] = find(q);
        mg.analyzed = true;
    }
    return result;
}

bool
EntanglementGroups::sameGroup(ModuleId m, QubitId a, QubitId b) const
{
    if (m >= modules_.size() || !modules_[m].analyzed)
        return false;
    const ModuleGroups &mg = modules_[m];
    if (a >= mg.parent.size() || b >= mg.parent.size())
        return false;
    return mg.parent[a] == mg.parent[b];
}

size_t
EntanglementGroups::numEntangledGroups(ModuleId m) const
{
    if (m >= modules_.size() || !modules_[m].analyzed)
        return 0;
    const ModuleGroups &mg = modules_[m];
    std::unordered_map<QubitId, size_t> sizes;
    for (QubitId root : mg.parent)
        ++sizes[root];
    size_t groups = 0;
    for (const auto &entry : sizes)
        if (entry.second >= 2)
            ++groups;
    return groups;
}

} // namespace msq
