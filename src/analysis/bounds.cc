#include "analysis/bounds.hh"

#include <cstddef>

#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/**
 * Endpoint budget of the interval bound: candidate window starts/ends
 * are sampled down to this many values per side. Any subset of windows
 * yields a sound bound; 64x64 keeps the scan linear-ish in the op count
 * while in practice covering the congested windows (levels cluster).
 */
constexpr size_t maxIntervalEndpoints = 64;

/** Total qubit-operand touches across all ops of @p mod. */
uint64_t
operandTouches(const Module &mod)
{
    uint64_t touches = 0;
    for (const auto &op : mod.ops())
        touches = satAdd(touches, op.operands.size());
    return touches;
}

/**
 * Per-timestep qubit-touch capacity of @p arch on @p mod: k regions of
 * at most d operands each (validator invariant S006), and no qubit is
 * touched twice in one step (S007), so the module's own qubit count
 * caps the step too.
 */
uint64_t
touchCapacity(const Module &mod, const MultiSimdArch &arch)
{
    uint64_t cap = std::min<uint64_t>(satMul(arch.k, arch.d),
                                      mod.numQubits());
    return std::max<uint64_t>(cap, 1);
}

/** Evenly sample @p values (sorted, unique) down to @p budget entries,
 * always keeping the first and last. */
std::vector<uint64_t>
sampleEndpoints(const std::vector<uint64_t> &values, size_t budget)
{
    if (values.size() <= budget)
        return values;
    std::vector<uint64_t> out;
    out.reserve(budget);
    for (size_t i = 0; i < budget; ++i) {
        size_t index = i * (values.size() - 1) / (budget - 1);
        if (out.empty() || out.back() != values[index])
            out.push_back(values[index]);
    }
    return out;
}

/**
 * Fernandez-style interval bound over [earliest-start, latest-finish]
 * windows at unit op weights: for window [a, b), every op whose window
 * is contained in it must run there, so if those ops' operand touches
 * need more than (b - a) steps of capacity, the critical path stretches
 * by the excess.
 */
uint64_t
intervalBound(const DepDag &dag, const Module &mod, uint64_t cp,
              uint64_t cap)
{
    const size_t n = dag.numNodes();
    auto depth = dag.depthFromTop();     // ASAP finish (unit weights)
    auto height = dag.heightToBottom();  // incl. own weight

    // Window of op i in step units: start es = depth - 1, exclusive
    // finish lf = cp - height + 1.
    std::vector<uint64_t> es(n), lf(n);
    std::vector<uint64_t> starts, finishes;
    starts.reserve(n);
    finishes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        es[i] = depth[i] - 1;
        lf[i] = cp - height[i] + 1;
        starts.push_back(es[i]);
        finishes.push_back(lf[i]);
    }
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
    std::sort(finishes.begin(), finishes.end());
    finishes.erase(std::unique(finishes.begin(), finishes.end()),
                   finishes.end());
    starts = sampleEndpoints(starts, maxIntervalEndpoints);
    finishes = sampleEndpoints(finishes, maxIntervalEndpoints);

    uint64_t max_excess = 0;
    std::vector<uint64_t> load(finishes.size());
    for (uint64_t a : starts) {
        std::fill(load.begin(), load.end(), 0);
        // Bucket each op contained past `a` by the first sampled finish
        // that covers it; the prefix sum then gives the load of every
        // window [a, b). Rounding an op up to a later sampled finish
        // only *widens* the window it is counted in — still sound.
        for (size_t i = 0; i < n; ++i) {
            if (es[i] < a)
                continue;
            size_t bucket = std::lower_bound(finishes.begin(),
                                             finishes.end(), lf[i]) -
                            finishes.begin();
            load[bucket] =
                satAdd(load[bucket], mod.op(i).operands.size());
        }
        uint64_t running = 0;
        for (size_t j = 0; j < finishes.size(); ++j) {
            running = satAdd(running, load[j]);
            const uint64_t b = finishes[j];
            if (b <= a)
                continue;
            uint64_t steps = satCeilDiv(running, cap);
            uint64_t span = b - a;
            if (steps > span)
                max_excess = std::max(max_excess, steps - span);
        }
    }
    return satAdd(cp, max_excess);
}

} // anonymous namespace

MakespanBounds
computeLeafBounds(const Module &mod, const MultiSimdArch &arch)
{
    if (!mod.isLeaf())
        panic("computeLeafBounds: '" + mod.name() +
              "' is not a leaf module");
    MakespanBounds bounds;
    if (mod.numOps() == 0)
        return bounds;

    DepDag dag = DepDag::build(mod); // unit weights: 1 step per op
    bounds.criticalPath = dag.criticalPathLength();

    const uint64_t cap = touchCapacity(mod, arch);
    bounds.resource = satCeilDiv(operandTouches(mod), cap);
    bounds.interval = intervalBound(dag, mod, bounds.criticalPath, cap);
    return bounds;
}

MakespanBoundAnalysis::MakespanBoundAnalysis(const Program &prog,
                                             const MultiSimdArch &arch,
                                             CommMode mode,
                                             DiagnosticEngine *diags)
    : prog(&prog), arch(arch), mode(mode),
      bounds_(prog.numModules()), areas_(prog.numModules(), 0)
{
    arch.validate();
    const uint64_t gate_cost = MultiSimdArch::coarseGateCost(mode);
    const uint64_t call_oh = MultiSimdArch::callOverhead(mode);

    for (ModuleId id : prog.bottomUpOrder()) {
        const Module &mod = prog.module(id);
        if (mod.isLeaf()) {
            MakespanBounds b = computeLeafBounds(mod, arch);
            // Region-cycle area: width >= 1 for the bound's length, and
            // every region-step holds at most d operand touches.
            areas_[id] = std::max(b.composite(),
                                  satCeilDiv(operandTouches(mod), arch.d));
            bounds_[id] = b;
            continue;
        }

        MakespanBounds b;
        uint64_t area = 0;
        for (uint32_t i = 0; i < mod.numOps(); ++i) {
            const Operation &op = mod.op(i);
            bool clipped = false;
            if (op.isCall()) {
                b.saturated |= bounds_[op.callee].saturated;
                area = satAdd(
                    area,
                    satMul(op.repeat,
                           satAdd(areas_[op.callee], call_oh, clipped),
                           clipped),
                    clipped);
                satMul(op.repeat,
                       satAdd(bounds_[op.callee].composite(), call_oh,
                              clipped),
                       clipped);
            } else {
                area = satAdd(area, gate_cost, clipped);
            }
            if (!clipped)
                continue;
            b.saturated = true;
            saturated_ = true;
            if (diags != nullptr) {
                const std::string what =
                    op.isCall()
                        ? csprintf("call to '%s' (repeat %llu)",
                                   prog.module(op.callee).name().c_str(),
                                   static_cast<unsigned long long>(
                                       op.repeat))
                        : std::string("gate accumulation");
                diags->warning(
                    DiagCode::BoundRepeatOverflow,
                    "lower-bound composition for " + what +
                        " saturated at 2^64-1; the composed bound "
                        "remains sound but loose",
                    DiagContext{mod.name(), i, op.line});
            }
        }

        DepDag dag =
            DepDag::build(mod, [&](const Operation &op) -> uint64_t {
                if (op.isCall()) {
                    return satMul(
                        op.repeat,
                        satAdd(bounds_[op.callee].composite(), call_oh));
                }
                return gate_cost;
            });
        b.criticalPath = dag.criticalPathLength();
        b.resource = satCeilDiv(area, arch.k);
        bounds_[id] = b;
        areas_[id] = std::max(b.composite(), area);
        saturated_ |= b.saturated;
    }
}

const MakespanBounds &
MakespanBoundAnalysis::bounds(ModuleId id) const
{
    if (id >= bounds_.size())
        panic("MakespanBoundAnalysis: module id out of range");
    return bounds_[id];
}

uint64_t
MakespanBoundAnalysis::programLowerBound() const
{
    return lowerBound(prog->entry());
}

uint64_t
MakespanBoundAnalysis::lowerBoundAt(ModuleId id, unsigned width) const
{
    if (id >= bounds_.size())
        panic("MakespanBoundAnalysis: module id out of range");
    if (width < 1)
        panic("MakespanBoundAnalysis: width must be >= 1");
    const Module &mod = prog->module(id);
    if (mod.isLeaf()) {
        MultiSimdArch sub = arch;
        sub.k = width;
        return computeLeafBounds(mod, sub).composite();
    }
    return std::max(bounds_[id].criticalPath,
                    satCeilDiv(areas_[id], width));
}

uint64_t
MakespanBoundAnalysis::areaBound(ModuleId id) const
{
    if (id >= areas_.size())
        panic("MakespanBoundAnalysis: module id out of range");
    return areas_[id];
}

} // namespace msq
