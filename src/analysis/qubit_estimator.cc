#include "analysis/qubit_estimator.hh"

#include <algorithm>

#include "support/logging.hh"

namespace msq {

QubitEstimator::QubitEstimator(const Program &prog)
    : prog(&prog), demand(prog.numModules(), 0)
{
    for (ModuleId id : prog.bottomUpOrder()) {
        const Module &mod = prog.module(id);
        uint64_t deepest = 0;
        for (const auto &op : mod.ops()) {
            if (!op.isCall())
                continue;
            const Module &callee = prog.module(op.callee);
            uint64_t extra = demand[op.callee] - callee.numParams();
            deepest = std::max(deepest, extra);
        }
        demand[id] = mod.numQubits() + deepest;
    }
}

uint64_t
QubitEstimator::qubitsNeeded(ModuleId id) const
{
    if (id >= demand.size())
        panic("QubitEstimator: module id out of range");
    return demand[id];
}

uint64_t
QubitEstimator::programQubits() const
{
    return qubitsNeeded(prog->entry());
}

} // namespace msq
