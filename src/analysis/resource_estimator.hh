/**
 * @file
 * Hierarchical resource estimation (paper §3.1): total gate counts per
 * module including all transitively called modules and repeat counts,
 * without unrolling. Used to pick flattening thresholds (Fig. 5) and as
 * the sequential-execution baseline for speedup computations.
 */

#ifndef MSQ_ANALYSIS_RESOURCE_ESTIMATOR_HH
#define MSQ_ANALYSIS_RESOURCE_ESTIMATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace msq {

/**
 * Gate-count estimates for every module of a program. Counts saturate at
 * UINT64_MAX (paper-scale benchmarks reach 10^12 operations).
 */
class ResourceEstimator
{
  public:
    /** Analyze all modules reachable from @p prog's entry. */
    explicit ResourceEstimator(const Program &prog);

    /**
     * Total gate operations executed by one invocation of @p id,
     * including all callees and their repeat counts.
     */
    uint64_t totalGates(ModuleId id) const;

    /** Total gates of the whole program (one run of the entry module). */
    uint64_t programGates() const;

    /** Modules reachable from the entry, callees first. */
    const std::vector<ModuleId> &analyzedModules() const { return order; }

    /**
     * Did any total clip at UINT64_MAX? A saturated total is still a
     * sound *lower* bound on the true count, but equality comparisons
     * against other saturated aggregates prove nothing — the estimate
     * checker (verify/estimate_checker.hh) downgrades those to E006.
     */
    bool saturated() const { return saturated_; }

  private:
    const Program *prog;
    std::vector<ModuleId> order;
    std::vector<uint64_t> totals; ///< indexed by ModuleId
    bool saturated_ = false;
};

/**
 * Histogram of per-module gate counts over fixed ranges, reproducing the
 * bucketing of paper Fig. 5.
 */
class ModuleHistogram
{
  public:
    /** The paper's Fig. 5 bucket boundaries (upper bounds, inclusive). */
    static const std::vector<uint64_t> &bucketBounds();

    /** Human-readable label of bucket @p index, e.g. "1k - 5k". */
    static std::string bucketLabel(size_t index);

    /** Build the histogram of @p estimator's module totals. */
    explicit ModuleHistogram(const ResourceEstimator &estimator);

    size_t numBuckets() const { return counts_.size(); }

    /** Number of modules in bucket @p index. */
    uint64_t count(size_t index) const { return counts_.at(index); }

    /** Fraction (0..1) of modules in bucket @p index. */
    double fraction(size_t index) const;

    /**
     * Fraction of modules whose total gate count is <= @p threshold —
     * i.e. the fraction a FlattenPass with that threshold would flatten.
     */
    double fractionAtOrBelow(uint64_t threshold) const;

    uint64_t totalModules() const { return total; }

  private:
    std::vector<uint64_t> counts_;
    std::vector<uint64_t> moduleTotals;
    uint64_t total = 0;
};

} // namespace msq

#endif // MSQ_ANALYSIS_RESOURCE_ESTIMATOR_HH
