/**
 * @file
 * Minimum-qubit estimation (paper Table 1): the number of qubits Q a
 * benchmark needs when run sequentially with maximal reuse of ancilla
 * qubits across function calls.
 *
 * Model: a module's parameters alias caller qubits; its locals (ancilla)
 * live for the duration of one invocation and are reclaimed on return, so
 * sibling calls reuse the same ancilla pool and only the deepest call
 * chain's demand counts:
 *
 *   Q(m) = numQubits(m) + max(0, max over calls c of
 *                                 (Q(callee(c)) - numParams(callee(c))))
 */

#ifndef MSQ_ANALYSIS_QUBIT_ESTIMATOR_HH
#define MSQ_ANALYSIS_QUBIT_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace msq {

/** Per-module minimum-qubit demand with sequential ancilla reuse. */
class QubitEstimator
{
  public:
    /** Analyze all modules reachable from @p prog's entry. */
    explicit QubitEstimator(const Program &prog);

    /** Qubits needed by one sequential invocation of module @p id. */
    uint64_t qubitsNeeded(ModuleId id) const;

    /** Q for the whole program (paper Table 1). */
    uint64_t programQubits() const;

  private:
    const Program *prog;
    std::vector<uint64_t> demand; ///< indexed by ModuleId
};

} // namespace msq

#endif // MSQ_ANALYSIS_QUBIT_ESTIMATOR_HH
