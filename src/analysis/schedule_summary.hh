/**
 * @file
 * Schedule-summary static analysis: paper-scale resource estimation in
 * O(distinct leaves) memory (DESIGN.md §13).
 *
 * The paper reports makespan, speedup and communication numbers at true
 * benchmark parameters (10^7..10^12 gates) that no materialized program
 * schedule can ever hold. This analysis gets the same numbers exactly,
 * without unrolling anything: each distinct leaf schedule is folded once
 * into a compact ResourceSummary by a single streaming ScheduleSink pass
 * (summarizeLeafSchedule), and summaries compose bottom-up through the
 * coarse scheduler's own repeat-count algebra (ScheduleSummaryAnalysis)
 * with saturating arithmetic from support/saturate.hh.
 *
 * The composed numbers are *exact*, not approximate: serialCycles is the
 * cost of sequential composition under the coarse cost model
 * (MultiSimdArch::coarseGateCost / callOverhead — the same per-op costs
 * the CoarseScheduler charges), gateOps reproduces ResourceEstimator's
 * totals, and every movement counter equals what a full unrolled
 * annotated schedule would sum to. verify/estimate_checker.hh turns that
 * claim into a machine-checked theorem (diagnostic codes E001-E006): on
 * programs small enough to materialize, the composition must match the
 * independently computed ground truth field-for-field.
 *
 * Saturation contract: any counter that would exceed 2^64-1 sticks at
 * UINT64_MAX and sets ResourceSummary::saturated — poisoning every
 * dependent field rather than silently capping (B006 interplay; the
 * checker downgrades exactness comparisons of poisoned fields to E006
 * warnings because equality of two clipped values proves nothing).
 */

#ifndef MSQ_ANALYSIS_SCHEDULE_SUMMARY_HH
#define MSQ_ANALYSIS_SCHEDULE_SUMMARY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/**
 * Compact resource footprint of one execution of one module (a single
 * invocation), either folded from a materialized leaf schedule or
 * composed from callee summaries. All counters saturate at UINT64_MAX.
 */
struct ResourceSummary
{
    /** Total gate operations (== ResourceEstimator::totalGates). */
    uint64_t gateOps = 0;

    /**
     * Cycles of one sequential execution: for a leaf, the annotated
     * schedule's totalCycles under the architecture's EPR bandwidth;
     * composed, every gate at coarseGateCost and every call at
     * repeat * (callee.serialCycles + callOverhead). This is the
     * exactly-composable cycle metric; the *parallel* makespan comes
     * from the CoarseScheduler (also O(distinct modules)) and is
     * reported next to the summary, never derived from it.
     */
    uint64_t serialCycles = 0;

    /**
     * The portion of serialCycles spent on movement phases: per-step
     * movePhaseCycles for leaves; the teleport share of coarseGateCost
     * plus call flush overheads for composed levels.
     */
    uint64_t commCycles = 0;

    /** Teleportation moves in fine-grained (leaf) schedules. Each
     * teleport consumes one pre-distributed EPR pair (paper §2.3), so
     * this doubles as EPR-pair consumption; see eprPairs(). Coarse-level
     * gate movement is charged in commCycles but is not itemized as
     * moves (there is no materialized move to count). */
    uint64_t teleportMoves = 0;

    /** Teleports that block the schedule (tight reuse windows). */
    uint64_t blockingTeleports = 0;

    /** Ballistic region<->scratchpad moves. */
    uint64_t localMoves = 0;

    /** Leaf timesteps whose movement phase costs full teleport time. */
    uint64_t stepsWithBlockingMove = 0;

    /** Leaf timesteps whose movement phase costs one local-move cycle. */
    uint64_t stepsWithOnlyLocalMoves = 0;

    /** (region, timestep) pairs executing operations. */
    uint64_t activeRegionSteps = 0;

    /** Total operand qubits across all active (region, timestep) pairs
     * (== CommStats::operandSlots). */
    uint64_t operandTouches = 0;

    /** Most operand qubits any one region touches in one timestep.
     * Composes by max: a peak anywhere is a peak of the whole run. */
    uint64_t peakRegionOccupancy = 0;

    /** Peak blocking teleports in any single timestep (EPR bandwidth
     * demand). Composes by max. */
    uint64_t peakBlockingMovesPerStep = 0;

    /** Most simultaneously active regions in any leaf timestep.
     * Composes by max. */
    uint64_t peakActiveRegions = 0;

    /** Module invocations beneath one run of this module (callees,
     * transitively, with repeats; the run itself excluded). */
    uint64_t callInvocations = 0;

    /** Teleports whose endpoints live on different cores (== CommStats::
     * interCoreTeleports; composes linearly). Always 0 on the flat
     * machine. Serialized last in .msqc v2 records. */
    uint64_t interCoreTeleports = 0;

    /**
     * Histogram of active-regions-per-timestep over every leaf timestep
     * executed (fixed buckets, occupancyBounds(); last bucket is
     * overflow). Bucket counts compose linearly by repeat products, so
     * the whole-program region-utilization profile of a 10^12-gate run
     * costs the same handful of integers as a single leaf's.
     */
    std::vector<uint64_t> occupancy;

    /** Any counter clipped at 2^64-1 (poisons dependent fields). */
    bool saturated = false;

    /** EPR pairs consumed == teleport moves (paper §2.3). */
    uint64_t eprPairs() const { return teleportMoves; }

    /** serialCycles minus commCycles (0 when poisoned by saturation). */
    uint64_t computeCycles() const;

    /** Average operands per active region, operandTouches /
     * activeRegionSteps (0 when no region was ever active). */
    double meanRegionOccupancy() const;

    /** Fraction (0..1) of serialCycles spent on movement phases. */
    double commFraction() const;

    /** Leaf timesteps counted by the occupancy histogram. */
    uint64_t occupancySteps() const;

    /** Upper bounds (inclusive) of the occupancy buckets; one extra
     * overflow bucket follows the last bound. */
    static const std::vector<uint64_t> &occupancyBounds();

    /** Human-readable label of occupancy bucket @p index, e.g. "3-4". */
    static std::string occupancyLabel(size_t index);

    /** occupancyBounds().size() + 1 (the overflow bucket). */
    static size_t numOccupancyBuckets();

    /** Bucket index of @p active_regions (ModuleHistogram idiom). */
    static size_t occupancyBucket(uint64_t active_regions);
};

/**
 * Fold one annotated leaf schedule into its ResourceSummary with a
 * single streaming pass (no random access, no intermediate storage):
 * exactly the statistics CommunicationAnalyzer::annotate reports, plus
 * the occupancy histogram, derived independently from the move/slot
 * streams so the two paths cross-check each other (E001).
 *
 * @param epr_bandwidth EPR channel constraint for movement-phase costs
 *        (must match the bandwidth the schedule was costed with).
 */
ResourceSummary summarizeLeafSchedule(const LeafSchedule &sched,
                                      uint64_t epr_bandwidth = unbounded);

/**
 * Topology-aware fold: movement phases are priced by a
 * MovePhaseCostModel over @p arch and inter-core teleports are counted.
 * Identical to summarizeLeafSchedule(sched, arch.eprBandwidth) on a
 * single-core topology.
 */
ResourceSummary summarizeLeafSchedule(const LeafSchedule &sched,
                                      const MultiSimdArch &arch);

/**
 * Bottom-up whole-program composition of per-module ResourceSummaries
 * through the call graph's repeat algebra — O(distinct modules) time
 * and memory regardless of repeat counts.
 */
class ScheduleSummaryAnalysis
{
  public:
    /** Produces the summary of one leaf module (typically a cache-hit
     * lookup of a schedule folded once). */
    using LeafSummaryFn =
        std::function<ResourceSummary(const Module &, ModuleId)>;

    /**
     * Analyze all modules reachable from @p prog's entry.
     * @param mode communication mode (selects coarse gate/call costs).
     * @param leaf_summary called once per reachable leaf module.
     * @param diags optional sink for E006 saturation warnings (one per
     *        call site whose repeat product first clips).
     */
    ScheduleSummaryAnalysis(const Program &prog, CommMode mode,
                            const LeafSummaryFn &leaf_summary,
                            DiagnosticEngine *diags = nullptr);

    /** Summary of one invocation of module @p id. */
    const ResourceSummary &summary(ModuleId id) const;

    /** Summary of the whole program (one run of the entry module). */
    const ResourceSummary &programSummary() const;

    /** Modules reachable from the entry, callees first. */
    const std::vector<ModuleId> &analyzedModules() const { return order; }

    /** Did any repeat product clip at 2^64-1 during composition? */
    bool saturated() const { return saturated_; }

    /**
     * The contribution of module @p id's *own* operations to one of its
     * invocations — gates at coarse cost plus per-call flush overhead,
     * callee bodies excluded. Σ_m invocations(m) * localContribution(m)
     * over all reachable m equals programSummary() exactly; the checker
     * uses this identity as an independent top-down cross-check (E005).
     */
    ResourceSummary localContribution(ModuleId id) const;

  private:
    const Program *prog;
    CommMode mode;
    std::vector<ModuleId> order;
    std::vector<ResourceSummary> summaries; ///< indexed by ModuleId
    bool saturated_ = false;
};

} // namespace msq

#endif // MSQ_ANALYSIS_SCHEDULE_SUMMARY_HH
