/**
 * @file
 * Generic dataflow framework over the per-module gate DAG.
 *
 * Quantum dataflow domains are sets of qubits (live qubits, possibly
 * measured qubits, untouched parameters, ...), so the framework fixes the
 * lattice to a bitset over a module's qubit table and parameterizes the
 * rest: direction (forward along dependence edges, or backward), meet
 * (union for may-analyses, intersection for must-analyses), boundary
 * state, and the per-operation transfer function.
 *
 * Because the dependence DAG is acyclic (no-cloning forbids fan-out and
 * Scaffold control flow is classically resolved, paper §3.1), a single
 * topological sweep reaches the fixpoint — there is no iteration. Any
 * two operations touching the same qubit are chained in the DAG, so a
 * qubit's state always flows through a direct edge; the meet only
 * reconciles states of *different* qubits arriving from parallel
 * branches.
 *
 * Interprocedural analyses (analysis/qubit_analyses.hh) run module-local
 * problems bottom-up over the call graph, summarizing each callee's
 * effect on its parameters. acyclicBottomUpOrder() provides the
 * callees-first order and detects recursion without panicking — the same
 * acyclicity property the IR verifier checks as V007 — so analysis code
 * can degrade gracefully on malformed input the verifier already
 * reported.
 */

#ifndef MSQ_ANALYSIS_DATAFLOW_HH
#define MSQ_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "ir/dag.hh"
#include "ir/program.hh"

namespace msq {

/** A set of qubits of one module, as a dense bitset. */
class QubitSet
{
  public:
    QubitSet() = default;

    /** The empty set over a universe of @p num_qubits qubits. */
    explicit QubitSet(size_t num_qubits)
        : size_(num_qubits), words((num_qubits + 63) / 64, 0)
    {}

    /** Universe size (number of qubits, set or not). */
    size_t size() const { return size_; }

    void
    set(QubitId q)
    {
        if (q < size_)
            words[q >> 6] |= uint64_t{1} << (q & 63);
    }

    void
    reset(QubitId q)
    {
        if (q < size_)
            words[q >> 6] &= ~(uint64_t{1} << (q & 63));
    }

    bool
    test(QubitId q) const
    {
        if (q >= size_)
            return false;
        return (words[q >> 6] >> (q & 63)) & 1;
    }

    /** Number of qubits in the set. */
    size_t count() const;

    bool
    empty() const
    {
        for (uint64_t w : words)
            if (w != 0)
                return false;
        return true;
    }

    /** this |= other. @return true when this changed. */
    bool uniteWith(const QubitSet &other);

    /** this &= other. @return true when this changed. */
    bool intersectWith(const QubitSet &other);

    bool
    operator==(const QubitSet &other) const
    {
        return size_ == other.size_ && words == other.words;
    }

    bool operator!=(const QubitSet &other) const { return !(*this == other); }

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words;
};

/** Which way state propagates along dependence edges. */
enum class DataflowDirection : uint8_t {
    Forward,  ///< roots to sinks (program order)
    Backward, ///< sinks to roots (reverse program order)
};

/** How states merging at a node are combined. */
enum class DataflowMeet : uint8_t {
    Union,        ///< may-analysis: a qubit is in the set on *some* path
    Intersection, ///< must-analysis: in the set on *every* path
};

/**
 * One dataflow problem: direction, meet, boundary and transfer.
 * Implementations must keep the state's universe size equal to the
 * module's qubit count and must tolerate malformed operations
 * (out-of-range operands) — the verifier owns reporting those.
 */
class DataflowProblem
{
  public:
    virtual ~DataflowProblem() = default;

    virtual DataflowDirection direction() const = 0;

    virtual DataflowMeet meet() const { return DataflowMeet::Union; }

    /** State at boundary nodes (roots when forward, sinks backward). */
    virtual QubitSet
    boundary(const Module &mod) const
    {
        return QubitSet(mod.numQubits());
    }

    /** Apply operation @p op_index's effect to @p state in place. */
    virtual void transfer(const Module &mod, uint32_t op_index,
                          QubitSet &state) const = 0;
};

/**
 * Per-node solution. "before"/"after" are relative to the transfer
 * function: for a forward problem, before[n] is the state on entry to
 * node n (in program order); for a backward problem, before[n] is the
 * state *after* n in program order (the meet over its successors) and
 * after[n] the state before it — e.g. liveness reads live-in from
 * after[n] and live-out from before[n].
 */
struct DataflowResult
{
    std::vector<QubitSet> before;
    std::vector<QubitSet> after;
};

/**
 * Solve @p problem over @p mod's dependence DAG @p dag (which must have
 * been built from @p mod). One topological sweep; exact on DAGs.
 */
DataflowResult solveDataflow(const Module &mod, const DepDag &dag,
                             const DataflowProblem &problem);

/**
 * Module ids in callees-first order over the modules reachable from the
 * entry (entry included, last). Unlike Program::bottomUpOrder(), never
 * panics: recursion sets *@p cyclic and returns the partial order with
 * the in-cycle modules omitted; a missing entry yields an empty order.
 * Call targets pointing outside the program are skipped (the verifier
 * reports them as V005).
 */
std::vector<ModuleId> acyclicBottomUpOrder(const Program &prog,
                                           bool *cyclic = nullptr);

} // namespace msq

#endif // MSQ_ANALYSIS_DATAFLOW_HH
