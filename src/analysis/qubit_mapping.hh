/**
 * @file
 * Qubit-to-core partitioning for multi-core topologies (DESIGN.md §16).
 *
 * Every qubit of a leaf module gets a *home core*: the memory bank it
 * starts in and returns to when evicted. A fetch whose source bank (or
 * source region) lives on a different core than the destination region
 * is an inter-core teleport, routed over the topology's links — so the
 * placement decides how much of the module's communication crosses
 * links at all. The mapping is a deterministic pure function of the
 * module's *structure* and the topology (never of names or angles),
 * exactly the inputs the leaf-cache key captures, which is what lets
 * the communication analyzer, the schedule validator and the M-code
 * comm checker each recompute it independently and agree bit-for-bit.
 *
 * Strategy Greedy (the pass): build the weighted qubit-interaction
 * graph (edge weight = number of gates touching both endpoints), place
 * qubits in descending total-weight order onto the core that maximizes
 * attraction to already-placed neighbors under a balanced capacity
 * ceiling, then run a bounded Kernighan–Lin-style pairwise swap
 * refinement. Strategy RoundRobin (the baseline): qubit q lives on core
 * q mod cores. Both are seed-free and tie-broken by index, so there is
 * nothing nondeterministic to cache or to verify against.
 */

#ifndef MSQ_ANALYSIS_QUBIT_MAPPING_HH
#define MSQ_ANALYSIS_QUBIT_MAPPING_HH

#include <cstdint>
#include <vector>

#include "arch/topology.hh"
#include "ir/program.hh"

namespace msq {

/**
 * Weighted qubit co-occurrence graph of one module: edge (a, b) carries
 * the number of operations whose operand list contains both a and b
 * (calls included — shared call arguments couple qubits exactly like
 * shared gate operands).
 */
class QubitInteractionGraph
{
  public:
    explicit QubitInteractionGraph(const Module &mod);

    unsigned numQubits() const { return n; }

    /** Interaction weight between @p a and @p b (0 when unlinked). */
    uint64_t weight(QubitId a, QubitId b) const;

    /** Sum of @p q's edge weights (how "hot" the qubit is). */
    uint64_t totalWeight(QubitId q) const;

    /** Neighbors of @p q in ascending id order with their weights. */
    const std::vector<std::pair<QubitId, uint64_t>> &
    neighbors(QubitId q) const
    {
        return adj[q];
    }

  private:
    unsigned n;
    std::vector<std::vector<std::pair<QubitId, uint64_t>>> adj;
    std::vector<uint64_t> totals;
};

/**
 * Assign every qubit of @p mod a home core under @p topo's mapping
 * strategy. Size numQubits(), values in [0, topo.cores). On a
 * single-core topology every qubit maps to core 0.
 */
std::vector<unsigned> computeQubitMapping(const Module &mod,
                                          const Topology &topo);

/**
 * The inter-core cut of @p mapping over @p mod's interaction graph:
 * the summed weight of edges whose endpoints live on different cores —
 * the objective the greedy/KL pass minimizes, and the quantity
 * bench_multicore compares mapped-vs-roundrobin.
 */
uint64_t mappingCutWeight(const Module &mod,
                          const std::vector<unsigned> &mapping);

} // namespace msq

#endif // MSQ_ANALYSIS_QUBIT_MAPPING_HH
