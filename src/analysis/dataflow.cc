#include "analysis/dataflow.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

size_t
QubitSet::count() const
{
    size_t total = 0;
    for (uint64_t w : words) {
        while (w) {
            w &= w - 1;
            ++total;
        }
    }
    return total;
}

bool
QubitSet::uniteWith(const QubitSet &other)
{
    bool changed = false;
    size_t n = std::min(words.size(), other.words.size());
    for (size_t i = 0; i < n; ++i) {
        uint64_t merged = words[i] | other.words[i];
        changed |= merged != words[i];
        words[i] = merged;
    }
    return changed;
}

bool
QubitSet::intersectWith(const QubitSet &other)
{
    bool changed = false;
    for (size_t i = 0; i < words.size(); ++i) {
        uint64_t in = i < other.words.size() ? other.words[i] : 0;
        uint64_t merged = words[i] & in;
        changed |= merged != words[i];
        words[i] = merged;
    }
    return changed;
}

DataflowResult
solveDataflow(const Module &mod, const DepDag &dag,
              const DataflowProblem &problem)
{
    size_t n = dag.numNodes();
    if (n != mod.numOps())
        panic(csprintf("solveDataflow: DAG (%zu nodes) does not match "
                       "module %s (%zu ops)",
                       n, mod.name().c_str(), mod.numOps()));

    DataflowResult result;
    result.before.assign(n, QubitSet(mod.numQubits()));
    result.after.assign(n, QubitSet(mod.numQubits()));

    bool forward = problem.direction() == DataflowDirection::Forward;
    std::vector<uint32_t> order = dag.topoOrder();
    if (!forward)
        std::reverse(order.begin(), order.end());

    for (uint32_t node : order) {
        // Meet the states of all dataflow predecessors (DAG preds when
        // forward, succs when backward); boundary nodes take the
        // problem's boundary state.
        const std::vector<uint32_t> &ins =
            forward ? dag.preds(node) : dag.succs(node);
        if (ins.empty()) {
            result.before[node] = problem.boundary(mod);
        } else if (problem.meet() == DataflowMeet::Union) {
            for (uint32_t in : ins)
                result.before[node].uniteWith(result.after[in]);
        } else {
            result.before[node] = result.after[ins[0]];
            for (size_t i = 1; i < ins.size(); ++i)
                result.before[node].intersectWith(result.after[ins[i]]);
        }
        result.after[node] = result.before[node];
        problem.transfer(mod, node, result.after[node]);
    }
    return result;
}

std::vector<ModuleId>
acyclicBottomUpOrder(const Program &prog, bool *cyclic)
{
    if (cyclic)
        *cyclic = false;
    std::vector<ModuleId> order;
    if (prog.entry() == invalidModule ||
        prog.entry() >= prog.numModules())
        return order;

    // Reachability sweep from the entry, following valid callees only.
    std::vector<bool> reachable(prog.numModules(), false);
    std::vector<ModuleId> work{prog.entry()};
    reachable[prog.entry()] = true;
    size_t num_reachable = 1;
    while (!work.empty()) {
        ModuleId m = work.back();
        work.pop_back();
        for (const Operation &op : prog.module(m).ops()) {
            if (!op.isCall() || op.callee >= prog.numModules())
                continue;
            if (!reachable[op.callee]) {
                reachable[op.callee] = true;
                ++num_reachable;
                work.push_back(op.callee);
            }
        }
    }

    // Kahn's algorithm, callees-first: a module is emitted once every
    // distinct callee has been. Modules on a call cycle never drain and
    // are left out of the order.
    std::vector<std::vector<ModuleId>> callers(prog.numModules());
    std::vector<uint32_t> pending(prog.numModules(), 0);
    for (ModuleId m = 0; m < prog.numModules(); ++m) {
        if (!reachable[m])
            continue;
        std::vector<ModuleId> callees;
        for (const Operation &op : prog.module(m).ops()) {
            if (!op.isCall() || op.callee >= prog.numModules())
                continue;
            if (std::find(callees.begin(), callees.end(), op.callee) ==
                callees.end())
                callees.push_back(op.callee);
        }
        pending[m] = callees.size();
        for (ModuleId c : callees)
            callers[c].push_back(m);
    }

    std::vector<ModuleId> ready;
    for (ModuleId m = 0; m < prog.numModules(); ++m)
        if (reachable[m] && pending[m] == 0)
            ready.push_back(m);
    while (!ready.empty()) {
        ModuleId m = ready.back();
        ready.pop_back();
        order.push_back(m);
        for (ModuleId caller : callers[m])
            if (--pending[caller] == 0)
                ready.push_back(caller);
    }

    if (order.size() < num_reachable && cyclic)
        *cyclic = true;
    return order;
}

} // namespace msq
