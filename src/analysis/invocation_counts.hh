/**
 * @file
 * Hierarchical invocation counting: how many times each module executes
 * in one run of the program, with repeat-counted calls multiplied
 * through the call graph. Used to weight per-module statistics (gate
 * mix, movement traffic) into whole-program aggregates without
 * unrolling.
 *
 * All arithmetic saturates at UINT64_MAX instead of wrapping. Paper
 * benchmarks reach 10^12 gates, and nested repeat loops can push the
 * invocation product past 2^64; a saturated count is still a sound
 * *lower* bound on the true count, so downstream aggregates degrade
 * gracefully — but silently, which is why callers that care (the
 * makespan bound composition, msq-verify) can pass a DiagnosticEngine
 * to receive a line-numbered B006 warning at the call site where the
 * product first clipped.
 */

#ifndef MSQ_ANALYSIS_INVOCATION_COUNTS_HH
#define MSQ_ANALYSIS_INVOCATION_COUNTS_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/** Per-module execution counts for one program run (saturating). */
class InvocationCountAnalysis
{
  public:
    /**
     * Analyze all modules reachable from @p prog's entry.
     * @param diags optional sink for B006 saturation warnings (one per
     *        call site whose count product clips at UINT64_MAX).
     */
    explicit InvocationCountAnalysis(const Program &prog,
                                     DiagnosticEngine *diags = nullptr);

    /** Times module @p id runs in one program execution (entry = 1). */
    uint64_t invocations(ModuleId id) const;

    /** Did any count saturate at UINT64_MAX? */
    bool saturated() const { return saturated_; }

  private:
    const Program *prog;
    std::vector<uint64_t> counts;
    bool saturated_ = false;
};

} // namespace msq

#endif // MSQ_ANALYSIS_INVOCATION_COUNTS_HH
