/**
 * @file
 * Hierarchical invocation counting: how many times each module executes
 * in one run of the program, with repeat-counted calls multiplied
 * through the call graph. Used to weight per-module statistics (gate
 * mix, movement traffic) into whole-program aggregates without
 * unrolling.
 */

#ifndef MSQ_ANALYSIS_INVOCATION_COUNTS_HH
#define MSQ_ANALYSIS_INVOCATION_COUNTS_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace msq {

/** Per-module execution counts for one program run (saturating). */
class InvocationCountAnalysis
{
  public:
    /** Analyze all modules reachable from @p prog's entry. */
    explicit InvocationCountAnalysis(const Program &prog);

    /** Times module @p id runs in one program execution (entry = 1). */
    uint64_t invocations(ModuleId id) const;

  private:
    const Program *prog;
    std::vector<uint64_t> counts;
};

} // namespace msq

#endif // MSQ_ANALYSIS_INVOCATION_COUNTS_HH
