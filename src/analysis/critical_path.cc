#include "analysis/critical_path.hh"

#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/saturate.hh"

namespace msq {

CriticalPathAnalysis::CriticalPathAnalysis(const Program &prog)
    : prog(&prog), lengths(prog.numModules(), 0)
{
    for (ModuleId id : prog.bottomUpOrder()) {
        const Module &mod = prog.module(id);
        DepDag dag = DepDag::build(mod, [this](const Operation &op) {
            if (op.isCall())
                return satMul(op.repeat, lengths[op.callee]);
            return uint64_t{1};
        });
        lengths[id] = dag.criticalPathLength();
    }
}

uint64_t
CriticalPathAnalysis::criticalPath(ModuleId id) const
{
    if (id >= lengths.size())
        panic("CriticalPathAnalysis: module id out of range");
    return lengths[id];
}

uint64_t
CriticalPathAnalysis::programCriticalPath() const
{
    return criticalPath(prog->entry());
}

} // namespace msq
