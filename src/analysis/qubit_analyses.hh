/**
 * @file
 * Interprocedural client analyses built on the dataflow framework
 * (analysis/dataflow.hh). All three run bottom-up over the call graph,
 * summarizing each module's effect on its parameters so callers can be
 * analyzed without inlining:
 *
 *  - LivenessAnalysis: which qubits are live before every operation and
 *    each qubit's first/last effective use. A call "uses" an argument
 *    only when the callee (transitively) touches the bound parameter, so
 *    a qubit threaded through a chain of calls that never gate it is
 *    recognized as dead — the signal behind lint L007 and the comm
 *    checker's wasted-teleport warning M005.
 *
 *  - MeasurementDominance: is every gate use of a qubit dominated by a
 *    non-measured definition? Refines verifier check V009, which
 *    conservatively assumes any call re-prepares its arguments; here
 *    measurement state flows through call boundaries in both directions
 *    (lint L008 reports the cross-call violations V009 cannot see).
 *
 *  - EntanglementGroups: union-find over multi-qubit gate interactions,
 *    per module, with call arguments united when the callee connects the
 *    bound parameters (possibly through callee locals). Conservative
 *    may-entangle: groups only ever grow.
 *
 * All analyses degrade gracefully on programs the IR verifier would
 * reject (no entry, recursion): valid() turns false and results read as
 * empty rather than panicking.
 */

#ifndef MSQ_ANALYSIS_QUBIT_ANALYSES_HH
#define MSQ_ANALYSIS_QUBIT_ANALYSES_HH

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hh"
#include "ir/program.hh"

namespace msq {

/** First/last effective use of one qubit, as op indices. */
struct LiveRange
{
    bool used = false;     ///< qubit has at least one effective use
    uint32_t firstUse = 0; ///< first op index that effectively uses it
    uint32_t lastUse = 0;  ///< last op index that effectively uses it
};

/** Liveness facts for one module. */
struct ModuleLiveness
{
    bool analyzed = false;

    /** Per qubit: effective-use range. A call site is an effective use
     * of an argument only when the callee transitively uses the bound
     * parameter. */
    std::vector<LiveRange> ranges;

    /** Per op: qubits live immediately before it in program order. */
    std::vector<QubitSet> liveIn;

    /** Per parameter: transitively used by this module (summary). */
    std::vector<char> paramUsed;

    /** Per qubit: appears as an operand of any op, calls included —
     * regardless of whether the callee uses it. */
    std::vector<char> locallyReferenced;
};

/** Interprocedural qubit liveness (see file comment). */
class LivenessAnalysis
{
  public:
    static LivenessAnalysis analyze(const Program &prog);

    /** False when the program has no entry or a recursive call graph. */
    bool valid() const { return valid_; }
    bool cyclic() const { return cyclic_; }

    const ModuleLiveness &module(ModuleId m) const { return modules_.at(m); }

  private:
    bool valid_ = false;
    bool cyclic_ = false;
    std::vector<ModuleLiveness> modules_;
};

/** One use of a qubit that may still be measured. */
struct MeasurementViolation
{
    ModuleId module = invalidModule;
    uint32_t opIndex = 0;
    QubitId qubit = 0;

    /** True when the measurement reaches the use across a call boundary
     * (either direction) — exactly the cases verifier V009 cannot see. */
    bool interprocedural = false;
};

/** Interprocedural measurement dominance (see file comment). */
class MeasurementDominance
{
  public:
    /** Effect of a module on one parameter's measured state. */
    enum class EndState : uint8_t {
        Untouched, ///< measured state passes through unchanged
        Prepared,  ///< definitely not measured on return
        Measured,  ///< definitely measured on return
    };

    /** Per-module summary over its parameters. */
    struct Summary
    {
        bool analyzed = false;

        /** Per param: some sensitive gate touches it while it still
         * holds the caller-provided state (so a measured argument is a
         * violation at the call site). */
        std::vector<char> useBeforePrep;

        std::vector<EndState> end; ///< per param
    };

    static MeasurementDominance analyze(const Program &prog);

    /** False when the program has no entry or a recursive call graph. */
    bool valid() const { return valid_; }
    bool clean() const { return violations_.empty(); }

    const std::vector<MeasurementViolation> &violations() const
    {
        return violations_;
    }

    const Summary &summary(ModuleId m) const { return summaries_.at(m); }

  private:
    bool valid_ = false;
    std::vector<MeasurementViolation> violations_;
    std::vector<Summary> summaries_;
};

/** Interprocedural entanglement-group tracking (see file comment). */
class EntanglementGroups
{
  public:
    static EntanglementGroups analyze(const Program &prog);

    /** False when the program has no entry or a recursive call graph. */
    bool valid() const { return valid_; }

    /** True when @p a and @p b of module @p m may be entangled. */
    bool sameGroup(ModuleId m, QubitId a, QubitId b) const;

    /** Number of groups of module @p m with at least two members. */
    size_t numEntangledGroups(ModuleId m) const;

  private:
    struct ModuleGroups
    {
        bool analyzed = false;
        /** Canonicalized: parent[q] is q's group representative. */
        std::vector<QubitId> parent;
    };

    std::vector<ModuleGroups> modules_;
    bool valid_ = false;
};

} // namespace msq

#endif // MSQ_ANALYSIS_QUBIT_ANALYSES_HH
