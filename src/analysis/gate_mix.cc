#include "analysis/gate_mix.hh"

#include "support/logging.hh"
#include "support/saturate.hh"

namespace msq {

uint64_t
GateMix::count(GateKind kind) const
{
    return counts[static_cast<size_t>(kind)];
}

uint64_t
GateMix::tCount() const
{
    return satAdd(count(GateKind::T), count(GateKind::Tdag));
}

uint64_t
GateMix::twoQubitCount() const
{
    return satAdd(count(GateKind::CNOT), count(GateKind::CZ));
}

uint64_t
GateMix::measurementCount() const
{
    return satAdd(count(GateKind::MeasZ), count(GateKind::MeasX));
}

uint64_t
GateMix::total() const
{
    uint64_t sum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (static_cast<GateKind>(i) == GateKind::Call)
            continue;
        sum = satAdd(sum, counts[i]);
    }
    return sum;
}

GateMixAnalysis::GateMixAnalysis(const Program &prog)
    : prog(&prog), mixes(prog.numModules())
{
    for (ModuleId id : prog.bottomUpOrder()) {
        GateMix &mix = mixes[id];
        for (const auto &op : prog.module(id).ops()) {
            if (op.isCall()) {
                const GateMix &callee = mixes[op.callee];
                for (size_t i = 0; i < mix.counts.size(); ++i) {
                    mix.counts[i] = satAdd(
                        mix.counts[i],
                        satMul(op.repeat, callee.counts[i]));
                }
            } else {
                auto index = static_cast<size_t>(op.kind);
                mix.counts[index] = satAdd(mix.counts[index], 1);
            }
        }
    }
}

const GateMix &
GateMixAnalysis::mix(ModuleId id) const
{
    if (id >= mixes.size())
        panic("GateMixAnalysis: module id out of range");
    return mixes[id];
}

const GateMix &
GateMixAnalysis::programMix() const
{
    return mix(prog->entry());
}

} // namespace msq
