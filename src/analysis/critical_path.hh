/**
 * @file
 * Hierarchical critical-path estimation: the longest dependence chain
 * through a program, treating each call as an indivisible block of its
 * callee's critical path length times its repeat count. This is the
 * "estimated critical path" bound of paper Fig. 6.
 */

#ifndef MSQ_ANALYSIS_CRITICAL_PATH_HH
#define MSQ_ANALYSIS_CRITICAL_PATH_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace msq {

/** Per-module hierarchical critical path lengths (in gate cycles). */
class CriticalPathAnalysis
{
  public:
    /** Analyze all modules reachable from @p prog's entry. */
    explicit CriticalPathAnalysis(const Program &prog);

    /** Critical path (cycles) of one invocation of module @p id. */
    uint64_t criticalPath(ModuleId id) const;

    /** Critical path of the whole program. */
    uint64_t programCriticalPath() const;

  private:
    const Program *prog;
    std::vector<uint64_t> lengths; ///< indexed by ModuleId
};

} // namespace msq

#endif // MSQ_ANALYSIS_CRITICAL_PATH_HH
