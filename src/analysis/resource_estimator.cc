#include "analysis/resource_estimator.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"

namespace msq {

ResourceEstimator::ResourceEstimator(const Program &prog)
    : prog(&prog), order(prog.bottomUpOrder()),
      totals(prog.numModules(), 0)
{
    // Callees precede callers in `order`, so one pass suffices. The
    // sticky flag records whether any total clipped (saturated()).
    for (ModuleId id : order) {
        const Module &mod = prog.module(id);
        uint64_t total = 0;
        for (const auto &op : mod.ops()) {
            if (op.isCall()) {
                total = satAdd(total,
                               satMul(op.repeat, totals[op.callee],
                                      saturated_),
                               saturated_);
            } else {
                total = satAdd(total, 1, saturated_);
            }
        }
        totals[id] = total;
    }
}

uint64_t
ResourceEstimator::totalGates(ModuleId id) const
{
    if (id >= totals.size())
        panic("ResourceEstimator: module id out of range");
    return totals[id];
}

uint64_t
ResourceEstimator::programGates() const
{
    return totalGates(prog->entry());
}

const std::vector<uint64_t> &
ModuleHistogram::bucketBounds()
{
    // Fig. 5 ranges: 0-1k, 1k-5k, 5k-10k, 10k-50k, 50k-100k, 100k-150k,
    // 150k-1M, 1M-2M, 2M-8M, 8M-20M, >20M.
    static const std::vector<uint64_t> bounds = {
        1'000,      5'000,      10'000,     50'000,    100'000,
        150'000,    1'000'000,  2'000'000,  8'000'000, 20'000'000,
    };
    return bounds;
}

std::string
ModuleHistogram::bucketLabel(size_t index)
{
    auto human = [](uint64_t v) -> std::string {
        if (v >= 1'000'000)
            return std::to_string(v / 1'000'000) + "M";
        if (v >= 1'000)
            return std::to_string(v / 1'000) + "k";
        return std::to_string(v);
    };
    const auto &bounds = bucketBounds();
    if (index >= bounds.size())
        return ">" + human(bounds.back());
    if (index == 0)
        return "0 - " + human(bounds[0]);
    return human(bounds[index - 1]) + " - " + human(bounds[index]);
}

ModuleHistogram::ModuleHistogram(const ResourceEstimator &estimator)
    : counts_(bucketBounds().size() + 1, 0)
{
    for (ModuleId id : estimator.analyzedModules()) {
        uint64_t gates = estimator.totalGates(id);
        moduleTotals.push_back(gates);
        const auto &bounds = bucketBounds();
        size_t bucket = std::upper_bound(bounds.begin(), bounds.end(),
                                         gates == 0 ? 0 : gates - 1) -
                        bounds.begin();
        ++counts_[bucket];
        ++total;
    }
}

double
ModuleHistogram::fraction(size_t index) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(count(index)) / static_cast<double>(total);
}

double
ModuleHistogram::fractionAtOrBelow(uint64_t threshold) const
{
    if (total == 0)
        return 0.0;
    uint64_t below = 0;
    for (uint64_t gates : moduleTotals)
        if (gates <= threshold)
            ++below;
    return static_cast<double>(below) / static_cast<double>(total);
}

} // namespace msq
