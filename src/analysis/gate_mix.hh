/**
 * @file
 * Hierarchical gate-mix analysis: how many operations of each gate kind
 * one invocation of a module (or the whole program) executes. Reports
 * the metrics quantum architects actually budget for — T count (the
 * expensive magic-state gate under most QECC schemes), two-qubit-gate
 * count, and measurement count — without unrolling repeat-counted calls.
 */

#ifndef MSQ_ANALYSIS_GATE_MIX_HH
#define MSQ_ANALYSIS_GATE_MIX_HH

#include <array>
#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace msq {

/** Per-kind operation counts (saturating). */
struct GateMix
{
    std::array<uint64_t, numGateKinds> counts{};

    uint64_t count(GateKind kind) const;

    /** T + Tdag: the magic-state budget. */
    uint64_t tCount() const;

    /** CNOT + CZ operations. */
    uint64_t twoQubitCount() const;

    /** MeasZ + MeasX operations. */
    uint64_t measurementCount() const;

    /** All operations. */
    uint64_t total() const;
};

/** Computes the hierarchical gate mix of every reachable module. */
class GateMixAnalysis
{
  public:
    explicit GateMixAnalysis(const Program &prog);

    /** Mix for one invocation of @p id (callees and repeats included). */
    const GateMix &mix(ModuleId id) const;

    /** Mix of the whole program. */
    const GateMix &programMix() const;

  private:
    const Program *prog;
    std::vector<GateMix> mixes;
};

} // namespace msq

#endif // MSQ_ANALYSIS_GATE_MIX_HH
