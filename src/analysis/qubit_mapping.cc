#include "analysis/qubit_mapping.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace msq {

namespace {

/** Pairwise-swap refinement is O(n^2 * degree) per pass; above this
 * qubit count the greedy placement stands alone (the cap is part of
 * the deterministic contract — it depends only on the module). */
constexpr unsigned refinementQubitCap = 512;

/** Bounded number of full swap passes (each pass is monotone in the
 * cut weight, so four passes converge on every practical module). */
constexpr unsigned refinementPasses = 4;

/** Sum of @p q's edge weights into core @p core under @p mapping. */
uint64_t
weightToCore(const QubitInteractionGraph &graph, QubitId q,
             unsigned core, const std::vector<unsigned> &mapping)
{
    uint64_t w = 0;
    for (const auto &[nbr, weight] : graph.neighbors(q))
        if (mapping[nbr] == core)
            w += weight;
    return w;
}

std::vector<unsigned>
greedyMapping(const QubitInteractionGraph &graph, unsigned cores)
{
    const unsigned n = graph.numQubits();
    const uint64_t capacity = (uint64_t(n) + cores - 1) / cores;

    // Hot qubits first: they anchor their neighborhoods, so placing
    // them early gives later qubits a meaningful attraction signal.
    std::vector<QubitId> order(n);
    for (unsigned q = 0; q < n; ++q)
        order[q] = q;
    std::sort(order.begin(), order.end(), [&](QubitId a, QubitId b) {
        uint64_t wa = graph.totalWeight(a);
        uint64_t wb = graph.totalWeight(b);
        if (wa != wb)
            return wa > wb;
        return a < b;
    });

    constexpr unsigned unplaced = std::numeric_limits<unsigned>::max();
    std::vector<unsigned> mapping(n, unplaced);
    std::vector<uint64_t> load(cores, 0);
    for (QubitId q : order) {
        unsigned best = cores;
        uint64_t best_attraction = 0;
        uint64_t best_load = 0;
        for (unsigned c = 0; c < cores; ++c) {
            if (load[c] >= capacity)
                continue;
            uint64_t attraction = 0;
            for (const auto &[nbr, weight] : graph.neighbors(q))
                if (mapping[nbr] == c)
                    attraction += weight;
            // Prefer attraction, then the emptier core, then the
            // lower index — every tiebreak is total, so the placement
            // is a pure function of the interaction graph.
            if (best == cores || attraction > best_attraction ||
                (attraction == best_attraction &&
                 load[c] < best_load)) {
                best = c;
                best_attraction = attraction;
                best_load = load[c];
            }
        }
        if (best == cores)
            panic("greedyMapping: no core has capacity left");
        mapping[q] = best;
        ++load[best];
    }
    return mapping;
}

void
refineMapping(const QubitInteractionGraph &graph,
              std::vector<unsigned> &mapping)
{
    const unsigned n = graph.numQubits();
    if (n > refinementQubitCap)
        return;
    for (unsigned pass = 0; pass < refinementPasses; ++pass) {
        bool improved = false;
        for (QubitId a = 0; a < n; ++a) {
            for (QubitId b = a + 1; b < n; ++b) {
                unsigned ca = mapping[a], cb = mapping[b];
                if (ca == cb)
                    continue;
                // Classic KL swap gain: external minus internal
                // attraction of both endpoints, minus twice their own
                // edge (it stays cut after the swap).
                uint64_t a_in = weightToCore(graph, a, ca, mapping);
                uint64_t a_ex = weightToCore(graph, a, cb, mapping);
                uint64_t b_in = weightToCore(graph, b, cb, mapping);
                uint64_t b_ex = weightToCore(graph, b, ca, mapping);
                int64_t gain =
                    (int64_t(a_ex) - int64_t(a_in)) +
                    (int64_t(b_ex) - int64_t(b_in)) -
                    2 * int64_t(graph.weight(a, b));
                if (gain > 0) {
                    mapping[a] = cb;
                    mapping[b] = ca;
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }
}

} // anonymous namespace

QubitInteractionGraph::QubitInteractionGraph(const Module &mod)
    : n(static_cast<unsigned>(mod.numQubits())), adj(n), totals(n, 0)
{
    std::vector<std::map<QubitId, uint64_t>> weights(n);
    for (const Operation &op : mod.ops()) {
        const auto &operands = op.operands;
        for (size_t i = 0; i < operands.size(); ++i) {
            for (size_t j = i + 1; j < operands.size(); ++j) {
                QubitId a = operands[i], b = operands[j];
                if (a == b || a >= n || b >= n)
                    continue;
                ++weights[a][b];
                ++weights[b][a];
            }
        }
    }
    for (unsigned q = 0; q < n; ++q) {
        adj[q].assign(weights[q].begin(), weights[q].end());
        for (const auto &[nbr, weight] : adj[q])
            totals[q] += weight;
    }
}

uint64_t
QubitInteractionGraph::weight(QubitId a, QubitId b) const
{
    if (a >= n || b >= n)
        return 0;
    const auto &list = adj[a];
    auto it = std::lower_bound(
        list.begin(), list.end(), b,
        [](const std::pair<QubitId, uint64_t> &e, QubitId q) {
            return e.first < q;
        });
    if (it == list.end() || it->first != b)
        return 0;
    return it->second;
}

uint64_t
QubitInteractionGraph::totalWeight(QubitId q) const
{
    return q < n ? totals[q] : 0;
}

std::vector<unsigned>
computeQubitMapping(const Module &mod, const Topology &topo)
{
    const auto n = static_cast<unsigned>(mod.numQubits());
    if (!topo.multiCore())
        return std::vector<unsigned>(n, 0);

    if (topo.mapping == MappingStrategy::RoundRobin) {
        std::vector<unsigned> mapping(n);
        for (unsigned q = 0; q < n; ++q)
            mapping[q] = q % topo.cores;
        return mapping;
    }

    QubitInteractionGraph graph(mod);
    std::vector<unsigned> mapping = greedyMapping(graph, topo.cores);
    refineMapping(graph, mapping);
    return mapping;
}

uint64_t
mappingCutWeight(const Module &mod, const std::vector<unsigned> &mapping)
{
    QubitInteractionGraph graph(mod);
    uint64_t cut = 0;
    for (unsigned q = 0; q < graph.numQubits(); ++q) {
        for (const auto &[nbr, weight] : graph.neighbors(q)) {
            if (nbr <= q)
                continue;
            if (q < mapping.size() && nbr < mapping.size() &&
                mapping[q] != mapping[nbr])
                cut += weight;
        }
    }
    return cut;
}

} // namespace msq
