/**
 * @file
 * Core-affinity region rebind (DESIGN.md §16). The leaf schedulers are
 * topology-agnostic: they place operations into abstract SIMD regions
 * knowing only k and d. On a multi-core topology that leaves the
 * region->core assignment arbitrary, so the qubit-partitioning pass
 * (analysis/qubit_mapping) would lower the interaction cut without
 * lowering actual link traffic — operations would still execute on
 * whatever core their region index happened to land on.
 *
 * applyCoreAffinity() closes that gap as a deterministic post-pass:
 * within each timestep it permutes the op slots onto regions owned by
 * the cores where their operand qubits are homed (majority vote over
 * the same computeQubitMapping() the communication analyzer uses).
 * Permuting slots within a timestep preserves every Multi-SIMD
 * constraint — dependences (timestep order is untouched), SIMD
 * homogeneity and the d bound (slot contents move wholesale), and the
 * k bound (a step never has more slots than regions) — so the rebound
 * schedule validates exactly like the original.
 *
 * On the one-core topology the pass returns its input unchanged
 * (same shared buffer), keeping the flat machine bit-identical.
 */

#ifndef MSQ_SCHED_CORE_AFFINITY_HH
#define MSQ_SCHED_CORE_AFFINITY_HH

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"

namespace msq {

/**
 * Rebind @p sched's region assignment so each timestep's op slots
 * execute on the cores their operand qubits are homed on. Pure function
 * of (module structure, arch) — safe to memoize under leafScheduleKey,
 * which already covers the arch fingerprint.
 *
 * Slots are assigned largest-operand-count first; each takes its
 * highest-vote core with a free region (ties prefer the slot's original
 * core, then the lowest core index), and within that core keeps its
 * original region when free (preserving LPFS path pinning) or takes the
 * lowest free region.
 *
 * @pre @p sched carries no movement annotation (schedulers run this
 *      before the CommunicationAnalyzer); panics otherwise.
 */
LeafSchedule applyCoreAffinity(LeafSchedule sched,
                               const MultiSimdArch &arch);

} // namespace msq

#endif // MSQ_SCHED_CORE_AFFINITY_HH
