/**
 * @file
 * Hierarchical coarse-grained scheduling — paper §4.3, Algorithm 3.
 *
 * Leaf modules are fine-grain scheduled (RCP or LPFS) at several widths
 * between 1 and k, producing *flexible blackbox dimensions* (width,
 * length) per module. Non-leaf modules are then list-scheduled in
 * criticality order: parallelizable blackboxes are packed side-by-side
 * subject to the total-width constraint k, and when packing would exceed
 * k, a width-combination search reshapes the parallel set ("Try all
 * combinations of possible widths ... choose combination with smallest
 * length"). We implement the combination search as a shrink-then-regrow
 * greedy over the monotone width/length trade-off curves, which explores
 * the same space without exponential blowup (see DESIGN.md).
 *
 * Coarse-level costs (paper §4.3): a plain gate has execution cost 1 and
 * movement cost 4 (when communication is modelled); a call costs its
 * blackbox length plus one teleportation cycle of flush overhead per
 * invocation (§3.2), times its repeat count.
 */

#ifndef MSQ_SCHED_COARSE_HH
#define MSQ_SCHED_COARSE_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/multi_simd.hh"
#include "ir/program.hh"
#include "sched/comm.hh"
#include "sched/leaf_cache.hh"
#include "sched/leaf_scheduler.hh"
#include "support/telemetry.hh"

namespace msq {

/** One available shape of a module's schedule. */
struct Blackbox
{
    unsigned width = 1;  ///< SIMD regions occupied
    uint64_t length = 0; ///< cycles
};

/** Scheduling results for one module. */
struct ModuleScheduleInfo
{
    bool analyzed = false; ///< reachable from entry and scheduled
    bool leaf = false;
    /** Available dimensions, strictly increasing width, non-increasing
     * length. */
    std::vector<Blackbox> dims;
    /** Movement statistics of the widest fine-grained schedule (leaves
     * only). */
    CommStats comm;

    /**
     * Provenance of the widest fine-grained schedule (leaves only):
     * Optimal when the scheduler certified a minimum-makespan schedule
     * at that width (its makespan equals the static lower bound — the
     * B-checker's B007 enforces exactly this), Fallback when an
     * OptScheduler ran out of budget, Heuristic otherwise.
     */
    ScheduleProvenance provenance = ScheduleProvenance::Heuristic;

    /** Shortest available length. */
    uint64_t bestLength() const;

    /** Smallest width achieving bestLength(). */
    unsigned bestWidth() const;

    /** Fastest dimension choice with width <= @p max_width (panics when
     * even width 1 is unavailable). */
    const Blackbox &bestWithin(unsigned max_width) const;
};

/** Whole-program schedule summary. */
struct ProgramSchedule
{
    std::vector<ModuleScheduleInfo> modules; ///< indexed by ModuleId
    uint64_t totalCycles = 0;                ///< entry module best length

    const ModuleScheduleInfo &forModule(ModuleId id) const;
};

/** The hierarchical scheduler. */
class CoarseScheduler
{
  public:
    struct Options
    {
        /**
         * Widths at which each module is pre-scheduled. Empty selects
         * powers of two up to k plus k itself (the full 1..k sweep the
         * paper describes is quadratic in k; powers of two preserve the
         * trade-off curve shape at large k, e.g. Fig. 9's k = 128).
         */
        std::vector<unsigned> widths;

        /**
         * Scheduling fan-out: (module x width) leaf tasks and the
         * per-module width sweeps run on this many threads (including
         * the caller). 1 is the exact sequential legacy path; 0 selects
         * the hardware concurrency. Results are bit-identical for every
         * value (DESIGN.md §9 determinism contract).
         */
        unsigned numThreads = 1;

        /**
         * Optional leaf-schedule memoization cache. May be shared
         * across schedulers and runs; null disables memoization.
         */
        std::shared_ptr<LeafScheduleCache> leafCache;

        /**
         * Optional telemetry sink (support/telemetry.hh). When set,
         * schedule() records per-leaf and per-sweep counters and
         * distributions (gate counts, cycle lengths, communication
         * totals, cache traffic) into it — always from the
         * single-threaded merge phases, so every recorded value is
         * thread-count-invariant. Null records nothing.
         */
        MetricsRegistry *metrics = nullptr;
    };

    /**
     * @param arch machine model; arch.k bounds total width.
     * @param leaf_scheduler fine-grained scheduler for leaf modules.
     * @param mode communication model applied to leaf schedules and
     *        coarse-level costs.
     */
    CoarseScheduler(const MultiSimdArch &arch,
                    const LeafScheduler &leaf_scheduler, CommMode mode)
        : CoarseScheduler(arch, leaf_scheduler, mode, Options{})
    {}
    CoarseScheduler(const MultiSimdArch &arch,
                    const LeafScheduler &leaf_scheduler, CommMode mode,
                    Options options);

    /** Schedule every module reachable from @p prog's entry. */
    ProgramSchedule schedule(const Program &prog) const;

    /** The width sweep in effect (after defaulting). */
    const std::vector<unsigned> &widthSweep() const { return widths; }

  private:
    MultiSimdArch arch;
    const LeafScheduler *leafScheduler;
    CommMode mode;
    std::vector<unsigned> widths;
    unsigned numThreads;
    std::shared_ptr<LeafScheduleCache> cache;
    MetricsRegistry *metrics;
    /** Scheduler/arch/mode part of memoization keys (width excluded). */
    std::string cacheKeySuffix;

    /**
     * Fine-grain schedule @p mod at width @p w (through the memoization
     * cache when one is attached). Pure function of its arguments:
     * safe to fan out across threads.
     */
    std::shared_ptr<const LeafScheduleResult>
    leafWidthResult(const Module &mod, unsigned w) const;

    /** Coarse list-schedule @p mod under width budget @p max_width. */
    uint64_t scheduleNonLeaf(const Program &prog, const Module &mod,
                             const ProgramSchedule &partial,
                             unsigned max_width) const;
};

} // namespace msq

#endif // MSQ_SCHED_COARSE_HH
