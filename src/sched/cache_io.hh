/**
 * @file
 * Versioned binary (de)serialization for the persistent leaf-schedule
 * cache (DESIGN.md §15). This is what lets a long-running `msq-served`
 * daemon amortize leaf scheduling across process restarts: the cache's
 * SoA ScheduleBuffer layout is already flat, so an entry serializes as a
 * handful of length-prefixed integer arrays with no pointer fixups.
 *
 * File layout (all integers little-endian regardless of host, written
 * byte by byte — never memcpy'd structs, so the format is identical on
 * any architecture and any compiler padding scheme):
 *
 *   header:  magic "MSQC" | u32 version | u32 endianTag (0x01020304)
 *            | u64 entryCount
 *   entry:   u32 keyLen | key bytes
 *            | u64 payloadLen | u64 fnv1a(payload) | payload bytes
 *   payload: u64 opCount | u64 qubitCount
 *            | u32 fpLen | fingerprint bytes            (collision guard)
 *            | u32 archFpLen | arch fingerprint bytes   (v2+: topology
 *              guard, MultiSimdArch::fingerprint())
 *            | CommStats (11 u64, field order of sched/comm.hh; v1
 *              files carry 10 — no interCoreTeleports)
 *            | ScheduleAttempt (u8 provenance + 5 u64)
 *            | ResourceSummary (15 u64 + u64 occupancy[] + u8
 *              saturated; v1 files carry 14)
 *            | MakespanBounds (3 u64 + u8 saturated)
 *            | ScheduleBuffer: u32 k | u64 numSteps | u64 numSlots
 *              | slots (u32 opEnd, u32 region, u8 kind)*
 *              | u32 slotEnd[] | u64 numOps | u32 ops[]
 *              | u64 numMoves | moves (u32 qubit, u8 fromKind,
 *                u32 fromRegion, u8 toKind, u32 toRegion, u8 blocking)*
 *              | u64 moveEnd[] | u64 activeWords[]
 *
 * Load-time validation is layered — every rejection is a stable P-code
 * diagnostic (support/diagnostic.hh) and a skipped file or entry, never
 * a crash and never a silently wrong schedule:
 *   P001/P002  bad magic / unsupported version (whole file rejected)
 *   P003       truncation anywhere (file rejected from that point)
 *   P004       checksum mismatch or structural-invariant violation
 *              inside one entry (entry skipped)
 *   P005       payload opCount/qubitCount/fingerprint disagree with the
 *              entry's own key (entry skipped)
 *   P007       (v2, warning) the stored architecture fingerprint
 *              disagrees with the entry's key — a file saved under a
 *              different topology (entry skipped)
 * Version 1 files (the flat machine's historical format) still load:
 * their entries simply carry no arch fingerprint and no inter-core
 * counters, which is correct for one-core schedules — the only kind a
 * v1 process could produce.
 * A fourth layer (P006) lives at rebind time in sched/coarse.cc: even an
 * internally consistent entry is refused when the requesting module's
 * op/qubit counts disagree with the stored guard fields.
 */

#ifndef MSQ_SCHED_CACHE_IO_HH
#define MSQ_SCHED_CACHE_IO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/leaf_cache.hh"
#include "support/diagnostic.hh"

namespace msq {

/// @name Format constants
/// @{

/** First four file bytes. */
extern const char cacheFileMagic[4];

/** Current format version (bump on any layout change). */
constexpr uint32_t cacheFileVersion = 2;

/** Oldest format version loadFrom still accepts. */
constexpr uint32_t cacheFileMinVersion = 1;

/** Byte-order canary, always written little-endian: reads back as
 * 0x01020304 iff the decoder honours the format's endianness. */
constexpr uint32_t cacheFileEndianTag = 0x01020304;

/// @}

/** FNV-1a 64-bit hash of @p size bytes at @p data (entry checksums;
 * also reused as the daemon's schedule-identity probe). */
uint64_t fnv1a64(const void *data, size_t size);

/// @name Single-entry (de)serialization
/// The building blocks of saveTo/loadFrom, exposed for tests and for
/// byte-identity checks (serialize is deterministic: same result, same
/// bytes).
/// @{

/** Append @p result's payload encoding (everything after the checksum)
 * to @p out. @p fingerprint is the scheduler fingerprint stored as the
 * cross-process collision guard; @p arch_fingerprint is the machine's
 * MultiSimdArch::fingerprint() (the v2 topology guard). */
void serializeLeafResult(const LeafScheduleResult &result,
                         const std::string &fingerprint,
                         const std::string &arch_fingerprint,
                         std::vector<uint8_t> &out);

/**
 * Decode one payload produced by serializeLeafResult.
 * @param fingerprint receives the stored scheduler fingerprint.
 * @param arch_fingerprint receives the stored arch fingerprint (empty
 *        for version-1 payloads, which predate the field).
 * @param version the file format version the payload was written under.
 * @return the decoded result, or nullptr when the payload is truncated
 *         or violates a ScheduleBuffer/enum invariant (the caller
 *         reports P003/P004; this function never throws on bad input).
 */
std::shared_ptr<LeafScheduleResult>
deserializeLeafResult(const uint8_t *data, size_t size,
                      std::string &fingerprint,
                      std::string &arch_fingerprint,
                      uint32_t version = cacheFileVersion);

/// @}

} // namespace msq

#endif // MSQ_SCHED_CACHE_IO_HH
