#include "sched/coarse.hh"

#include <algorithm>
#include <optional>
#include <queue>

#include "analysis/bounds.hh"
#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"

namespace msq {

uint64_t
ModuleScheduleInfo::bestLength() const
{
    if (dims.empty())
        panic("ModuleScheduleInfo: no dimensions available");
    uint64_t best = dims.front().length;
    for (const auto &bb : dims)
        best = std::min(best, bb.length);
    return best;
}

unsigned
ModuleScheduleInfo::bestWidth() const
{
    uint64_t best = bestLength();
    for (const auto &bb : dims)
        if (bb.length == best)
            return bb.width;
    panic("ModuleScheduleInfo: inconsistent dims");
}

const Blackbox &
ModuleScheduleInfo::bestWithin(unsigned max_width) const
{
    const Blackbox *best = nullptr;
    for (const auto &bb : dims) {
        if (bb.width > max_width)
            continue;
        if (!best || bb.length < best->length)
            best = &bb;
    }
    if (!best)
        panic("ModuleScheduleInfo: no dimension fits width budget");
    return *best;
}

const ModuleScheduleInfo &
ProgramSchedule::forModule(ModuleId id) const
{
    if (id >= modules.size() || !modules[id].analyzed)
        panic("ProgramSchedule: module not analyzed");
    return modules[id];
}

CoarseScheduler::CoarseScheduler(const MultiSimdArch &arch,
                                 const LeafScheduler &leaf_scheduler,
                                 CommMode mode, Options options)
    : arch(arch), leafScheduler(&leaf_scheduler), mode(mode),
      widths(std::move(options.widths)), numThreads(options.numThreads),
      cache(std::move(options.leafCache)), metrics(options.metrics)
{
    arch.validate();
    if (widths.empty()) {
        for (unsigned w = 1; w < arch.k; w *= 2)
            widths.push_back(w);
        widths.push_back(arch.k);
    }
    std::sort(widths.begin(), widths.end());
    widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
    if (widths.front() < 1 || widths.back() > arch.k)
        fatal("CoarseScheduler: width sweep outside [1, k]");
    if (numThreads == 0)
        numThreads = ThreadPool::hardwareThreads();
    if (cache) {
        cacheKeySuffix = leafScheduleKeySuffix(
            leafScheduler->fingerprint(), arch, mode);
    }
}

std::shared_ptr<const LeafScheduleResult>
CoarseScheduler::leafWidthResult(const Module &mod, unsigned w) const
{
    // Guard the span on enabled() so name/args composition costs
    // nothing on untraced runs; the record path itself is per-thread
    // and safe under ThreadPool fan-out.
    const bool tracing = Telemetry::trace().enabled();
    std::optional<TraceSpan> span;
    if (tracing)
        span.emplace(Telemetry::trace(),
                     csprintf("leaf:%s", mod.name().c_str()));

    std::string key;
    if (cache) {
        key = leafScheduleKey(mod, w, cacheKeySuffix);
        if (auto hit = cache->lookup(key)) {
            if (hit->matchesModule(mod.numOps(), mod.numQubits())) {
                if (tracing) {
                    span->setArgs(csprintf(
                        "\"module\": \"%s\", \"width\": %u, "
                        "\"gates\": %llu, \"cache\": \"hit\"",
                        mod.name().c_str(), w,
                        static_cast<unsigned long long>(mod.numOps())));
                }
                return hit;
            }
            // Rebind-time collision guard (DiagCode::
            // CacheRebindRejected): a disk-loaded entry whose stored
            // counts disagree with the requesting module — a
            // structural-hash collision or a forged file — must never
            // rebind. Evict it so the recompute's insert() wins, and
            // fall through to the miss path.
            cache->remove(key);
            cache->countRejection();
            warn(csprintf(
                "leaf cache: %s: entry for key %s rejected at rebind "
                "(stored %llu ops/%llu qubits, module has %llu/%llu); "
                "recomputing",
                diagCodeName(DiagCode::CacheRebindRejected),
                key.c_str(),
                static_cast<unsigned long long>(hit->opCount),
                static_cast<unsigned long long>(hit->qubitCount),
                static_cast<unsigned long long>(mod.numOps()),
                static_cast<unsigned long long>(mod.numQubits())));
        }
    }
    MultiSimdArch sub = arch;
    sub.k = w;
    auto result = std::make_shared<LeafScheduleResult>();
    LeafSchedule sched =
        leafScheduler->scheduleWithAttempt(mod, sub, result->attempt);
    CommunicationAnalyzer comm(arch, mode);
    result->stats = comm.annotate(sched);
    // Static lower bounds and the streaming resource-summary fold ride
    // the same memoization as the schedule: all are pure functions of
    // what the key captures.
    result->bounds = computeLeafBounds(mod, sub);
    result->summary = summarizeLeafSchedule(sched, arch);
    result->schedule = sched.sharedBuffer();
    // Guard fields for cross-process reuse: a warm-started process can
    // only rebind this result to a module with matching counts.
    result->opCount = mod.numOps();
    result->qubitCount = mod.numQubits();
    if (tracing) {
        span->setArgs(csprintf(
            "\"module\": \"%s\", \"width\": %u, \"gates\": %llu, "
            "\"cache\": \"%s\"",
            mod.name().c_str(), w,
            static_cast<unsigned long long>(mod.numOps()),
            cache ? "miss" : "off"));
    }
    if (cache)
        return cache->insert(key, std::move(result));
    return result;
}

namespace {

/** An entry of the current parallel set during coarse list scheduling. */
struct SetItem
{
    uint32_t opIndex;
    uint64_t start;        ///< absolute start cycle
    uint64_t length;       ///< current chosen length
    unsigned width;        ///< current chosen width
    const std::vector<Blackbox> *dims; ///< null for fixed-shape gates
    uint64_t perInvokeOverhead; ///< call flush overhead (cycles)
    uint64_t repeat;
    bool successorScheduled = false; ///< reshaping would break dependents

    uint64_t finish() const { return start + length; }

    /** Total length for dimension choice @p bb. */
    uint64_t
    lengthFor(const Blackbox &bb) const
    {
        return satMul(repeat, satAdd(bb.length, perInvokeOverhead));
    }
};

} // anonymous namespace

uint64_t
CoarseScheduler::scheduleNonLeaf(const Program &prog, const Module &mod,
                                 const ProgramSchedule &partial,
                                 unsigned max_width) const
{
    const uint64_t gate_cost = MultiSimdArch::coarseGateCost(mode);
    const uint64_t call_overhead = MultiSimdArch::callOverhead(mode);

    // Priorities: height in the module DAG with hierarchical weights.
    DepDag dag = DepDag::build(mod, [&](const Operation &op) -> uint64_t {
        if (op.isCall()) {
            uint64_t len = partial.forModule(op.callee).bestLength();
            return satMul(op.repeat, satAdd(len, call_overhead));
        }
        return gate_cost;
    });
    auto priority = dag.heightToBottom();

    std::vector<uint32_t> pending_preds(dag.numNodes());
    for (uint32_t i = 0; i < dag.numNodes(); ++i)
        pending_preds[i] = static_cast<uint32_t>(dag.preds(i).size());

    // Max-priority ready queue.
    auto cmp = [&](uint32_t a, uint32_t b) {
        return priority[a] < priority[b];
    };
    std::priority_queue<uint32_t, std::vector<uint32_t>, decltype(cmp)>
        ready(cmp);
    for (uint32_t root : dag.roots())
        ready.push(root);

    std::vector<uint64_t> finish(dag.numNodes(), 0);
    std::vector<SetItem> set;
    uint64_t total_len = 0; ///< cycles completed before the current set
    uint64_t curr_len = 0;  ///< length of the current parallel set
    uint64_t curr_width = 0;

    auto close_set = [&]() {
        total_len = satAdd(total_len, curr_len);
        curr_len = 0;
        curr_width = 0;
        set.clear();
    };

    auto make_item = [&](uint32_t op_index) {
        const Operation &op = mod.op(op_index);
        SetItem item;
        item.opIndex = op_index;
        if (op.isCall()) {
            const auto &callee = partial.forModule(op.callee);
            const Blackbox &bb = callee.bestWithin(max_width);
            item.dims = &callee.dims;
            item.width = bb.width;
            item.perInvokeOverhead = call_overhead;
            item.repeat = op.repeat;
            item.length = item.lengthFor(bb);
        } else {
            item.dims = nullptr;
            item.width = 1;
            item.perInvokeOverhead = 0;
            item.repeat = 1;
            item.length = gate_cost;
        }
        return item;
    };

    // Shrink-then-regrow width-combination search: reshape the reshapable
    // items of {items, item} so total width fits max_width, minimizing
    // the set length. Returns false when infeasible. Operates on copies;
    // the caller compares the reshaped set length against serializing
    // before committing.
    auto try_refit = [&](std::vector<SetItem> &items,
                         SetItem &item) -> bool {
        std::vector<SetItem *> all;
        uint64_t width_sum = 0;
        for (auto &existing : items) {
            all.push_back(&existing);
            width_sum += existing.width;
        }
        all.push_back(&item);
        width_sum += item.width;

        // Shrink: step the widest reshapable item down one dimension at
        // a time, preferring the smallest length penalty.
        while (width_sum > max_width) {
            SetItem *best_item = nullptr;
            const Blackbox *best_choice = nullptr;
            uint64_t best_penalty = 0;
            for (SetItem *cand : all) {
                if (!cand->dims || cand->successorScheduled)
                    continue;
                // Largest width strictly below the current one.
                const Blackbox *next = nullptr;
                for (const auto &bb : *cand->dims) {
                    if (bb.width < cand->width &&
                        (!next || bb.width > next->width))
                        next = &bb;
                }
                if (!next)
                    continue;
                uint64_t penalty = cand->lengthFor(*next) - cand->length;
                if (!best_item || penalty < best_penalty ||
                    (penalty == best_penalty &&
                     cand->width > best_item->width)) {
                    best_item = cand;
                    best_choice = next;
                    best_penalty = penalty;
                }
            }
            if (!best_item)
                return false; // nothing left to shrink
            width_sum -= best_item->width - best_choice->width;
            best_item->width = best_choice->width;
            best_item->length = best_item->lengthFor(*best_choice);
        }

        // Regrow: spend leftover width on whichever item currently ends
        // the set, while that improves the set length.
        bool improved = true;
        while (improved) {
            improved = false;
            SetItem *longest = nullptr;
            for (SetItem *cand : all)
                if (!longest || cand->finish() > longest->finish())
                    longest = cand;
            if (!longest || !longest->dims || longest->successorScheduled)
                break;
            const Blackbox *next = nullptr;
            for (const auto &bb : *longest->dims) {
                if (bb.width > longest->width &&
                    width_sum + (bb.width - longest->width) <= max_width &&
                    (!next || bb.width < next->width))
                    next = &bb;
            }
            if (next && longest->lengthFor(*next) < longest->length) {
                width_sum += next->width - longest->width;
                longest->width = next->width;
                longest->length = longest->lengthFor(*next);
                improved = true;
            }
        }
        return true;
    };

    while (!ready.empty()) {
        uint32_t op_index = ready.top();
        ready.pop();

        uint64_t earliest = 0;
        for (uint32_t p : dag.preds(op_index))
            earliest = std::max(earliest, finish[p]);

        SetItem item = make_item(op_index);

        bool placed = false;
        if (earliest < satAdd(total_len, curr_len) || set.empty()) {
            item.start = std::max(earliest, total_len);
            if (curr_width + item.width <= max_width) {
                set.push_back(item);
                placed = true;
            } else {
                // Width-combination search on a copy, then keep the
                // reshaped set only when it beats plain serialization
                // (shrinking a wide repeated call to slip a 1-cycle
                // gate alongside can be a terrible trade).
                std::vector<SetItem> candidate = set;
                SetItem candidate_item = item;
                if (try_refit(candidate, candidate_item)) {
                    candidate.push_back(candidate_item);
                    uint64_t refit_len = 0;
                    for (const auto &entry : candidate) {
                        refit_len = std::max(refit_len,
                                             entry.finish() - total_len);
                    }
                    uint64_t serial_len =
                        satAdd(curr_len, item.length);
                    if (refit_len < serial_len) {
                        set = std::move(candidate);
                        placed = true;
                    }
                }
            }
            if (placed) {
                curr_width = 0;
                curr_len = 0;
                for (const auto &entry : set) {
                    curr_width += entry.width;
                    curr_len = std::max(curr_len,
                                        entry.finish() - total_len);
                    // Reshaping may have changed earlier finishes.
                    finish[entry.opIndex] = entry.finish();
                }
            }
        }
        if (!placed) {
            // Serialize: close the current set and start a new one.
            close_set();
            item.start = std::max(earliest, total_len);
            set.push_back(item);
            curr_width = item.width;
            curr_len = item.finish() - total_len;
        }

        finish[op_index] = set.back().finish();
        // Mark set members whose dependents are now placed as fixed.
        for (auto &entry : set) {
            for (uint32_t s : dag.succs(entry.opIndex)) {
                if (s == op_index)
                    entry.successorScheduled = true;
            }
        }
        for (uint32_t s : dag.succs(op_index)) {
            if (--pending_preds[s] == 0)
                ready.push(s);
        }
    }
    close_set();
    return total_len;
}

ProgramSchedule
CoarseScheduler::schedule(const Program &prog) const
{
    TraceSpan total_span(Telemetry::trace(), "coarse-schedule");
    std::optional<ScopedTimerMs> total_timer;
    if (metrics != nullptr)
        total_timer.emplace(metrics->distribution("sched.total_ms"));
    const uint64_t cache_hits_before = cache ? cache->hits() : 0;
    const uint64_t cache_misses_before = cache ? cache->misses() : 0;

    ProgramSchedule result;
    result.modules.resize(prog.numModules());

    const std::vector<ModuleId> order = prog.bottomUpOrder();
    std::vector<ModuleId> leaves;
    for (ModuleId id : order)
        if (prog.module(id).isLeaf())
            leaves.push_back(id);

    std::unique_ptr<ThreadPool> pool;
    if (numThreads > 1)
        pool = std::make_unique<ThreadPool>(numThreads);
    auto run_tasks = [&](uint64_t count,
                         const std::function<void(uint64_t)> &body) {
        if (pool && count > 1) {
            pool->parallelFor(count, body);
        } else {
            for (uint64_t i = 0; i < count; ++i)
                body(i);
        }
    };

    // Phase 1 — leaves. Every leaf is independent of every other
    // module, and each sweep width is independent too, so fine-grained
    // scheduling fans out across (module x width) tasks. Each task
    // writes only its own slot; which thread computes a slot is
    // irrelevant to the value stored in it.
    const size_t nw = widths.size();
    std::vector<std::shared_ptr<const LeafScheduleResult>> slots(
        leaves.size() * nw);
    run_tasks(slots.size(), [&](uint64_t t) {
        const Module &mod = prog.module(leaves[t / nw]);
        slots[t] = leafWidthResult(mod, widths[t % nw]);
    });

    // Merge in bottom-up (module-id stream) order — single-threaded, so
    // the monotone clamp below sees widths in exactly the sequence the
    // sequential path did and the result is bit-identical to it. All
    // telemetry is recorded here rather than inside the fan-out: the
    // merged slot values are pure functions of the inputs, so the
    // recorded counters are identical for every thread count even when
    // a cache race double-computes a slot.
    for (size_t m = 0; m < leaves.size(); ++m) {
        const Module &mod = prog.module(leaves[m]);
        ModuleScheduleInfo info;
        info.analyzed = true;
        info.leaf = true;
        uint64_t best_so_far = ~uint64_t{0};
        for (size_t wi = 0; wi < nw; ++wi) {
            const CommStats &stats = slots[m * nw + wi]->stats;
            // Schedulers are heuristic; clamp so the width/length
            // trade-off curve is monotone (a wider machine can always
            // emulate a narrower schedule).
            uint64_t length = std::min(stats.totalCycles, best_so_far);
            best_so_far = length;
            info.dims.push_back({widths[wi], length});
            if (wi + 1 == nw) {
                info.comm = stats;
                info.provenance = slots[m * nw + wi]->attempt.provenance;
            }
        }
        if (metrics != nullptr) {
            // Optimal-tier telemetry, summed across the width sweep.
            // Recorded here in the single-threaded merge from memoized
            // attempt stats, so the counters are invariant to thread
            // count and cache state like everything else in this loop.
            for (size_t wi = 0; wi < nw; ++wi) {
                const ScheduleAttempt &attempt =
                    slots[m * nw + wi]->attempt;
                if (attempt.provenance == ScheduleProvenance::Heuristic &&
                    attempt.nodesExpanded == 0)
                    continue;
                metrics->counter("sched.opt.nodes_expanded")
                    .add(attempt.nodesExpanded);
                metrics->counter("sched.opt.pruned_critical_path")
                    .add(attempt.prunedByCriticalPath);
                metrics->counter("sched.opt.pruned_resource")
                    .add(attempt.prunedByResource);
                metrics->counter("sched.opt.pruned_dominance")
                    .add(attempt.prunedByDominance);
                metrics->counter("sched.opt.candidates_annotated")
                    .add(attempt.candidatesAnnotated);
                if (attempt.provenance == ScheduleProvenance::Optimal)
                    metrics->counter("sched.opt.proofs").add(1);
                else if (attempt.provenance ==
                         ScheduleProvenance::Fallback)
                    metrics->counter("sched.opt.fallbacks").add(1);
            }
            metrics->counter("sched.leaf.instances").add(1);
            metrics->distribution("sched.leaf.gates")
                .record(static_cast<double>(mod.numOps()));
            metrics->distribution("sched.leaf.cycles")
                .record(static_cast<double>(info.comm.totalCycles));
            // Schedule quality vs. the static lower bound at the widest
            // sweep point (>= 1.0 for any correct scheduler output).
            metrics->distribution("sched.leaf.optimality_gap")
                .record(slots[(m + 1) * nw - 1]->optimalityGap());
            const CommStats &comm = info.comm;
            metrics->counter("comm.teleport_moves")
                .add(comm.teleportMoves);
            metrics->counter("comm.blocking_teleports")
                .add(comm.blockingTeleports);
            // Teleporting one qubit consumes one pre-distributed EPR
            // pair (paper §2.3), so EPR consumption == teleport count.
            metrics->counter("comm.epr_pairs_consumed")
                .add(comm.teleportMoves);
            metrics->counter("comm.local_moves").add(comm.localMoves);
            metrics->counter("comm.steps_with_blocking_move")
                .add(comm.stepsWithBlockingMove);
            metrics->counter("comm.steps_with_only_local_moves")
                .add(comm.stepsWithOnlyLocalMoves);
            metrics->counter("comm.active_region_steps")
                .add(comm.activeRegionSteps);
            metrics->counter("comm.operand_slots")
                .add(comm.operandSlots);
            metrics->gauge("comm.region_occupancy_peak")
                .setMax(static_cast<int64_t>(comm.peakRegionOccupancy));
        }
        result.modules[leaves[m]] = std::move(info);
    }
    slots.clear();

    // Phase 2 — non-leaves, bottom-up so callee dimensions are always
    // available. The width sweep of one module fans out (each width
    // only reads the callees' completed entries in `result`); the
    // clamp-merge again runs in width order on one thread.
    for (ModuleId id : order) {
        const Module &mod = prog.module(id);
        if (mod.isLeaf())
            continue;
        const bool tracing = Telemetry::trace().enabled();
        std::optional<TraceSpan> sweep_span;
        if (tracing) {
            sweep_span.emplace(Telemetry::trace(),
                               csprintf("sweep:%s", mod.name().c_str()));
            sweep_span->setArgs(csprintf(
                "\"module\": \"%s\", \"widths\": %zu, \"ops\": %llu",
                mod.name().c_str(), nw,
                static_cast<unsigned long long>(mod.numOps())));
        }
        std::vector<uint64_t> lengths(nw);
        run_tasks(nw, [&](uint64_t wi) {
            lengths[wi] = scheduleNonLeaf(prog, mod, result,
                                          widths[wi]);
        });
        ModuleScheduleInfo info;
        info.analyzed = true;
        info.leaf = false;
        uint64_t best_so_far = ~uint64_t{0};
        for (size_t wi = 0; wi < nw; ++wi) {
            uint64_t length = std::min(lengths[wi], best_so_far);
            best_so_far = length;
            info.dims.push_back({widths[wi], length});
        }
        if (metrics != nullptr) {
            metrics->counter("sched.nonleaf.instances").add(1);
            metrics->distribution("sched.nonleaf.cycles")
                .record(static_cast<double>(info.bestLength()));
        }
        result.modules[id] = std::move(info);
    }

    if (metrics != nullptr) {
        metrics->counter("sched.width_sweep_points").add(nw);
        if (cache) {
            metrics->counter("sched.leaf_cache.hits")
                .add(cache->hits() - cache_hits_before);
            metrics->counter("sched.leaf_cache.misses")
                .add(cache->misses() - cache_misses_before);
        }
    }

    result.totalCycles =
        result.forModule(prog.entry()).bestLength();
    return result;
}

} // namespace msq
