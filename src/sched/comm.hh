/**
 * @file
 * Communication analysis and movement scheduling (paper §2.3, §3.2, §4.4).
 *
 * Given a compute-only leaf schedule, derives every qubit movement the
 * Multi-SIMD execution model requires and writes it into each timestep's
 * movement slot:
 *
 *  - a qubit scheduled in a region it does not currently occupy is
 *    teleported in (from global memory, another region, or a local
 *    scratchpad);
 *  - when a region is active in a timestep, any qubit parked there that is
 *    not an operand must first be evicted — to the region's local
 *    scratchpad when the qubit's next use is in the same region and
 *    capacity remains (1-cycle ballistic move), otherwise to global
 *    memory (teleport);
 *  - qubits parked in idle regions stay put for free.
 *
 * Latency masking (§2.3): "by choosing QT as the method of communication,
 * we mask the latency of moving qubits around. This masking is possible by
 * pre-distribution of these [EPR] pairs before they are needed." A
 * teleport therefore only *blocks* the schedule when it is tight — when
 * the qubit was still in use fewer than 4 timesteps before it is needed
 * (inbound), or is needed again fewer than 4 timesteps after it leaves
 * (outbound). Loose moves overlap computation at zero cost; this is what
 * separates scheduled communication from the naive every-timestep
 * movement model (5x, §4).
 *
 * Timestep cost: the movement phase costs the full 4 cycles if any
 * blocking (tight, global) move occurs in it ("If any SIMD regions in a
 * timestep have a global move, the full four cycle move time is
 * retained", §4.4), 1 cycle if only local ballistic moves occur, 0
 * otherwise.
 */

#ifndef MSQ_SCHED_COMM_HH
#define MSQ_SCHED_COMM_HH

#include <cstdint>

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"

namespace msq {

/** Movement statistics for one annotated schedule. */
struct CommStats
{
    /** All teleportation moves, masked or not. */
    uint64_t teleportMoves = 0;
    /** Teleports that block the schedule (tight reuse windows). */
    uint64_t blockingTeleports = 0;
    /** Ballistic region<->scratchpad moves. */
    uint64_t localMoves = 0;
    /** Timesteps whose movement phase costs the full teleport time. */
    uint64_t stepsWithBlockingMove = 0;
    /** Timesteps whose movement phase costs one local-move cycle. */
    uint64_t stepsWithOnlyLocalMoves = 0;
    /** Peak blocking teleports in any one timestep (EPR bandwidth
     * demand, paper §2.3). */
    uint64_t peakBlockingMovesPerStep = 0;
    /** Schedule length in cycles including movement phases (under the
     * architecture's EPR bandwidth). */
    uint64_t totalCycles = 0;

    // Region-occupancy profile (telemetry; computed whenever movement
    // is modelled, i.e. every mode except CommMode::None). Average
    // operands per active region = operandSlots / activeRegionSteps.
    /** (region, timestep) pairs in which the region executes ops. */
    uint64_t activeRegionSteps = 0;
    /** Total operand qubits across all active (region, timestep)
     * pairs. */
    uint64_t operandSlots = 0;
    /** Most operand qubits any one region touches in one timestep. */
    uint64_t peakRegionOccupancy = 0;

    /** Teleports whose endpoints live on different cores (masked or
     * blocking), routed over the topology's links. Always 0 on the
     * flat one-core machine. Serialized last in .msqc v2 records. */
    uint64_t interCoreTeleports = 0;
};

/** Derives and schedules qubit movement for leaf schedules. */
class CommunicationAnalyzer
{
  public:
    /**
     * @param arch machine model (local capacity read from here).
     * @param mode CommMode::None leaves the schedule move-free;
     *        Global forbids scratchpad use; GlobalWithLocalMem uses
     *        scratchpads up to arch.localMemCapacity.
     */
    CommunicationAnalyzer(const MultiSimdArch &arch, CommMode mode)
        : arch(arch), mode(mode)
    {}

    /**
     * Clear any existing movement annotation on @p sched, recompute all
     * moves under this analyzer's mode, and return the statistics.
     */
    CommStats annotate(LeafSchedule &sched) const;

  private:
    MultiSimdArch arch;
    CommMode mode;
};

} // namespace msq

#endif // MSQ_SCHED_COMM_HH
