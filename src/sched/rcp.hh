/**
 * @file
 * Ready Critical Path (RCP) scheduling — paper §4.1, Algorithm 1.
 *
 * RCP is a classic list scheduler (Yang & Gerasoulis) extended for the
 * Multi-SIMD execution model: it keeps a *ready* list (only ops whose
 * dependences are met) and, at each timestep, repeatedly selects the
 * (SIMD region, operation type) pair with the highest priority weight:
 *
 *   weight = w_op * |ready ops of the type|          (data parallelism)
 *          + w_dist * (operand already in region)    (movement avoidance)
 *          - w_slack * slack(op)                     (criticality)
 *
 * The winning type is scheduled into its preferred region (all ready ops
 * of that type, up to the d qubit budget), the region is retired for this
 * timestep, and selection repeats until regions or ready ops run out.
 * All weights default to 1, as in the paper.
 */

#ifndef MSQ_SCHED_RCP_HH
#define MSQ_SCHED_RCP_HH

#include "sched/leaf_scheduler.hh"

namespace msq {

/** The RCP fine-grained scheduler. */
class RcpScheduler : public LeafScheduler
{
  public:
    /** Priority weights (w_op, w_dist, w_slack); paper sets all to 1. */
    struct Weights
    {
        double op = 1.0;
        double dist = 1.0;
        double slack = 1.0;
    };

    RcpScheduler() : RcpScheduler(Weights{}) {}
    explicit RcpScheduler(Weights weights) : weights(weights) {}

    const char *name() const override { return "rcp"; }
    std::string fingerprint() const override;
    LeafSchedule schedule(const Module &mod,
                          const MultiSimdArch &arch) const override;

  private:
    Weights weights;
};

} // namespace msq

#endif // MSQ_SCHED_RCP_HH
