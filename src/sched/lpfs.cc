#include "sched/lpfs.hh"

#include "sched/core_affinity.hh"

#include <algorithm>
#include <deque>

#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/**
 * How many timesteps a ready op may starve in its home region before any
 * region may steal it. Small values spread independent serial chains
 * across regions quickly while keeping established chains pinned (the
 * whole point of LPFS's locality strategy, §4.2).
 */
constexpr uint32_t stealAge = 4;

/**
 * DAG height at or below which a fresh (memory-resident) op is considered
 * a one-shot data-parallel sibling rather than the head of a long serial
 * chain. Shallow ops may join any region's SIMD group; deep chain heads
 * are adopted one per region so independent chains spread out instead of
 * piling into one region and thrashing.
 */
constexpr uint64_t shallowHeight = 12;

/** Mutable per-run scheduling state. */
struct LpfsState
{
    const Module &mod;
    const MultiSimdArch &arch;
    DepDag dag;
    std::vector<uint32_t> pendingPreds;
    std::vector<uint64_t> height; ///< static DAG height (chain depth)
    std::vector<bool> scheduled;
    std::vector<bool> onPath;
    std::vector<uint32_t> age;  ///< timesteps spent ready but unplaced
    std::vector<int> qubitRegion; ///< region holding each qubit, or -1
    /** Operand qubits each region touched in the previous timestep;
     * used to keep a region working on the same serial chain. */
    std::vector<std::vector<QubitId>> lastQubits;
    std::deque<uint32_t> ready; ///< FIFO free/ready list
    /** Ops committed this timestep; their successors are released only
     * at the end of the step so dependent ops never share a timestep
     * with their predecessor. */
    std::vector<uint32_t> committedThisStep;
    std::vector<uint32_t> releaseBatch; ///< endOfStep() scratch
    uint64_t remaining;         ///< unscheduled op count

    LpfsState(const Module &mod, const MultiSimdArch &arch)
        : mod(mod), arch(arch), dag(DepDag::build(mod)),
          scheduled(mod.numOps(), false), onPath(mod.numOps(), false),
          age(mod.numOps(), 0), qubitRegion(mod.numQubits(), -1),
          lastQubits(arch.k), remaining(mod.numOps())
    {
        height = dag.heightToBottom();
        pendingPreds.resize(dag.numNodes());
        for (uint32_t i = 0; i < dag.numNodes(); ++i)
            pendingPreds[i] = static_cast<uint32_t>(dag.preds(i).size());
        for (uint32_t root : dag.roots())
            ready.push_back(root);
    }

    bool
    isReady(uint32_t op) const
    {
        return !scheduled[op] && pendingPreds[op] == 0;
    }

    /**
     * The region an op's data currently lives in, or -1 when its
     * operands are fresh (still in memory).
     */
    int
    homeRegion(uint32_t op) const
    {
        for (QubitId q : mod.op(op).operands) {
            int r = qubitRegion[q];
            if (r >= 0)
                return r;
        }
        return -1;
    }

    /**
     * May @p op join @p region's SIMD group under the affinity rules?
     * Homed ops stay in their region; fresh ops join freely only when
     * shallow (one-shot siblings); anything may move once steal-aged.
     */
    bool
    placeable(uint32_t op, unsigned region) const
    {
        int home = homeRegion(op);
        if (home >= 0)
            return home == static_cast<int>(region);
        return height[op] <= shallowHeight;
    }

    /**
     * Extract the longest path through unscheduled, un-pathed nodes,
     * starting from the currently ready frontier (getNextLongestPath).
     */
    std::deque<uint32_t>
    nextLongestPath()
    {
        size_t n = dag.numNodes();
        // Heights over the unscheduled, un-pathed subgraph.
        std::vector<uint64_t> height(n, 0);
        for (uint32_t i = static_cast<uint32_t>(n); i-- > 0;) {
            if (scheduled[i] || onPath[i])
                continue;
            uint64_t best = 0;
            for (uint32_t s : dag.succs(i)) {
                if (!scheduled[s] && !onPath[s])
                    best = std::max(best, height[s]);
            }
            height[i] = best + dag.weight(i);
        }

        // Start from the deepest ready node.
        int64_t start = -1;
        uint64_t best_height = 0;
        for (uint32_t op : ready) {
            if (onPath[op] || scheduled[op])
                continue;
            if (start < 0 || height[op] > best_height) {
                start = op;
                best_height = height[op];
            }
        }
        std::deque<uint32_t> path;
        if (start < 0)
            return path;

        auto cur = static_cast<uint32_t>(start);
        while (true) {
            path.push_back(cur);
            onPath[cur] = true;
            int64_t next = -1;
            uint64_t next_height = 0;
            for (uint32_t s : dag.succs(cur)) {
                if (scheduled[s] || onPath[s])
                    continue;
                if (next < 0 || height[s] > next_height) {
                    next = s;
                    next_height = height[s];
                }
            }
            if (next < 0)
                break;
            cur = static_cast<uint32_t>(next);
        }
        return path;
    }

    /** Mark @p op scheduled; its dependents are released by
     * endOfStep(). */
    void
    commit(uint32_t op)
    {
        scheduled[op] = true;
        onPath[op] = false;
        --remaining;
        committedThisStep.push_back(op);
    }

    /**
     * Release the successors of everything committed this timestep, in
     * canonical op-index order. The FIFO then holds ops ordered by
     * (release step, op index) — a pure function of the module content —
     * so every first-seen tie-break over `ready` (pickForRegion,
     * nextLongestPath, fillWithType) is canonical too, never an
     * artifact of the region-commit order within the step.
     */
    void
    endOfStep()
    {
        releaseBatch.clear();
        for (uint32_t op : committedThisStep) {
            for (uint32_t succ : dag.succs(op)) {
                if (--pendingPreds[succ] == 0)
                    releaseBatch.push_back(succ);
            }
        }
        std::sort(releaseBatch.begin(), releaseBatch.end());
        for (uint32_t succ : releaseBatch)
            ready.push_back(succ);
        committedThisStep.clear();
    }

    /** Drop scheduled / stale entries from the front of the ready list. */
    void
    pruneReady()
    {
        while (!ready.empty() && scheduled[ready.front()])
            ready.pop_front();
    }

    /**
     * Fill @p slot with ready free-list (non-path) ops of @p kind that
     * the affinity rules allow into @p region, until the qubit budget
     * runs out. Entries are taken in FIFO order.
     *
     * commit() appends newly readied successors to the deque, so we
     * iterate the pre-call prefix by index (deque indices stay valid
     * across push_back); scheduled entries are skipped lazily and
     * reclaimed by pruneReady().
     */
    void
    fillWithType(ScheduleBuilder::DraftSlot &slot, GateKind kind,
                 uint64_t &budget, unsigned region, int64_t adopted = -1)
    {
        slot.kind = kind;
        size_t prefix = ready.size();
        for (size_t i = 0; i < prefix; ++i) {
            uint32_t op = ready[i];
            if (scheduled[op] || onPath[op] || mod.op(op).kind != kind)
                continue;
            if (static_cast<int64_t>(op) != adopted &&
                !placeable(op, region))
                continue;
            uint64_t need = opQubitCount(mod.op(op));
            // Skip, don't stop: under a finite d one wide op at the
            // front of the ready list must not starve smaller same-kind
            // ops queued behind it.
            if (need > budget)
                continue;
            budget -= need;
            slot.ops.push_back(op);
            commit(op);
        }
    }

    /**
     * Pick the operation whose type region @p region should execute, in
     * priority order: (1) the continuation of the chain the region ran
     * last timestep; (2) the oldest other op homed in the region;
     * (3) the deepest fresh chain head (adopting a new chain); (4) the
     * oldest steal-aged op marooned in a busy region; (5) any ready op
     * at all - an idle region is pure waste, and one (usually maskable)
     * migration beats stalling. Returns -1 only when nothing is ready.
     */
    int64_t
    pickForRegion(unsigned region)
    {
        int64_t homed_pick = -1;
        int64_t fresh_pick = -1;
        int64_t aged_pick = -1;
        int64_t any_pick = -1;
        const auto &recent = lastQubits[region];
        for (uint32_t op : ready) {
            if (scheduled[op] || onPath[op])
                continue;
            if (any_pick < 0 && age[op] >= 1)
                any_pick = op;
            int home = homeRegion(op);
            if (home == static_cast<int>(region)) {
                for (QubitId q : mod.op(op).operands) {
                    if (std::find(recent.begin(), recent.end(), q) !=
                        recent.end())
                        return op; // chain continuation
                }
                if (homed_pick < 0)
                    homed_pick = op;
            } else if (home < 0) {
                if (fresh_pick < 0 ||
                    height[op] > height[static_cast<size_t>(fresh_pick)])
                    fresh_pick = op;
            } else if (aged_pick < 0 && age[op] >= stealAge) {
                aged_pick = op;
            }
        }
        if (homed_pick >= 0)
            return homed_pick;
        if (fresh_pick >= 0)
            return fresh_pick;
        return aged_pick >= 0 ? aged_pick : any_pick;
    }
};

} // anonymous namespace

std::string
LpfsScheduler::fingerprint() const
{
    return csprintf("lpfs(l=%u,simd=%d,refill=%d)", options.l,
                    options.simd ? 1 : 0, options.refill ? 1 : 0);
}

LeafSchedule
LpfsScheduler::schedule(const Module &mod, const MultiSimdArch &arch) const
{
    checkInputs(mod, arch);
    if (options.l == 0)
        fatal("LPFS: l must be >= 1");
    // The hierarchical width sweep schedules leaves on narrower
    // sub-machines; clamp the dedicated-path count to what exists.
    const unsigned l = std::min(options.l, arch.k);

    ScheduleBuilder builder(mod, arch.k);
    if (mod.numOps() == 0)
        return builder.finish();

    LpfsState st(mod, arch);

    // Initial longest paths for the l dedicated regions.
    std::vector<std::deque<uint32_t>> paths(l);
    for (auto &path : paths)
        path = st.nextLongestPath();

    while (st.remaining > 0) {
        builder.beginStep();
        bool placed_any = false;

        // Dedicated path regions.
        for (unsigned i = 0; i < l; ++i) {
            auto &path = paths[i];
            while (!path.empty() && st.scheduled[path.front()])
                path.pop_front();
            if (path.empty() && options.refill)
                path = st.nextLongestPath();

            ScheduleBuilder::DraftSlot &slot = builder.slot(i);
            uint64_t budget = arch.d;
            if (!path.empty() && st.isReady(path.front())) {
                uint32_t op = path.front();
                path.pop_front();
                slot.kind = mod.op(op).kind;
                slot.ops.push_back(op);
                budget -= opQubitCount(mod.op(op));
                st.commit(op);
                placed_any = true;
                if (options.simd)
                    st.fillWithType(slot, slot.kind, budget, i);
            } else if (options.simd) {
                // Stalled (or no path): execute free-list ops instead.
                int64_t free_op = st.pickForRegion(i);
                if (free_op >= 0) {
                    st.fillWithType(slot, mod.op(free_op).kind, budget, i,
                                    free_op);
                    placed_any = placed_any || slot.active();
                }
            }
        }

        // Unallocated regions: schedule from the free list by type, with
        // location affinity so serial chains stay pinned in place.
        for (unsigned i = l; i < arch.k; ++i) {
            int64_t free_op = st.pickForRegion(i);
            if (free_op < 0)
                continue;
            uint64_t budget = arch.d;
            st.fillWithType(builder.slot(i), mod.op(free_op).kind, budget,
                            i, free_op);
            placed_any = placed_any || builder.slot(i).active();
        }

        // Progress guarantee: if every path head stalled and no free op
        // was available, force the first ready op through.
        if (!placed_any) {
            st.pruneReady();
            int64_t any = -1;
            for (uint32_t op : st.ready) {
                if (st.isReady(op)) {
                    any = op;
                    break;
                }
            }
            if (any < 0)
                panic("LPFS: no ready operation but work remains "
                      "(dependence cycle?)");
            auto op = static_cast<uint32_t>(any);
            ScheduleBuilder::DraftSlot &slot = builder.slot(0);
            slot.kind = mod.op(op).kind;
            slot.ops.push_back(op);
            st.commit(op);
        }

        st.endOfStep();

        // Operand qubits now live where their ops ran; waiting ops age
        // toward stealability.
        for (unsigned r = 0; r < arch.k; ++r) {
            st.lastQubits[r].clear();
            for (uint32_t op_index : builder.slot(r).ops) {
                for (QubitId q : mod.op(op_index).operands) {
                    st.qubitRegion[q] = static_cast<int>(r);
                    st.lastQubits[r].push_back(q);
                }
            }
        }
        for (uint32_t op : st.ready)
            if (!st.scheduled[op] && !st.onPath[op])
                ++st.age[op];

        st.pruneReady();
        builder.endStep();
    }

    return applyCoreAffinity(builder.finish(), arch);
}

} // namespace msq
