/**
 * @file
 * Interface of the fine-grained (leaf-module) schedulers: RCP (paper
 * Algorithm 1), LPFS (Algorithm 2) and the sequential baseline. A leaf
 * scheduler places each operation of a leaf module into a (timestep,
 * region) slot subject to Multi-SIMD constraints:
 *
 *  - dependences: an op runs strictly after every op it depends on;
 *  - SIMD homogeneity: all ops in one region in one timestep share one
 *    gate type;
 *  - width: at most k regions active per timestep;
 *  - data width: at most d qubits touched per region per timestep.
 *
 * Movement is added afterwards by the CommunicationAnalyzer; schedulers
 * are communication-aware only through their placement heuristics.
 */

#ifndef MSQ_SCHED_LEAF_SCHEDULER_HH
#define MSQ_SCHED_LEAF_SCHEDULER_HH

#include <string>

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "ir/module.hh"

namespace msq {

/**
 * How a leaf schedule was obtained. Heuristic schedulers always report
 * Heuristic; the branch-and-bound OptScheduler reports Optimal when it
 * certified a minimum-makespan schedule (annotated makespan equals the
 * static lower bound) and Fallback when it exhausted its node budget
 * and returned the configured heuristic's schedule instead.
 */
enum class ScheduleProvenance : uint8_t {
    Heuristic, ///< produced by a heuristic (RCP/LPFS/sequential)
    Optimal,   ///< proven minimum-makespan (certificate: makespan == LB)
    Fallback,  ///< opt budget exhausted; heuristic schedule returned
};

/** @return "heuristic" / "optimal" / "fallback". */
const char *scheduleProvenanceName(ScheduleProvenance provenance);

/**
 * Per-schedule provenance and search statistics. Deterministic for a
 * fixed (module, arch, fingerprint) triple — it rides the memoized
 * LeafScheduleResult, so cache hits replay identical numbers.
 */
struct ScheduleAttempt
{
    ScheduleProvenance provenance = ScheduleProvenance::Heuristic;
    uint64_t nodesExpanded = 0;        ///< B&B nodes expanded
    uint64_t prunedByCriticalPath = 0; ///< prunes: CP/height bound
    uint64_t prunedByResource = 0;     ///< prunes: resource bound
    uint64_t prunedByDominance = 0;    ///< prunes: dominance table
    uint64_t candidatesAnnotated = 0;  ///< completed candidates costed
};

/** Abstract fine-grained scheduler. */
class LeafScheduler
{
  public:
    virtual ~LeafScheduler() = default;

    /** Short identifier, e.g. "rcp", "lpfs", "sequential". */
    virtual const char *name() const = 0;

    /**
     * Identity string covering the scheduler kind *and* every option
     * that can change its output, e.g. "lpfs(l=1,simd=1,refill=1)".
     * Used as part of leaf-schedule memoization keys
     * (sched/leaf_cache.hh): two schedulers with equal fingerprints
     * must produce identical schedules for identical inputs.
     */
    virtual std::string fingerprint() const = 0;

    /**
     * Schedule leaf module @p mod onto @p arch.
     * @pre mod.isLeaf() and every op is a primitive gate.
     */
    virtual LeafSchedule schedule(const Module &mod,
                                  const MultiSimdArch &arch) const = 0;

    /**
     * Schedule @p mod and report how the schedule was obtained via
     * @p attempt. The default forwards to schedule() and reports
     * Heuristic provenance with zeroed search counters; only schedulers
     * with a non-trivial search (OptScheduler) override this.
     */
    virtual LeafSchedule
    scheduleWithAttempt(const Module &mod, const MultiSimdArch &arch,
                        ScheduleAttempt &attempt) const
    {
        attempt = ScheduleAttempt{};
        return schedule(mod, arch);
    }

  protected:
    /** Shared precondition checks; panics on violations. */
    static void checkInputs(const Module &mod, const MultiSimdArch &arch);
};

/**
 * Number of qubits a set of same-kind ops occupies in a region; used to
 * enforce the d constraint.
 */
inline uint64_t
opQubitCount(const Operation &op)
{
    return op.operands.size();
}

/**
 * The sequential baseline: one operation per timestep, all in region 0.
 * Paper speedups are reported "over sequential execution".
 */
class SequentialScheduler : public LeafScheduler
{
  public:
    const char *name() const override { return "sequential"; }
    std::string fingerprint() const override { return "sequential"; }
    LeafSchedule schedule(const Module &mod,
                          const MultiSimdArch &arch) const override;
};

} // namespace msq

#endif // MSQ_SCHED_LEAF_SCHEDULER_HH
