/**
 * @file
 * Human-readable timeline dump of a leaf schedule: one line per
 * timestep, showing what each SIMD region executes and which qubits
 * move where (with blocking teleports flagged). The format mirrors the
 * paper's Fig. 4 schedule listings.
 */

#ifndef MSQ_SCHED_SCHEDULE_PRINTER_HH
#define MSQ_SCHED_SCHEDULE_PRINTER_HH

#include <cstdint>
#include <ostream>

#include "arch/schedule.hh"

namespace msq {

/** Options for timeline printing. */
struct TimelinePrintOptions
{
    /** Print at most this many timesteps (0 = all). */
    uint64_t maxSteps = 0;

    /** Include the movement slot contents. */
    bool showMoves = true;
};

/**
 * Print @p sched as a timestep-per-line timeline, e.g.
 *
 *   t0 [5]  r0{CNOT: q0 q1}  r1{H: q2}   | moves: q3 mem->r0!
 *
 * where [5] is the step's cycle cost and '!' marks blocking teleports.
 */
void printTimeline(std::ostream &os, const LeafSchedule &sched,
                   const TimelinePrintOptions &options = {});

} // namespace msq

#endif // MSQ_SCHED_SCHEDULE_PRINTER_HH
