/**
 * @file
 * Structural validation of schedules. Used by tests and available to
 * library users as a debugging aid; every scheduler's output must pass.
 *
 * Leaf-schedule invariants (codes S001-S014):
 *  1. every module operation is scheduled exactly once;
 *  2. dependences: each op runs in a strictly later timestep than every
 *     op it depends on;
 *  3. SIMD homogeneity: a region executes a single gate type per step;
 *  4. qubit exclusivity: no qubit is touched by two ops in one timestep
 *     (within one region or across different regions);
 *  5. width: a region touches at most d qubits per timestep;
 *  6. when movement is annotated: every move's source matches the
 *     qubit's tracked location, every operand is resident in its
 *     region when its op executes, and local-memory occupancy never
 *     exceeds capacity.
 *
 * Coarse-schedule invariants (codes C001-C006): every reachable module
 * analyzed, leaf flags consistent, and each module's width/length
 * trade-off curve non-empty, monotone, and within the machine width.
 *
 * Both validators report through a DiagnosticEngine. By default they
 * run in panic-on-first-error mode (violations are scheduler bugs);
 * pass a collecting engine to gather every violation with its code.
 */

#ifndef MSQ_SCHED_VALIDATOR_HH
#define MSQ_SCHED_VALIDATOR_HH

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "sched/coarse.hh"
#include "support/diagnostic.hh"

namespace msq {

/**
 * Validate @p sched against @p arch.
 * @param moves_annotated when true, also verify movement consistency
 *        (invariant 6); leave false for compute-only schedules.
 * @param diags when null, violations panic immediately (PanicError on
 *        the first one, as schedulers are library code); when supplied,
 *        all violations are reported into it per its FailMode.
 * @return true when no violations were reported.
 */
bool validateLeafSchedule(const LeafSchedule &sched,
                          const MultiSimdArch &arch,
                          bool moves_annotated = false,
                          DiagnosticEngine *diags = nullptr);

/**
 * Validate a whole-program coarse schedule against @p prog and @p arch.
 * Same diagnostics contract as validateLeafSchedule().
 * @return true when no violations were reported.
 */
bool validateProgramSchedule(const Program &prog,
                             const ProgramSchedule &psched,
                             const MultiSimdArch &arch,
                             DiagnosticEngine *diags = nullptr);

} // namespace msq

#endif // MSQ_SCHED_VALIDATOR_HH
