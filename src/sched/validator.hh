/**
 * @file
 * Structural validation of leaf schedules. Used by tests and available to
 * library users as a debugging aid; every scheduler's output must pass.
 *
 * Checked invariants:
 *  1. every module operation is scheduled exactly once;
 *  2. dependences: each op runs in a strictly later timestep than every
 *     op it depends on;
 *  3. SIMD homogeneity: a region executes a single gate type per step;
 *  4. qubit exclusivity: no qubit is touched by two ops in one timestep;
 *  5. width: a region touches at most d qubits per timestep;
 *  6. when movement is annotated: every move's source matches the
 *     qubit's tracked location, every operand is resident in its
 *     region when its op executes, and local-memory occupancy never
 *     exceeds capacity.
 */

#ifndef MSQ_SCHED_VALIDATOR_HH
#define MSQ_SCHED_VALIDATOR_HH

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"

namespace msq {

/**
 * Validate @p sched against @p arch.
 * @param moves_annotated when true, also verify movement consistency
 *        (invariant 6); leave false for compute-only schedules.
 * Panics with a diagnostic on the first violation.
 */
void validateLeafSchedule(const LeafSchedule &sched,
                          const MultiSimdArch &arch,
                          bool moves_annotated = false);

} // namespace msq

#endif // MSQ_SCHED_VALIDATOR_HH
