#include "sched/leaf_cache.hh"

#include <algorithm>

#include "support/strings.hh"

namespace msq {

std::string
leafScheduleKeySuffix(const std::string &scheduler_fingerprint,
                      const MultiSimdArch &arch, CommMode mode)
{
    // MultiSimdArch::fingerprint() is the single source of truth for
    // the architecture part: byte-identical to the historical
    // "d=..|lm=..|epr=.." suffix on the flat machine, extended with the
    // topology fragment on multi-core machines.
    return csprintf("%s|%s|%s", scheduler_fingerprint.c_str(),
                    arch.fingerprint().c_str(), commModeName(mode));
}

std::string
leafScheduleKey(const Module &mod, unsigned width,
                const std::string &suffix)
{
    return csprintf("%016llx|%llu|%llu|w=%u|%s",
                    static_cast<unsigned long long>(mod.structuralHash()),
                    static_cast<unsigned long long>(mod.numOps()),
                    static_cast<unsigned long long>(mod.numQubits()),
                    width, suffix.c_str());
}

std::shared_ptr<const LeafScheduleResult>
LeafScheduleCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

std::shared_ptr<const LeafScheduleResult>
LeafScheduleCache::insert(const std::string &key,
                          std::shared_ptr<const LeafScheduleResult> result)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = entries.emplace(key, std::move(result));
    if (!inserted) {
        // Lost a compute race: another thread published this key after
        // our lookup missed. Reclassify our miss as a hit so the final
        // tallies are thread-count-invariant — every key ends up with
        // exactly one miss (the winning insert) and one hit per other
        // access, exactly like a sequential run (DESIGN.md §9).
        hits_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_sub(1, std::memory_order_relaxed);
    }
    return it->second;
}

bool
LeafScheduleCache::insertLoaded(
    const std::string &key,
    std::shared_ptr<const LeafScheduleResult> result)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = entries.emplace(key, std::move(result));
    (void)it;
    if (inserted)
        loads_.fetch_add(1, std::memory_order_relaxed);
    // A losing load is NOT a lost compute race: no lookup missed before
    // it, so there is no miss to reclassify and the counters stay put.
    return inserted;
}

bool
LeafScheduleCache::remove(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.erase(key) > 0;
}

double
LeafScheduleCache::hitRate() const
{
    uint64_t h = hits_.load();
    uint64_t m = misses_.load();
    if (h + m == 0)
        return 0.0;
    return static_cast<double>(h) / static_cast<double>(h + m);
}

size_t
LeafScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

void
LeafScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    entries.clear();
    hits_.store(0);
    misses_.store(0);
    loads_.store(0);
    rejections_.store(0);
}

std::vector<std::pair<std::string,
                      std::shared_ptr<const LeafScheduleResult>>>
LeafScheduleCache::snapshotEntries() const
{
    std::vector<std::pair<std::string,
                          std::shared_ptr<const LeafScheduleResult>>>
        out;
    {
        std::lock_guard<std::mutex> lock(mutex);
        out.reserve(entries.size());
        for (const auto &[key, value] : entries)
            out.emplace_back(key, value);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

} // namespace msq
