#include "sched/validator.hh"

#include <algorithm>
#include <vector>

#include "analysis/qubit_mapping.hh"
#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/** Per-qubit touch bookkeeping for invariant 4 (one timestep). */
struct TouchRecord
{
    QubitId qubit;
    unsigned region;
    uint32_t opIndex;
};

} // anonymous namespace

bool
validateLeafSchedule(const LeafSchedule &sched, const MultiSimdArch &arch,
                     bool moves_annotated, DiagnosticEngine *diags)
{
    // Compatibility mode: with no engine supplied, violations are
    // scheduler bugs and panic on first report.
    DiagnosticEngine panic_engine(DiagnosticEngine::FailMode::Panic);
    DiagnosticEngine &out = diags != nullptr ? *diags : panic_engine;
    size_t errors_before = out.numErrors();

    const Module &mod = sched.module();
    DiagContext mod_ctx{mod.name()};

    if (sched.k() != arch.k) {
        out.error(DiagCode::SchedKMismatch,
                  csprintf("schedule built for k=%u but architecture has "
                           "k=%u",
                           sched.k(), arch.k),
                  mod_ctx);
        // Region-indexed checks below would all be misaligned; stop.
        return false;
    }

    // Invariant 1: coverage; also record each op's timestep. (The old
    // per-step region-count check — S002 — is structurally guaranteed
    // by the SoA representation: a slot's region is always < k.)
    constexpr uint64_t unscheduled = ~uint64_t{0};
    std::vector<uint64_t> op_step(mod.numOps(), unscheduled);
    for (ScheduleWalker walker(sched); !walker.atEnd(); walker.next()) {
        const uint64_t ts = walker.index();
        TimestepView step = walker.step();
        std::vector<TouchRecord> touched;
        for (RegionSlotView slot : step) {
            const unsigned r = slot.region();
            uint64_t qubits_touched = 0;
            for (uint32_t op_index : slot.ops()) {
                if (op_index >= mod.numOps()) {
                    out.error(
                        DiagCode::SchedOpOutOfRange,
                        csprintf("step %llu region %u schedules op %u, "
                                 "but the module has %zu ops",
                                 static_cast<unsigned long long>(ts), r,
                                 op_index, mod.numOps()),
                        mod_ctx);
                    continue;
                }
                if (op_step[op_index] != unscheduled) {
                    out.error(
                        DiagCode::SchedOpTwice,
                        csprintf("op %u scheduled twice (steps %llu and "
                                 "%llu)",
                                 op_index,
                                 static_cast<unsigned long long>(
                                     op_step[op_index]),
                                 static_cast<unsigned long long>(ts)),
                        {mod.name(), op_index, mod.op(op_index).line});
                }
                op_step[op_index] = ts;
                const Operation &op = mod.op(op_index);
                // Invariant 3: homogeneity.
                if (op.kind != slot.kind()) {
                    out.error(
                        DiagCode::SchedMixedKinds,
                        csprintf("step %llu region %u mixes %s and %s",
                                 static_cast<unsigned long long>(ts), r,
                                 gateName(slot.kind()),
                                 gateName(op.kind)),
                        {mod.name(), op_index, op.line});
                }
                qubits_touched += op.operands.size();
                for (QubitId q : op.operands)
                    touched.push_back({q, r, op_index});
            }
            // Invariant 5: d budget.
            if (qubits_touched > arch.d) {
                out.error(
                    DiagCode::SchedWidthBudget,
                    csprintf("step %llu region %u touches %llu qubits, "
                             "budget d=%llu",
                             static_cast<unsigned long long>(ts), r,
                             static_cast<unsigned long long>(
                                 qubits_touched),
                             static_cast<unsigned long long>(arch.d)),
                    mod_ctx);
            }
        }
        // Invariant 4: qubit exclusivity across the whole timestep —
        // covers duplicates both within one region slot and across
        // different regions of the same step.
        std::sort(touched.begin(), touched.end(),
                  [](const TouchRecord &a, const TouchRecord &b) {
                      return a.qubit < b.qubit;
                  });
        for (size_t i = 1; i < touched.size(); ++i) {
            if (touched[i].qubit != touched[i - 1].qubit)
                continue;
            out.error(
                DiagCode::SchedQubitConflict,
                csprintf("step %llu touches qubit %u twice (op %u in "
                         "region %u and op %u in region %u)",
                         static_cast<unsigned long long>(ts),
                         touched[i].qubit, touched[i - 1].opIndex,
                         touched[i - 1].region, touched[i].opIndex,
                         touched[i].region),
                {mod.name(), touched[i].opIndex,
                 mod.op(touched[i].opIndex).line});
        }
    }
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        if (op_step[i] == unscheduled) {
            out.error(DiagCode::SchedOpMissing,
                      csprintf("op %u never scheduled", i),
                      {mod.name(), i, mod.op(i).line});
        }
    }

    // Invariant 2: dependences strictly ordered. Unscheduled ops were
    // already reported; skip their edges.
    DepDag dag = DepDag::build(mod);
    for (uint32_t i = 0; i < dag.numNodes(); ++i) {
        if (op_step[i] == unscheduled)
            continue;
        for (uint32_t s : dag.succs(i)) {
            if (op_step[s] == unscheduled)
                continue;
            if (op_step[s] <= op_step[i]) {
                out.error(
                    DiagCode::SchedDependence,
                    csprintf("op %u (step %llu) depends on op %u "
                             "(step %llu)",
                             s,
                             static_cast<unsigned long long>(op_step[s]),
                             i,
                             static_cast<unsigned long long>(op_step[i])),
                    {mod.name(), s, mod.op(s).line});
            }
        }
    }

    if (!moves_annotated)
        return out.numErrors() == errors_before;

    // Invariant 6: movement consistency. Initial residency is each
    // qubit's home core bank — the identical pure mapping the
    // communication analyzer used (all core 0 on the flat machine).
    std::vector<Location> loc(mod.numQubits(), Location::global());
    if (arch.topology.multiCore()) {
        const std::vector<unsigned> home =
            computeQubitMapping(mod, arch.topology);
        for (size_t q = 0; q < loc.size(); ++q)
            loc[q] = Location::inMemory(home[q]);
    }
    std::vector<uint64_t> local_count(arch.k, 0);
    for (ScheduleWalker walker(sched); !walker.atEnd(); walker.next()) {
        const uint64_t ts = walker.index();
        TimestepView step = walker.step();
        for (const Move &move : step.moves()) {
            if (move.qubit >= mod.numQubits()) {
                out.error(DiagCode::SchedMoveUnknownQubit,
                          csprintf("step %llu moves unknown qubit %u",
                                   static_cast<unsigned long long>(ts),
                                   move.qubit),
                          mod_ctx);
                continue;
            }
            if (loc[move.qubit] != move.from) {
                out.error(
                    DiagCode::SchedMoveSource,
                    csprintf("step %llu moves qubit %u from %s but it "
                             "is at %s",
                             static_cast<unsigned long long>(ts),
                             move.qubit, move.from.describe().c_str(),
                             loc[move.qubit].describe().c_str()),
                    mod_ctx);
            }
            if (move.to == move.from) {
                out.error(DiagCode::SchedMoveDegenerate,
                          csprintf("step %llu: degenerate move of qubit "
                                   "%u (%s to itself)",
                                   static_cast<unsigned long long>(ts),
                                   move.qubit,
                                   move.from.describe().c_str()),
                          mod_ctx);
            }
            if (move.from.isLocalMem() &&
                local_count[move.from.region] > 0) {
                --local_count[move.from.region];
            }
            if (move.to.isLocalMem()) {
                unsigned r = move.to.region;
                if (++local_count[r] > arch.localMemCapacity) {
                    out.error(
                        DiagCode::SchedLocalMemOverflow,
                        csprintf("step %llu overflows local memory of "
                                 "region %u (capacity %llu)",
                                 static_cast<unsigned long long>(ts), r,
                                 static_cast<unsigned long long>(
                                     arch.localMemCapacity)),
                        mod_ctx);
                }
            }
            loc[move.qubit] = move.to;
        }
        for (RegionSlotView slot : step) {
            const unsigned r = slot.region();
            for (uint32_t op_index : slot.ops()) {
                if (op_index >= mod.numOps())
                    continue; // already reported above
                for (QubitId q : mod.op(op_index).operands) {
                    if (q >= mod.numQubits())
                        continue; // malformed op; verifier territory
                    if (!(loc[q] == Location::inRegion(r))) {
                        out.error(
                            DiagCode::SchedOperandNotResident,
                            csprintf("step %llu op %u operand %u not in "
                                     "region %u (at %s)",
                                     static_cast<unsigned long long>(ts),
                                     op_index, q, r,
                                     loc[q].describe().c_str()),
                            {mod.name(), op_index, mod.op(op_index).line});
                    }
                }
            }
        }
    }
    return out.numErrors() == errors_before;
}

bool
validateProgramSchedule(const Program &prog, const ProgramSchedule &psched,
                        const MultiSimdArch &arch, DiagnosticEngine *diags)
{
    DiagnosticEngine panic_engine(DiagnosticEngine::FailMode::Panic);
    DiagnosticEngine &out = diags != nullptr ? *diags : panic_engine;
    size_t errors_before = out.numErrors();

    if (psched.modules.size() != prog.numModules()) {
        out.error(DiagCode::CoarseNotAnalyzed,
                  csprintf("schedule covers %zu modules, program has %zu",
                           psched.modules.size(), prog.numModules()));
        return false;
    }

    // Reachability over valid callees (self-contained: the program may
    // not have been validated).
    std::vector<bool> reachable(prog.numModules(), false);
    if (prog.entry() != invalidModule) {
        std::vector<ModuleId> work{prog.entry()};
        reachable[prog.entry()] = true;
        while (!work.empty()) {
            ModuleId id = work.back();
            work.pop_back();
            for (const Operation &op : prog.module(id).ops()) {
                if (op.isCall() && op.callee < prog.numModules() &&
                    !reachable[op.callee]) {
                    reachable[op.callee] = true;
                    work.push_back(op.callee);
                }
            }
        }
    }

    for (ModuleId id = 0; id < prog.numModules(); ++id) {
        if (!reachable[id])
            continue;
        const Module &mod = prog.module(id);
        const ModuleScheduleInfo &info = psched.modules[id];
        DiagContext ctx{mod.name()};
        if (!info.analyzed) {
            out.error(DiagCode::CoarseNotAnalyzed,
                      "reachable module was never scheduled", ctx);
            continue;
        }
        if (info.leaf != mod.isLeaf()) {
            out.error(DiagCode::CoarseLeafMismatch,
                      csprintf("schedule marks module as %s but it is %s",
                               info.leaf ? "leaf" : "non-leaf",
                               mod.isLeaf() ? "leaf" : "non-leaf"),
                      ctx);
        }
        if (info.dims.empty()) {
            out.error(DiagCode::CoarseNoDims,
                      "analyzed module offers no blackbox dimensions",
                      ctx);
            continue;
        }
        for (size_t i = 0; i < info.dims.size(); ++i) {
            const Blackbox &bb = info.dims[i];
            if (bb.width < 1 || bb.width > arch.k) {
                out.error(DiagCode::CoarseWidthExceedsK,
                          csprintf("dimension %zu has width %u outside "
                                   "[1, k=%u]",
                                   i, bb.width, arch.k),
                          ctx);
            }
            if (i == 0)
                continue;
            if (bb.width <= info.dims[i - 1].width ||
                bb.length > info.dims[i - 1].length) {
                out.error(
                    DiagCode::CoarseDimsNotMonotone,
                    csprintf("dimensions not monotone at index %zu: "
                             "(w=%u, len=%llu) after (w=%u, len=%llu)",
                             i, bb.width,
                             static_cast<unsigned long long>(bb.length),
                             info.dims[i - 1].width,
                             static_cast<unsigned long long>(
                                 info.dims[i - 1].length)),
                    ctx);
            }
        }
    }

    if (prog.entry() != invalidModule) {
        const ModuleScheduleInfo &entry_info =
            psched.modules[prog.entry()];
        if (entry_info.analyzed && !entry_info.dims.empty() &&
            psched.totalCycles != entry_info.bestLength()) {
            out.error(
                DiagCode::CoarseTotalMismatch,
                csprintf("totalCycles=%llu but entry module's best "
                         "length is %llu",
                         static_cast<unsigned long long>(
                             psched.totalCycles),
                         static_cast<unsigned long long>(
                             entry_info.bestLength())),
                {prog.module(prog.entry()).name()});
        }
    }
    return out.numErrors() == errors_before;
}

} // namespace msq
