#include "sched/validator.hh"

#include <vector>

#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

void
validateLeafSchedule(const LeafSchedule &sched, const MultiSimdArch &arch,
                     bool moves_annotated)
{
    const Module &mod = sched.module();
    const auto &steps = sched.steps();

    if (sched.k() != arch.k)
        panic("validate: schedule k differs from architecture k");

    // Invariant 1: coverage; also record each op's timestep.
    constexpr uint64_t unscheduled = ~uint64_t{0};
    std::vector<uint64_t> op_step(mod.numOps(), unscheduled);
    for (uint64_t ts = 0; ts < steps.size(); ++ts) {
        const Timestep &step = steps[ts];
        if (step.regions.size() != arch.k)
            panic(csprintf("validate: step %llu has %zu regions, want %u",
                           static_cast<unsigned long long>(ts),
                           step.regions.size(), arch.k));
        for (unsigned r = 0; r < arch.k; ++r) {
            const RegionSlot &slot = step.regions[r];
            uint64_t qubits_touched = 0;
            for (uint32_t op_index : slot.ops) {
                if (op_index >= mod.numOps())
                    panic("validate: op index out of range");
                if (op_step[op_index] != unscheduled)
                    panic(csprintf("validate: op %u scheduled twice",
                                   op_index));
                op_step[op_index] = ts;
                const Operation &op = mod.op(op_index);
                // Invariant 3: homogeneity.
                if (op.kind != slot.kind) {
                    panic(csprintf(
                        "validate: step %llu region %u mixes %s and %s",
                        static_cast<unsigned long long>(ts), r,
                        gateName(slot.kind), gateName(op.kind)));
                }
                qubits_touched += op.operands.size();
            }
            // Invariant 5: d budget.
            if (qubits_touched > arch.d) {
                panic(csprintf(
                    "validate: step %llu region %u touches %llu qubits, "
                    "budget d=%llu",
                    static_cast<unsigned long long>(ts), r,
                    static_cast<unsigned long long>(qubits_touched),
                    static_cast<unsigned long long>(arch.d)));
            }
        }
        // Invariant 4: qubit exclusivity across the whole timestep.
        std::vector<QubitId> touched;
        for (const auto &slot : step.regions)
            for (uint32_t op_index : slot.ops)
                for (QubitId q : mod.op(op_index).operands)
                    touched.push_back(q);
        std::sort(touched.begin(), touched.end());
        for (size_t i = 1; i < touched.size(); ++i) {
            if (touched[i] == touched[i - 1]) {
                panic(csprintf(
                    "validate: step %llu touches qubit %u twice",
                    static_cast<unsigned long long>(ts), touched[i]));
            }
        }
    }
    for (uint32_t i = 0; i < mod.numOps(); ++i)
        if (op_step[i] == unscheduled)
            panic(csprintf("validate: op %u never scheduled", i));

    // Invariant 2: dependences strictly ordered.
    DepDag dag = DepDag::build(mod);
    for (uint32_t i = 0; i < dag.numNodes(); ++i) {
        for (uint32_t s : dag.succs(i)) {
            if (op_step[s] <= op_step[i]) {
                panic(csprintf(
                    "validate: op %u (step %llu) depends on op %u "
                    "(step %llu)",
                    s, static_cast<unsigned long long>(op_step[s]), i,
                    static_cast<unsigned long long>(op_step[i])));
            }
        }
    }

    if (!moves_annotated)
        return;

    // Invariant 6: movement consistency.
    std::vector<Location> loc(mod.numQubits(), Location::global());
    std::vector<uint64_t> local_count(arch.k, 0);
    for (uint64_t ts = 0; ts < steps.size(); ++ts) {
        const Timestep &step = steps[ts];
        for (const auto &move : step.moves) {
            if (move.qubit >= mod.numQubits())
                panic("validate: move of unknown qubit");
            if (loc[move.qubit] != move.from) {
                panic(csprintf(
                    "validate: step %llu moves qubit %u from %s but it "
                    "is at %s",
                    static_cast<unsigned long long>(ts), move.qubit,
                    move.from.describe().c_str(),
                    loc[move.qubit].describe().c_str()));
            }
            if (move.to == move.from)
                panic("validate: degenerate move");
            if (move.from.isLocalMem())
                --local_count[move.from.region];
            if (move.to.isLocalMem()) {
                unsigned r = move.to.region;
                if (++local_count[r] > arch.localMemCapacity) {
                    panic(csprintf(
                        "validate: step %llu overflows local memory of "
                        "region %u",
                        static_cast<unsigned long long>(ts), r));
                }
            }
            loc[move.qubit] = move.to;
        }
        for (unsigned r = 0; r < arch.k; ++r) {
            for (uint32_t op_index : step.regions[r].ops) {
                for (QubitId q : mod.op(op_index).operands) {
                    if (!(loc[q] == Location::inRegion(r))) {
                        panic(csprintf(
                            "validate: step %llu op %u operand %u not in "
                            "region %u (at %s)",
                            static_cast<unsigned long long>(ts), op_index,
                            q, r, loc[q].describe().c_str()));
                    }
                }
            }
        }
    }
}

} // namespace msq
