/**
 * @file
 * Memoization cache for leaf-module scheduling results (DESIGN.md §9).
 *
 * The hierarchical scheduler (sched/coarse.hh) fine-grain schedules
 * every leaf module at several sweep widths, and flattening routinely
 * produces *structurally identical* leaves (e.g. the outlined rotation
 * modules of Shor's differ only in their angles, which no scheduler
 * looks at). Re-running RCP/LPFS plus communication annotation for each
 * copy is pure waste, so results are shared through this cache.
 *
 * The key captures everything the result depends on:
 *   - the module's structural hash (Module::structuralHash(), which
 *     excludes names and angles) plus its op/qubit counts as cheap
 *     collision guards;
 *   - the leaf scheduler's identity and options (LeafScheduler::
 *     fingerprint());
 *   - the architecture (k is the sweep width; d, local-memory capacity
 *     and EPR bandwidth from the machine model) and the communication
 *     mode.
 *
 * Values are shared via shared_ptr<const LeafScheduleResult>, so a hit
 * costs one refcount bump regardless of schedule size. The cache is
 * thread-safe and may be shared across CoarseScheduler / Toolflow runs
 * (keys are self-contained; nothing run-specific leaks in).
 *
 * Determinism contract: a lookup can only ever return what a miss would
 * have computed — schedulers are deterministic pure functions of
 * (module structure, arch, options) — so cache-on and cache-off runs
 * produce bit-identical ProgramSchedules (tests/test_determinism.cc).
 */

#ifndef MSQ_SCHED_LEAF_CACHE_HH
#define MSQ_SCHED_LEAF_CACHE_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/bounds.hh"
#include "analysis/schedule_summary.hh"
#include "arch/schedule.hh"
#include "sched/comm.hh"
#include "sched/leaf_scheduler.hh"
#include "support/diagnostic.hh"

namespace msq {

/** The cached outcome of scheduling one leaf module at one width. */
struct LeafScheduleResult
{
    /** Movement statistics (totalCycles is the blackbox length). */
    CommStats stats;

    /**
     * How the schedule was obtained (provenance) plus the scheduler's
     * search statistics (sched/leaf_scheduler.hh). Deterministic for
     * the cache key — heuristics always report Heuristic with zeroed
     * counters; OptScheduler's node-budgeted search reports identical
     * numbers on every recomputation — so a hit replays exactly what a
     * miss would have computed.
     */
    ScheduleAttempt attempt;

    /**
     * Streaming fold of the annotated schedule into its compact
     * resource footprint (analysis/schedule_summary.hh) — the unit the
     * paper-scale estimator composes through the repeat algebra. Like
     * `bounds`, a pure function of what the cache key captures, so it
     * is memoized alongside the schedule and a hit never re-folds.
     */
    ResourceSummary summary;

    /**
     * Static makespan lower bounds at this schedule's width
     * (analysis/bounds.hh). Pure function of the module's structure and
     * the arch — exactly what the cache key captures — so bounds are
     * memoized alongside the schedule and a cache hit never recomputes
     * them.
     */
    MakespanBounds bounds;

    /**
     * The annotated schedule in its compact SoA form. Module-free: any
     * structurally identical module can rebind it via
     * LeafSchedule(mod, schedule). Consumers must never mutate through
     * this pointer — LeafSchedule's copy-on-write detaches a private
     * copy first (the cache keeps its own reference alive, so a cached
     * buffer always copies on mutation).
     */
    std::shared_ptr<const ScheduleBuffer> schedule;

    /**
     * Op/qubit counts of the module this result was computed from —
     * the rebind-time collision guard for cross-process reuse. For
     * in-process entries these trivially match the requesting module
     * (the key embeds them); for entries loaded from disk they are an
     * independent copy carried in the entry payload, so a forged or
     * collided key can never silently rebind a wrong schedule
     * (DiagCode::CacheRebindRejected). 0/0 only in hand-built test
     * fixtures that predate persistence; the guard skips those.
     */
    uint64_t opCount = 0;
    uint64_t qubitCount = 0;

    /** @return whether this result may be rebound to @p ops/@p qubits. */
    bool
    matchesModule(uint64_t ops, uint64_t qubits) const
    {
        if (opCount == 0 && qubitCount == 0)
            return true; // legacy fixture without guard fields
        return opCount == ops && qubitCount == qubits;
    }

    /**
     * Schedule-quality ratio totalCycles / bounds.composite(): >= 1.0
     * for any correct scheduler output (1.0 when both are zero — an
     * empty module is trivially optimal).
     */
    double
    optimalityGap() const
    {
        const uint64_t bound = bounds.composite();
        if (bound == 0) {
            return stats.totalCycles == 0
                       ? 1.0
                       : std::numeric_limits<double>::infinity();
        }
        return static_cast<double>(stats.totalCycles) /
               static_cast<double>(bound);
    }
};

/// @name Memoization-key construction
/// Shared by every cache client (CoarseScheduler, the resource
/// estimator) so independently built keys for the same (module,
/// scheduler, arch, mode, width) always collide — which is what lets
/// the estimator reuse schedules the scheduler already computed.
/// @{

/**
 * The width-independent part of a memoization key: the leaf scheduler's
 * identity (@p scheduler_fingerprint, LeafScheduler::fingerprint()) plus
 * every architecture/mode parameter the result depends on.
 */
std::string leafScheduleKeySuffix(const std::string &scheduler_fingerprint,
                                  const MultiSimdArch &arch,
                                  CommMode mode);

/**
 * The full memoization key of scheduling @p mod at @p width under the
 * configuration captured by @p suffix (leafScheduleKeySuffix).
 */
std::string leafScheduleKey(const Module &mod, unsigned width,
                            const std::string &suffix);

/// @}

/** Thread-safe (structural hash, scheduler, arch, width) -> result map. */
class LeafScheduleCache
{
  public:
    /**
     * @return the cached result for @p key, or nullptr on a miss.
     * Counts toward hits()/misses().
     */
    std::shared_ptr<const LeafScheduleResult>
    lookup(const std::string &key);

    /**
     * Publish @p result under @p key. On a concurrent double-compute
     * the first insertion wins and is returned; both computations are
     * identical by the determinism contract, so either is correct. The
     * losing thread's earlier miss is reclassified as a hit, so
     * hits()/misses() totals match the sequential run for any thread
     * count (one miss per distinct key, hits for every other access) —
     * which is what makes the telemetry cache counters part of the
     * determinism contract.
     */
    std::shared_ptr<const LeafScheduleResult>
    insert(const std::string &key,
           std::shared_ptr<const LeafScheduleResult> result);

    /**
     * Publish an entry deserialized from disk. Counts toward loads(),
     * never misses() — preloading is not a compute, so the hit/miss
     * tallies of a warm-started process stay comparable with a cold
     * one (one hit per access, zero misses when fully warm). First
     * insertion wins, exactly like insert(), but a losing load
     * reclassifies nothing: no lookup preceded it.
     * @return false when @p key was already present (entry dropped).
     */
    bool insertLoaded(const std::string &key,
                      std::shared_ptr<const LeafScheduleResult> result);

    /**
     * Drop the entry under @p key (used to evict a poisoned disk entry
     * rejected by the rebind guard, so the recompute's insert() wins).
     * Counters are untouched. @return whether an entry was removed.
     */
    bool remove(const std::string &key);

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }

    /** Entries published via insertLoaded() (disk preloads). */
    uint64_t loads() const { return loads_.load(); }

    /** Entries refused at rebind time by the collision guard. */
    uint64_t rejections() const { return rejections_.load(); }

    /** Count one rebind-guard refusal (sched/coarse.cc). */
    void
    countRejection()
    {
        rejections_.fetch_add(1, std::memory_order_relaxed);
    }

    /** hits / (hits + misses), or 0 when never queried. */
    double hitRate() const;

    /** Number of distinct entries. */
    size_t size() const;

    /** Drop all entries and reset the counters. */
    void clear();

    /**
     * Key-sorted copy of every entry (value pointers shared). The unit
     * saveTo() serializes; sorted so the file bytes are deterministic
     * for a given cache content.
     */
    std::vector<std::pair<std::string,
                          std::shared_ptr<const LeafScheduleResult>>>
    snapshotEntries() const;

    /**
     * Serialize every entry to @p path in the versioned binary format
     * of sched/cache_io.hh (written atomically: temp file + rename).
     * @return the number of entries written, or SIZE_MAX on I/O error
     * (reported through @p diags as a warning when non-null).
     */
    size_t saveTo(const std::string &path,
                  DiagnosticEngine *diags = nullptr) const;

    /**
     * Deserialize @p path and publish every valid entry via
     * insertLoaded(). Corrupt, truncated, or mismatched files/entries
     * are reported through @p diags (stable codes P001-P005) and
     * skipped — never a crash, never a silently wrong schedule.
     * @return the number of entries loaded (0 on a rejected file).
     */
    size_t loadFrom(const std::string &path,
                    DiagnosticEngine *diags = nullptr);

  private:
    mutable std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const LeafScheduleResult>>
        entries;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> loads_{0};
    std::atomic<uint64_t> rejections_{0};
};

} // namespace msq

#endif // MSQ_SCHED_LEAF_CACHE_HH
