#include "sched/comm.hh"

#include <algorithm>
#include <vector>

#include "analysis/qubit_mapping.hh"
#include "support/logging.hh"

namespace msq {

namespace {

/** Per-qubit ordered use sites (timestep, region) within a schedule. */
struct UseLists
{
    std::vector<std::vector<std::pair<uint64_t, unsigned>>> uses;
    std::vector<size_t> cursor; ///< next-use index per qubit

    UseLists(const LeafSchedule &sched)
        : uses(sched.module().numQubits()),
          cursor(sched.module().numQubits(), 0)
    {
        const Module &mod = sched.module();
        for (TimestepView step : sched.steps()) {
            for (RegionSlotView slot : step) {
                unsigned r = slot.region();
                for (uint32_t op_index : slot.ops())
                    for (QubitId q : mod.op(op_index).operands)
                        uses[q].emplace_back(step.index(), r);
            }
        }
    }

    /**
     * Next use strictly after @p ts, or nullptr. Advances the qubit's
     * cursor past every entry at or before @p ts: the analyzer walks
     * timesteps monotonically, so those entries can never satisfy a
     * later query. Sharing one cursor between queries and consumption
     * keeps each use list's total scan work linear (a query-local
     * cursor would re-scan already-consumed entries on every eviction
     * check — quadratic on hot qubits).
     */
    const std::pair<uint64_t, unsigned> *
    nextUseAfter(QubitId q, uint64_t ts)
    {
        size_t &i = cursor[q];
        const auto &list = uses[q];
        while (i < list.size() && list[i].first <= ts)
            ++i;
        return i < list.size() ? &list[i] : nullptr;
    }

    /** Advance cursors past timestep @p ts for the given qubit. */
    void
    consume(QubitId q, uint64_t ts)
    {
        nextUseAfter(q, ts);
    }
};

/** Sentinel for "never touched". */
constexpr int64_t neverTouched = -(1LL << 60);

} // anonymous namespace

CommStats
CommunicationAnalyzer::annotate(LeafSchedule &sched) const
{
    arch.validate();
    CommStats stats;

    // The annotator clears the existing movement annotation (detaching
    // a private buffer copy if the schedule is aliased, e.g. cached);
    // construct it before taking any views so they bind to the buffer
    // that survives.
    MoveAnnotator annot(sched);
    const uint64_t num_steps = sched.computeTimesteps();

    if (mode == CommMode::None) {
        for (uint64_t ts = 0; ts < num_steps; ++ts)
            annot.endStep();
        annot.finish();
        stats.totalCycles = sched.totalCycles(arch);
        return stats;
    }

    const Module &mod = sched.module();
    const bool use_local = mode == CommMode::GlobalWithLocalMem &&
                           arch.localMemCapacity > 0;
    const auto mask_window =
        static_cast<int64_t>(MultiSimdArch::teleportCycles);

    const Topology &topo = arch.topology;
    const bool multi_core = topo.multiCore();
    // Home banks: every qubit starts in (and is evicted back to) its
    // home core's memory. On the flat machine every home is core 0, so
    // this is exactly the historical "all qubits start in global
    // memory"; the validator and comm checker recompute the same
    // mapping independently (it is a pure function of module+topology).
    const std::vector<unsigned> home = computeQubitMapping(mod, topo);
    const TopologyRouter router(topo);
    // Remaining masked inter-core teleports each link can still absorb
    // this timestep — pre-distributed EPR pairs are a per-link, per-step
    // resource. Refilled to the link bandwidth at every step.
    std::vector<uint64_t> link_budget(router.numEdges(), 0);
    std::vector<unsigned> route;

    UseLists uses(sched);

    // All qubits (including ancilla, which are generated at the global
    // memory, §3.2) start in their home core's memory bank.
    std::vector<Location> loc(mod.numQubits(), Location::global());
    if (multi_core)
        for (size_t q = 0; q < loc.size(); ++q)
            loc[q] = Location::inMemory(home[q]);
    std::vector<uint64_t> local_count(sched.k(), 0);

    // Last timestep each qubit was touched (operand or moved); a
    // teleport is masked only when the qubit is quiescent for a full
    // teleport window on the departing side.
    std::vector<int64_t> last_touch(mod.numQubits(), neverTouched);

    // Qubits currently parked inside each region (between uses).
    std::vector<std::vector<QubitId>> parked(sched.k());

    // Per-step operand scratch, reused across steps.
    std::vector<std::vector<QubitId>> operands(sched.k());
    std::vector<QubitId> all_operands;

    for (uint64_t ts = 0; ts < num_steps; ++ts) {
        TimestepView step = sched.step(ts);
        auto now = static_cast<int64_t>(ts);
        bool any_blocking = false;
        bool any_local = false;

        if (multi_core && topo.linkBandwidth != unbounded)
            std::fill(link_budget.begin(), link_budget.end(),
                      topo.linkBandwidth);

        // Single-pass move emission: every move is classified as it is
        // created, so the stats accumulate here instead of re-scanning
        // the step's move slot afterwards.
        auto emit = [&](const Move &move) {
            if (move.isLocal()) {
                ++stats.localMoves;
                any_local = true;
            } else {
                ++stats.teleportMoves;
                if (multi_core && locationCore(move.from, arch) !=
                                      locationCore(move.to, arch))
                    ++stats.interCoreTeleports;
                if (move.blocking) {
                    ++stats.blockingTeleports;
                    any_blocking = true;
                }
            }
            annot.add(move);
        };

        // Operand sets per region for this timestep.
        for (auto &list : operands)
            list.clear();
        all_operands.clear();
        for (RegionSlotView slot : step) {
            unsigned r = slot.region();
            for (uint32_t op_index : slot.ops()) {
                for (QubitId q : mod.op(op_index).operands) {
                    operands[r].push_back(q);
                    all_operands.push_back(q);
                }
            }
            if (!operands[r].empty()) {
                ++stats.activeRegionSteps;
                stats.operandSlots += operands[r].size();
                stats.peakRegionOccupancy =
                    std::max<uint64_t>(stats.peakRegionOccupancy,
                                       operands[r].size());
            }
        }

        // Phase 1 - evictions: a region active this timestep must shed
        // every parked qubit that is not one of its operands. An
        // eviction blocks only when the qubit is needed again within
        // the teleport window; distant reuse is masked by pipelining.
        // Slots are region-sorted, so this visits active regions in
        // ascending order, exactly like the old per-region sweep.
        for (RegionSlotView slot : step) {
            unsigned r = slot.region();
            std::vector<QubitId> keep;
            for (QubitId q : parked[r]) {
                // A qubit operated on anywhere this timestep is not
                // evicted: either it stays (same region) or the fetch
                // phase teleports it region-to-region directly.
                bool is_operand =
                    std::find(all_operands.begin(), all_operands.end(),
                              q) != all_operands.end();
                if (is_operand) {
                    keep.push_back(q);
                    continue;
                }
                const auto *next = uses.nextUseAfter(q, ts);
                bool tight = next && static_cast<int64_t>(next->first) -
                                             now < mask_window;
                bool to_local = use_local && tight && next &&
                                next->second == r &&
                                local_count[r] < arch.localMemCapacity;
                Move move;
                move.qubit = q;
                move.from = Location::inRegion(r);
                if (to_local) {
                    move.to = Location::inLocalMem(r);
                    move.blocking = false;
                    loc[q] = move.to;
                    ++local_count[r];
                } else {
                    // Evictions always target the *current* core's
                    // bank (an intra-core teleport) — going home would
                    // turn every eviction into link traffic.
                    move.to = Location::inMemory(arch.coreOfRegion(r));
                    move.blocking = tight;
                    loc[q] = move.to;
                }
                emit(move);
                last_touch[q] = now;
            }
            parked[r] = std::move(keep);
        }

        // Phase 2 - fetches: bring each operand into its region. A
        // teleport fetch blocks unless the qubit has been quiescent for
        // a full window (its EPR-paired transfer was pipelined ahead).
        for (unsigned r = 0; r < sched.k(); ++r) {
            for (QubitId q : operands[r]) {
                if (loc[q] == Location::inRegion(r)) {
                    last_touch[q] = now;
                    continue;
                }
                Move move;
                move.qubit = q;
                move.from = loc[q];
                move.to = Location::inRegion(r);
                if (move.isLocal()) {
                    move.blocking = false;
                } else if (unsigned from_core =
                               locationCore(move.from, arch),
                           to_core = locationCore(move.to, arch);
                           from_core == to_core) {
                    move.blocking = now - last_touch[q] < mask_window;
                } else {
                    // Inter-core masking needs the EPR pair to have
                    // crossed every link on the route ahead of time:
                    // the quiescence window stretches to the route's
                    // flight time when that exceeds one teleport.
                    unsigned hops = router.dist(from_core, to_core);
                    auto window = std::max<int64_t>(
                        mask_window,
                        static_cast<int64_t>(topo.linkLatency * hops));
                    move.blocking = now - last_touch[q] < window;
                    if (!move.blocking &&
                        topo.linkBandwidth != unbounded) {
                        // Masked teleports draw from each route link's
                        // per-step EPR budget; when any link is
                        // exhausted the move is demoted to blocking
                        // (deterministic emission order, M010 checks
                        // the cap).
                        route.clear();
                        router.routeEdges(from_core, to_core, route);
                        bool fits = true;
                        for (unsigned e : route)
                            if (link_budget[e] == 0)
                                fits = false;
                        if (fits)
                            for (unsigned e : route)
                                --link_budget[e];
                        else
                            move.blocking = true;
                    }
                }
                if (loc[q].isLocalMem())
                    --local_count[loc[q].region];
                if (loc[q].isRegion()) {
                    auto &old = parked[loc[q].region];
                    old.erase(std::find(old.begin(), old.end(), q));
                }
                emit(move);
                loc[q] = move.to;
                parked[r].push_back(q);
                last_touch[q] = now;
            }
        }

        // Advance next-use cursors.
        for (unsigned r = 0; r < sched.k(); ++r)
            for (QubitId q : operands[r])
                uses.consume(q, ts);

        if (any_blocking)
            ++stats.stepsWithBlockingMove;
        else if (any_local)
            ++stats.stepsWithOnlyLocalMoves;

        annot.endStep();
    }

    annot.finish();
    stats.peakBlockingMovesPerStep = sched.peakBlockingMoves();
    stats.totalCycles = sched.totalCycles(arch);
    return stats;
}

} // namespace msq
