#include "sched/leaf_scheduler.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

void
LeafScheduler::checkInputs(const Module &mod, const MultiSimdArch &arch)
{
    arch.validate();
    if (!mod.isLeaf())
        panic("leaf scheduler invoked on non-leaf module " + mod.name());
    for (const auto &op : mod.ops()) {
        if (!isPrimitiveGate(op.kind)) {
            panic(csprintf("leaf scheduler: module %s contains "
                           "non-primitive gate %s; run decomposition "
                           "passes first",
                           mod.name().c_str(), gateName(op.kind)));
        }
        if (opQubitCount(op) > arch.d) {
            panic(csprintf("leaf scheduler: gate %s touches %zu qubits, "
                           "more than region width d",
                           gateName(op.kind), op.operands.size()));
        }
    }
}

LeafSchedule
SequentialScheduler::schedule(const Module &mod,
                              const MultiSimdArch &arch) const
{
    checkInputs(mod, arch);
    ScheduleBuilder builder(mod, arch.k);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        builder.beginStep();
        builder.slot(0).kind = mod.op(i).kind;
        builder.slot(0).ops.push_back(i);
        builder.endStep();
    }
    return builder.finish();
}

} // namespace msq
