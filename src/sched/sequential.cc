#include "sched/leaf_scheduler.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

const char *
scheduleProvenanceName(ScheduleProvenance provenance)
{
    switch (provenance) {
      case ScheduleProvenance::Heuristic:
        return "heuristic";
      case ScheduleProvenance::Optimal:
        return "optimal";
      case ScheduleProvenance::Fallback:
        return "fallback";
    }
    panic("scheduleProvenanceName: invalid provenance");
}

void
LeafScheduler::checkInputs(const Module &mod, const MultiSimdArch &arch)
{
    arch.validate();
    if (!mod.isLeaf())
        panic("leaf scheduler invoked on non-leaf module " + mod.name());
    for (const auto &op : mod.ops()) {
        if (!isPrimitiveGate(op.kind)) {
            panic(csprintf("leaf scheduler: module %s contains "
                           "non-primitive gate %s; run decomposition "
                           "passes first",
                           mod.name().c_str(), gateName(op.kind)));
        }
        if (opQubitCount(op) > arch.d) {
            panic(csprintf("leaf scheduler: gate %s touches %zu qubits, "
                           "more than region width d",
                           gateName(op.kind), op.operands.size()));
        }
        // Repeated operands would make opQubitCount() disagree with the
        // set of qubits actually occupied (and with the bound side's
        // operand-touch accounting); such gates are ill-formed (V003)
        // and must never reach a scheduler.
        std::vector<QubitId> sorted(op.operands);
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end()) {
            panic(csprintf("leaf scheduler: gate %s in module %s names "
                           "the same qubit twice; reject with V003 in "
                           "the IR verifier first",
                           gateName(op.kind), mod.name().c_str()));
        }
    }
}

LeafSchedule
SequentialScheduler::schedule(const Module &mod,
                              const MultiSimdArch &arch) const
{
    checkInputs(mod, arch);
    ScheduleBuilder builder(mod, arch.k);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        builder.beginStep();
        builder.slot(0).kind = mod.op(i).kind;
        builder.slot(0).ops.push_back(i);
        builder.endStep();
    }
    return builder.finish();
}

} // namespace msq
