/**
 * @file
 * Longest Path First Scheduling (LPFS) — paper §4.2, Algorithm 2.
 *
 * Many quantum benchmarks are mostly serial: critical-path speedup is only
 * ~1.5x, but long single-qubit chains (e.g. decomposed rotations) offer a
 * locality opportunity. LPFS dedicates l of the k SIMD regions to the l
 * longest paths of the dependence DAG and pins those paths in place, so
 * path qubits rarely move. Remaining regions execute operations from a
 * free list, grouped by type for SIMD data parallelism.
 *
 * Options (paper runs l = 1 with both enabled):
 *  - SIMD: a path region may also execute free-list ops of the same type
 *    as its path op, and may execute arbitrary free-list ops (one type)
 *    in timesteps where its path op is stalled on dependences;
 *  - Refill: when a path is exhausted, a new longest path is extracted
 *    from the currently-ready frontier and assigned to the idle region.
 */

#ifndef MSQ_SCHED_LPFS_HH
#define MSQ_SCHED_LPFS_HH

#include "sched/leaf_scheduler.hh"

namespace msq {

/** The LPFS fine-grained scheduler. */
class LpfsScheduler : public LeafScheduler
{
  public:
    struct Options
    {
        unsigned l = 1;    ///< regions dedicated to longest paths
                           ///< (clamped to k at schedule time)
        bool simd = true;  ///< opportunistic same-type / stall filling
        bool refill = true; ///< re-extract paths when one completes
    };

    LpfsScheduler() : LpfsScheduler(Options{}) {}
    explicit LpfsScheduler(Options options) : options(options) {}

    const char *name() const override { return "lpfs"; }
    std::string fingerprint() const override;
    LeafSchedule schedule(const Module &mod,
                          const MultiSimdArch &arch) const override;

  private:
    Options options;
};

} // namespace msq

#endif // MSQ_SCHED_LPFS_HH
