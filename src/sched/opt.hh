/**
 * @file
 * Branch-and-bound optimal leaf scheduler (ROADMAP open item 2).
 *
 * OptScheduler searches for a leaf schedule whose *annotated* makespan
 * equals the static lower bound from analysis/bounds — the same
 * critical-path / resource / Fernandez-interval composite the B-checker
 * certifies schedules against. Because every valid schedule satisfies
 *
 *     totalCycles = computeSteps + movementCycles >= computeSteps >= LB,
 *
 * a schedule with totalCycles == LB is provably minimum-makespan; the
 * certificate is self-validating and independent of any restriction the
 * search applies. The search therefore enumerates only LB-step packings
 * of the dependence DAG (depth-first over timesteps, most-parallel
 * children first), prunes with the same bounds it certifies against
 * plus a dominance table over scheduled-set frontiers, and accepts the
 * first completed packing whose communication annotation adds zero
 * movement cycles.
 *
 * Exploration is budgeted by an explicit **node budget**, not
 * wall-clock, so results are bit-identical across machines, thread
 * counts, and cache states (the PR 3 determinism contract); the budget
 * is part of fingerprint(), making it safe as a memoization key. When
 * the budget is exhausted — or the leaf exceeds the size cap, or no
 * LB-step zero-communication packing exists in the searched space —
 * the scheduler deterministically returns the configured RCP/LPFS
 * fallback schedule and reports ScheduleProvenance::Fallback; proofs
 * report ScheduleProvenance::Optimal.
 */

#ifndef MSQ_SCHED_OPT_HH
#define MSQ_SCHED_OPT_HH

#include <cstdint>

#include "sched/leaf_scheduler.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"

namespace msq {

/** Which heuristic serves as the fallback tier. */
enum class OptFallback : uint8_t {
    Rcp,
    Lpfs,
};

/** @return "rcp" / "lpfs". */
const char *optFallbackName(OptFallback fallback);

/** The branch-and-bound optimal leaf scheduler with heuristic fallback. */
class OptScheduler : public LeafScheduler
{
  public:
    struct Options
    {
        /**
         * Branch-and-bound nodes (timestep assignments) to expand
         * before giving up. A node count — never wall-clock — keeps the
         * outcome a pure function of the input.
         */
        uint64_t nodeBudget = 200'000;

        /** Leaves with more ops go straight to the fallback tier. */
        uint32_t maxOps = 256;

        /**
         * Communication mode the candidate annotation (and so the
         * optimality certificate) is judged under. Must match the mode
         * the surrounding CoarseScheduler costs schedules with.
         */
        CommMode commMode = CommMode::Global;

        /** Heuristic used on budget exhaustion / oversized leaves. */
        OptFallback fallback = OptFallback::Lpfs;
    };

    OptScheduler() : OptScheduler(Options{}) {}
    explicit OptScheduler(Options options) : options(options) {}

    const char *name() const override { return "opt"; }
    std::string fingerprint() const override;
    LeafSchedule schedule(const Module &mod,
                          const MultiSimdArch &arch) const override;
    LeafSchedule scheduleWithAttempt(const Module &mod,
                                     const MultiSimdArch &arch,
                                     ScheduleAttempt &attempt)
        const override;

  private:
    const LeafScheduler &fallbackScheduler() const;

    Options options;
    RcpScheduler rcp;
    LpfsScheduler lpfs;
};

} // namespace msq

#endif // MSQ_SCHED_OPT_HH
