#include "sched/cache_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "support/strings.hh"

namespace msq {

const char cacheFileMagic[4] = {'M', 'S', 'Q', 'C'};

uint64_t
fnv1a64(const void *data, size_t size)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

namespace {

// ---------------------------------------------------------------------
// Little-endian byte codecs. Integers are assembled/disassembled with
// shifts — never memcpy'd — so the on-disk format is host-independent.
// ---------------------------------------------------------------------

struct ByteWriter
{
    std::vector<uint8_t> &out;

    void
    u8(uint8_t v)
    {
        out.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        out.push_back(static_cast<uint8_t>(v));
        out.push_back(static_cast<uint8_t>(v >> 8));
        out.push_back(static_cast<uint8_t>(v >> 16));
        out.push_back(static_cast<uint8_t>(v >> 24));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
    }
};

/** Bounds-checked reader: every accessor reports success so truncation
 * can never read past the buffer (the ok flag latches false). */
struct ByteReader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    bool
    need(size_t n)
    {
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        return true;
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = static_cast<uint32_t>(data[pos]) |
                     (static_cast<uint32_t>(data[pos + 1]) << 8) |
                     (static_cast<uint32_t>(data[pos + 2]) << 16) |
                     (static_cast<uint32_t>(data[pos + 3]) << 24);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::string
    str()
    {
        uint32_t len = u32();
        if (!need(len))
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), len);
        pos += len;
        return s;
    }
};

void
writeLocation(ByteWriter &w, const Location &loc)
{
    w.u8(static_cast<uint8_t>(loc.kind));
    w.u32(loc.region);
}

Location
readLocation(ByteReader &r, bool &valid, unsigned k)
{
    Location loc;
    uint8_t kind = r.u8();
    loc.region = r.u32();
    if (kind > static_cast<uint8_t>(Location::Kind::LocalMemory)) {
        valid = false;
        return loc;
    }
    loc.kind = static_cast<Location::Kind>(kind);
    if (!loc.isGlobal() && loc.region >= k)
        valid = false;
    return loc;
}

/** Full structural validation of a deserialized buffer — everything the
 * ScheduleBuffer invariant list promises, so downstream consumers never
 * see a malformed cached schedule (they assume the invariants). */
bool
validateBuffer(const ScheduleBuffer &buf, uint64_t op_count)
{
    const uint64_t steps = buf.numSteps();
    if (buf.moveEnd.size() != steps)
        return false;
    if (buf.activeWords.size() != steps * buf.wordsPerStep())
        return false;

    uint32_t prevSlotEnd = 0;
    for (uint64_t s = 0; s < steps; ++s) {
        if (buf.slotEnd[s] < prevSlotEnd ||
            buf.slotEnd[s] > buf.slots.size())
            return false;
        prevSlotEnd = buf.slotEnd[s];
        if (s > 0 && buf.moveEnd[s] < buf.moveEnd[s - 1])
            return false;
        if (buf.moveEnd[s] > buf.moves.size())
            return false;
    }
    if (steps > 0 && (buf.slotEnd.back() != buf.slots.size() ||
                      buf.moveEnd.back() != buf.moves.size()))
        return false;
    if (steps == 0 && (!buf.slots.empty() || !buf.moves.empty() ||
                       !buf.ops.empty()))
        return false;

    // Slots: region-sorted within each step, valid kinds, non-empty op
    // ranges tiling the op stream; bitmap mirrors the slots exactly.
    std::vector<uint64_t> words(buf.activeWords.size(), 0);
    uint32_t prevOpEnd = 0;
    for (uint64_t s = 0; s < steps; ++s) {
        uint32_t begin = buf.slotBegin(s);
        uint32_t end = buf.slotEnd[s];
        unsigned prevRegion = 0;
        for (uint32_t i = begin; i < end; ++i) {
            const ScheduleBuffer::Slot &slot = buf.slots[i];
            if (slot.region >= buf.k)
                return false;
            if (i > begin && slot.region <= prevRegion)
                return false;
            prevRegion = slot.region;
            if (static_cast<uint8_t>(slot.kind) >=
                static_cast<uint8_t>(GateKind::NumKinds))
                return false;
            if (slot.opEnd <= prevOpEnd || slot.opEnd > buf.ops.size())
                return false;
            prevOpEnd = slot.opEnd;
            words[s * buf.wordsPerStep() + slot.region / 64] |=
                uint64_t(1) << (slot.region % 64);
        }
    }
    if (!buf.slots.empty() && buf.slots.back().opEnd != buf.ops.size())
        return false;
    if (words != buf.activeWords)
        return false;

    // Op indices must land inside the module the entry claims to be
    // for (opCount is the rebind collision guard; 0 in legacy test
    // fixtures, where an empty op stream is the only valid content).
    for (uint32_t op : buf.ops)
        if (op >= op_count)
            return false;
    return true;
}

/**
 * Parse the guard fields back out of a memoization key
 * (leafScheduleKey: "hash|ops|qubits|w=width|fingerprint|d=..."), so a
 * loaded payload can be cross-checked against the key it is filed
 * under. @return false when the key does not have that shape.
 */
bool
parseKeyGuards(const std::string &key, uint64_t &ops, uint64_t &qubits,
               std::string &suffix)
{
    size_t p1 = key.find('|');
    if (p1 == std::string::npos)
        return false;
    size_t p2 = key.find('|', p1 + 1);
    if (p2 == std::string::npos)
        return false;
    size_t p3 = key.find('|', p2 + 1);
    if (p3 == std::string::npos)
        return false;
    size_t p4 = key.find('|', p3 + 1);
    if (p4 == std::string::npos)
        return false;
    try {
        ops = std::stoull(key.substr(p1 + 1, p2 - p1 - 1));
        qubits = std::stoull(key.substr(p2 + 1, p3 - p2 - 1));
    } catch (...) {
        return false;
    }
    if (key.compare(p3 + 1, 2, "w=") != 0)
        return false;
    suffix = key.substr(p4 + 1);
    return true;
}

} // anonymous namespace

void
serializeLeafResult(const LeafScheduleResult &result,
                    const std::string &fingerprint,
                    const std::string &arch_fingerprint,
                    std::vector<uint8_t> &out)
{
    ByteWriter w{out};
    w.u64(result.opCount);
    w.u64(result.qubitCount);
    w.str(fingerprint);
    w.str(arch_fingerprint);

    const CommStats &cs = result.stats;
    w.u64(cs.teleportMoves);
    w.u64(cs.blockingTeleports);
    w.u64(cs.localMoves);
    w.u64(cs.stepsWithBlockingMove);
    w.u64(cs.stepsWithOnlyLocalMoves);
    w.u64(cs.peakBlockingMovesPerStep);
    w.u64(cs.totalCycles);
    w.u64(cs.activeRegionSteps);
    w.u64(cs.operandSlots);
    w.u64(cs.peakRegionOccupancy);
    w.u64(cs.interCoreTeleports);

    const ScheduleAttempt &at = result.attempt;
    w.u8(static_cast<uint8_t>(at.provenance));
    w.u64(at.nodesExpanded);
    w.u64(at.prunedByCriticalPath);
    w.u64(at.prunedByResource);
    w.u64(at.prunedByDominance);
    w.u64(at.candidatesAnnotated);

    const ResourceSummary &rs = result.summary;
    w.u64(rs.gateOps);
    w.u64(rs.serialCycles);
    w.u64(rs.commCycles);
    w.u64(rs.teleportMoves);
    w.u64(rs.blockingTeleports);
    w.u64(rs.localMoves);
    w.u64(rs.stepsWithBlockingMove);
    w.u64(rs.stepsWithOnlyLocalMoves);
    w.u64(rs.activeRegionSteps);
    w.u64(rs.operandTouches);
    w.u64(rs.peakRegionOccupancy);
    w.u64(rs.peakBlockingMovesPerStep);
    w.u64(rs.peakActiveRegions);
    w.u64(rs.callInvocations);
    w.u64(rs.interCoreTeleports);
    w.u64(rs.occupancy.size());
    for (uint64_t bucket : rs.occupancy)
        w.u64(bucket);
    w.u8(rs.saturated ? 1 : 0);

    const MakespanBounds &mb = result.bounds;
    w.u64(mb.criticalPath);
    w.u64(mb.resource);
    w.u64(mb.interval);
    w.u8(mb.saturated ? 1 : 0);

    const ScheduleBuffer &buf = *result.schedule;
    w.u32(buf.k);
    w.u64(buf.numSteps());
    w.u64(buf.slots.size());
    for (const ScheduleBuffer::Slot &slot : buf.slots) {
        w.u32(slot.opEnd);
        w.u32(slot.region);
        w.u8(static_cast<uint8_t>(slot.kind));
    }
    for (uint32_t end : buf.slotEnd)
        w.u32(end);
    w.u64(buf.ops.size());
    for (uint32_t op : buf.ops)
        w.u32(op);
    w.u64(buf.moves.size());
    for (const Move &move : buf.moves) {
        w.u32(move.qubit);
        writeLocation(w, move.from);
        writeLocation(w, move.to);
        w.u8(move.blocking ? 1 : 0);
    }
    for (uint64_t end : buf.moveEnd)
        w.u64(end);
    for (uint64_t word : buf.activeWords)
        w.u64(word);
}

std::shared_ptr<LeafScheduleResult>
deserializeLeafResult(const uint8_t *data, size_t size,
                      std::string &fingerprint,
                      std::string &arch_fingerprint,
                      uint32_t version)
{
    ByteReader r{data, size};
    auto result = std::make_shared<LeafScheduleResult>();

    result->opCount = r.u64();
    result->qubitCount = r.u64();
    fingerprint = r.str();
    // Version 1 predates the arch-fingerprint guard and the inter-core
    // counters; its entries decode with both defaulted (correct for the
    // one-core schedules a v1 process produced).
    arch_fingerprint = version >= 2 ? r.str() : std::string();

    CommStats &cs = result->stats;
    cs.teleportMoves = r.u64();
    cs.blockingTeleports = r.u64();
    cs.localMoves = r.u64();
    cs.stepsWithBlockingMove = r.u64();
    cs.stepsWithOnlyLocalMoves = r.u64();
    cs.peakBlockingMovesPerStep = r.u64();
    cs.totalCycles = r.u64();
    cs.activeRegionSteps = r.u64();
    cs.operandSlots = r.u64();
    cs.peakRegionOccupancy = r.u64();
    cs.interCoreTeleports = version >= 2 ? r.u64() : 0;

    ScheduleAttempt &at = result->attempt;
    uint8_t provenance = r.u8();
    if (provenance > static_cast<uint8_t>(ScheduleProvenance::Fallback))
        return nullptr;
    at.provenance = static_cast<ScheduleProvenance>(provenance);
    at.nodesExpanded = r.u64();
    at.prunedByCriticalPath = r.u64();
    at.prunedByResource = r.u64();
    at.prunedByDominance = r.u64();
    at.candidatesAnnotated = r.u64();

    ResourceSummary &rs = result->summary;
    rs.gateOps = r.u64();
    rs.serialCycles = r.u64();
    rs.commCycles = r.u64();
    rs.teleportMoves = r.u64();
    rs.blockingTeleports = r.u64();
    rs.localMoves = r.u64();
    rs.stepsWithBlockingMove = r.u64();
    rs.stepsWithOnlyLocalMoves = r.u64();
    rs.activeRegionSteps = r.u64();
    rs.operandTouches = r.u64();
    rs.peakRegionOccupancy = r.u64();
    rs.peakBlockingMovesPerStep = r.u64();
    rs.peakActiveRegions = r.u64();
    rs.callInvocations = r.u64();
    rs.interCoreTeleports = version >= 2 ? r.u64() : 0;
    uint64_t buckets = r.u64();
    // An absurd bucket count means a corrupt length field — refuse
    // before std::vector::resize turns it into a bad_alloc.
    if (!r.ok || buckets > r.size - r.pos)
        return nullptr;
    rs.occupancy.resize(buckets);
    for (uint64_t i = 0; i < buckets; ++i)
        rs.occupancy[i] = r.u64();
    rs.saturated = r.u8() != 0;

    MakespanBounds &mb = result->bounds;
    mb.criticalPath = r.u64();
    mb.resource = r.u64();
    mb.interval = r.u64();
    mb.saturated = r.u8() != 0;

    auto buf = std::make_shared<ScheduleBuffer>();
    buf->k = r.u32();
    uint64_t steps = r.u64();
    uint64_t slots = r.u64();
    if (!r.ok || slots > (r.size - r.pos) / 9 ||
        steps > (r.size - r.pos) / 4)
        return nullptr;
    buf->slots.resize(slots);
    bool valid = true;
    for (uint64_t i = 0; i < slots; ++i) {
        ScheduleBuffer::Slot &slot = buf->slots[i];
        slot.opEnd = r.u32();
        slot.region = r.u32();
        slot.kind = static_cast<GateKind>(r.u8());
    }
    buf->slotEnd.resize(steps);
    for (uint64_t i = 0; i < steps; ++i)
        buf->slotEnd[i] = r.u32();
    uint64_t ops = r.u64();
    if (!r.ok || ops > (r.size - r.pos) / 4)
        return nullptr;
    buf->ops.resize(ops);
    for (uint64_t i = 0; i < ops; ++i)
        buf->ops[i] = r.u32();
    uint64_t moves = r.u64();
    if (!r.ok || moves > (r.size - r.pos) / 15)
        return nullptr;
    buf->moves.resize(moves);
    for (uint64_t i = 0; i < moves; ++i) {
        Move &move = buf->moves[i];
        move.qubit = r.u32();
        move.from = readLocation(r, valid, buf->k);
        move.to = readLocation(r, valid, buf->k);
        move.blocking = r.u8() != 0;
    }
    if (!r.ok || steps > (r.size - r.pos) / 8)
        return nullptr;
    buf->moveEnd.resize(steps);
    for (uint64_t i = 0; i < steps; ++i)
        buf->moveEnd[i] = r.u64();
    uint64_t words = steps * buf->wordsPerStep();
    if (!r.ok || words > (r.size - r.pos) / 8)
        return nullptr;
    buf->activeWords.resize(words);
    for (uint64_t i = 0; i < words; ++i)
        buf->activeWords[i] = r.u64();

    if (!r.ok || r.pos != r.size || !valid)
        return nullptr;
    // Legacy fixtures (opCount == 0) carry no guard; their op stream
    // must then be validated against itself only when non-empty.
    uint64_t opGuard = result->opCount;
    if (opGuard == 0 && !buf->ops.empty()) {
        opGuard = 0;
        for (uint32_t op : buf->ops)
            opGuard = std::max<uint64_t>(opGuard, uint64_t(op) + 1);
    }
    if (!validateBuffer(*buf, opGuard))
        return nullptr;
    result->schedule = std::move(buf);
    return result;
}

size_t
LeafScheduleCache::saveTo(const std::string &path,
                          DiagnosticEngine *diags) const
{
    auto snapshot = snapshotEntries();

    std::vector<uint8_t> bytes;
    ByteWriter w{bytes};
    bytes.insert(bytes.end(), cacheFileMagic, cacheFileMagic + 4);
    w.u32(cacheFileVersion);
    w.u32(cacheFileEndianTag);
    w.u64(snapshot.size());

    std::vector<uint8_t> payload;
    for (const auto &[key, result] : snapshot) {
        payload.clear();
        std::string suffix;
        uint64_t keyOps = 0, keyQubits = 0;
        parseKeyGuards(key, keyOps, keyQubits, suffix);
        // The stored fingerprints are the key suffix's leading token
        // (scheduler identity) and the architecture fragment between it
        // and the trailing comm-mode token (leafScheduleKeySuffix:
        // "schedfp|<arch fingerprint>|mode", where the arch fragment
        // may itself contain '|'s).
        std::string fingerprint = suffix.substr(0, suffix.find('|'));
        std::string archFp;
        size_t fp_end = suffix.find('|');
        size_t mode_sep = suffix.rfind('|');
        if (fp_end != std::string::npos && mode_sep > fp_end)
            archFp = suffix.substr(fp_end + 1, mode_sep - fp_end - 1);
        serializeLeafResult(*result, fingerprint, archFp, payload);
        w.str(key);
        w.u64(payload.size());
        w.u64(fnv1a64(payload.data(), payload.size()));
        bytes.insert(bytes.end(), payload.begin(), payload.end());
    }

    // Atomic publish: write a sibling temp file, then rename over the
    // target, so a concurrent loadFrom never sees a half-written file.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(reinterpret_cast<const char *>(bytes.data()),
                       static_cast<std::streamsize>(bytes.size()))) {
            if (diags)
                diags->report(DiagCode::CacheFileTruncated,
                              "cannot write cache file " + tmp);
            std::remove(tmp.c_str());
            return SIZE_MAX;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (diags)
            diags->report(DiagCode::CacheFileTruncated,
                          "cannot rename " + tmp + " to " + path);
        std::remove(tmp.c_str());
        return SIZE_MAX;
    }
    return snapshot.size();
}

size_t
LeafScheduleCache::loadFrom(const std::string &path,
                            DiagnosticEngine *diags)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (diags)
            diags->report(DiagCode::CacheFileTruncated,
                          "cannot open cache file " + path);
        return 0;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());

    ByteReader r{bytes.data(), bytes.size()};
    if (!r.need(4) ||
        std::memcmp(bytes.data(), cacheFileMagic, 4) != 0) {
        if (diags)
            diags->report(DiagCode::CacheFileBadMagic,
                          path + " is not a leaf-cache file");
        return 0;
    }
    r.pos = 4;
    uint32_t version = r.u32();
    uint32_t endianTag = r.u32();
    if (!r.ok || version < cacheFileMinVersion ||
        version > cacheFileVersion ||
        endianTag != cacheFileEndianTag) {
        if (diags)
            diags->report(DiagCode::CacheFileBadVersion,
                          csprintf("%s: version %u (supported: %u-%u)",
                                   path.c_str(), version,
                                   cacheFileMinVersion,
                                   cacheFileVersion));
        return 0;
    }
    uint64_t entryCount = r.u64();

    size_t loaded = 0;
    for (uint64_t e = 0; e < entryCount; ++e) {
        std::string key = r.str();
        uint64_t payloadLen = r.u64();
        uint64_t checksum = r.u64();
        if (!r.ok || !r.need(payloadLen)) {
            if (diags)
                diags->report(
                    DiagCode::CacheFileTruncated,
                    csprintf("%s: file ends inside entry %llu of %llu",
                             path.c_str(),
                             static_cast<unsigned long long>(e),
                             static_cast<unsigned long long>(
                                 entryCount)));
            return loaded;
        }
        const uint8_t *payload = bytes.data() + r.pos;
        r.pos += payloadLen;

        if (fnv1a64(payload, payloadLen) != checksum) {
            if (diags)
                diags->report(DiagCode::CacheEntryCorrupt,
                              "checksum mismatch for key " + key);
            continue;
        }
        std::string fingerprint;
        std::string archFp;
        auto result = deserializeLeafResult(payload, payloadLen,
                                            fingerprint, archFp,
                                            version);
        if (!result) {
            if (diags)
                diags->report(DiagCode::CacheEntryCorrupt,
                              "invalid entry payload for key " + key);
            continue;
        }

        // Cross-check the payload's guard fields against the key the
        // entry is filed under: a forged or collided key must never
        // publish a schedule for the wrong module/scheduler.
        uint64_t keyOps = 0, keyQubits = 0;
        std::string suffix;
        if (!parseKeyGuards(key, keyOps, keyQubits, suffix)) {
            if (diags)
                diags->report(DiagCode::CacheEntryKeyMismatch,
                              "unparseable cache key " + key);
            continue;
        }
        bool guardOk = keyOps == result->opCount &&
                       keyQubits == result->qubitCount;
        if (guardOk && !fingerprint.empty() &&
            suffix.compare(0, fingerprint.size(), fingerprint) != 0)
            guardOk = false;
        // P007: an entry whose stored arch fingerprint disagrees with
        // its own key was saved under a different topology — refuse it
        // (a v1 entry has no stored fingerprint and skips this check;
        // its key still guards everything the flat machine depends on).
        if (guardOk && !archFp.empty() &&
            suffix.find(archFp) == std::string::npos) {
            if (diags)
                diags->report(
                    DiagCode::CacheTopologyMismatch,
                    csprintf("stored arch fingerprint \"%s\" disagrees "
                             "with key %s; entry skipped",
                             archFp.c_str(), key.c_str()));
            continue;
        }
        if (!guardOk) {
            if (diags)
                diags->report(
                    DiagCode::CacheEntryKeyMismatch,
                    csprintf("stored guards (%llu ops, %llu qubits, "
                             "\"%s\") disagree with key %s",
                             static_cast<unsigned long long>(
                                 result->opCount),
                             static_cast<unsigned long long>(
                                 result->qubitCount),
                             fingerprint.c_str(), key.c_str()));
            continue;
        }

        if (insertLoaded(key, std::move(result)))
            ++loaded;
    }
    return loaded;
}

} // namespace msq
