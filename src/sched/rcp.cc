#include "sched/rcp.hh"

#include "sched/core_affinity.hh"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

#include "ir/dag.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

constexpr int inMemory = -1;

/** Mutable per-run scheduling state. */
struct RcpState
{
    const Module &mod;
    const MultiSimdArch &arch;
    DepDag dag;
    std::vector<int64_t> dynSlack;     ///< decays while an op waits ready
    std::vector<uint32_t> pendingPreds;
    /** Ready ops, kept sorted by op index: every tie in the weight scan
     * and the candidate sort below resolves to the lowest op index, so
     * the schedule is a canonical function of the module content with
     * no reliance on incidental release order. */
    std::vector<uint32_t> ready;
    std::array<uint32_t, numGateKinds> readyCount{};
    std::vector<int> qubitRegion; ///< region holding each qubit, or memory

    RcpState(const Module &mod, const MultiSimdArch &arch)
        : mod(mod), arch(arch), dag(DepDag::build(mod)),
          qubitRegion(mod.numQubits(), inMemory)
    {
        auto static_slack = dag.slack();
        dynSlack.assign(static_slack.begin(), static_slack.end());
        pendingPreds.resize(dag.numNodes());
        for (uint32_t i = 0; i < dag.numNodes(); ++i)
            pendingPreds[i] = static_cast<uint32_t>(dag.preds(i).size());
        for (uint32_t root : dag.roots())
            pushReady(root); // roots() is ascending; ready starts sorted
    }

    void
    pushReady(uint32_t op)
    {
        ready.push_back(op);
        ++readyCount[static_cast<size_t>(mod.op(op).kind)];
    }

    /** @return true when op has an operand resident in region r. */
    bool
    inPlace(uint32_t op, unsigned r) const
    {
        for (QubitId q : mod.op(op).operands)
            if (qubitRegion[q] == static_cast<int>(r))
                return true;
        return false;
    }
};

} // anonymous namespace

std::string
RcpScheduler::fingerprint() const
{
    return csprintf("rcp(op=%g,dist=%g,slack=%g)", weights.op,
                    weights.dist, weights.slack);
}

LeafSchedule
RcpScheduler::schedule(const Module &mod, const MultiSimdArch &arch) const
{
    checkInputs(mod, arch);
    ScheduleBuilder builder(mod, arch.k);
    if (mod.numOps() == 0)
        return builder.finish();

    RcpState st(mod, arch);

    // Hoisted per-step scratch: cleared each iteration, capacity kept.
    std::vector<bool> region_used(arch.k, false);
    std::vector<uint32_t> scheduled_now;
    std::vector<uint32_t> candidates;
    std::vector<uint32_t> released;

    while (!st.ready.empty()) {
        builder.beginStep();
        region_used.assign(arch.k, false);
        unsigned regions_left = arch.k;
        scheduled_now.clear();

        // getMaxWeightSimdOpType + extract loop (Algorithm 1 inner loop).
        while (regions_left > 0 && !st.ready.empty()) {
            // Pick the (op type, region) with the highest weight. For a
            // given op the weight over regions differs only by whether
            // the op has an operand resident in an available region, so
            // scanning each op's operand regions suffices.
            double best_weight = -1e300;
            int best_region = -1;
            GateKind best_kind = GateKind::X;
            for (uint32_t op_index : st.ready) {
                const Operation &op = st.mod.op(op_index);
                auto kind_index = static_cast<size_t>(op.kind);
                double base =
                    weights.op *
                        static_cast<double>(st.readyCount[kind_index]) -
                    weights.slack *
                        static_cast<double>(st.dynSlack[op_index]);
                // Preferred region: one that already holds an operand.
                int preferred = -1;
                for (QubitId q : op.operands) {
                    int r = st.qubitRegion[q];
                    if (r >= 0 && !region_used[r]) {
                        preferred = r;
                        break;
                    }
                }
                double weight = base + (preferred >= 0 ? weights.dist : 0.0);
                // Strict '>' over the index-sorted ready list: weight
                // ties resolve to the lowest op index, never to
                // incidental release order.
                if (weight > best_weight) {
                    best_weight = weight;
                    best_kind = op.kind;
                    if (preferred >= 0) {
                        best_region = preferred;
                    } else {
                        best_region = -1; // any free region
                    }
                }
            }
            if (best_region < 0) {
                for (unsigned r = 0; r < arch.k; ++r) {
                    if (!region_used[r]) {
                        best_region = static_cast<int>(r);
                        break;
                    }
                }
            }

            // extract_optype: gather ready ops of the winning type,
            // in-place ops first, then most critical (lowest slack).
            candidates.clear();
            for (uint32_t op_index : st.ready)
                if (st.mod.op(op_index).kind == best_kind)
                    candidates.push_back(op_index);
            auto r_unsigned = static_cast<unsigned>(best_region);
            std::sort(
                candidates.begin(), candidates.end(),
                [&](uint32_t a, uint32_t b) {
                    bool a_in = st.inPlace(a, r_unsigned);
                    bool b_in = st.inPlace(b, r_unsigned);
                    if (a_in != b_in)
                        return a_in;
                    if (st.dynSlack[a] != st.dynSlack[b])
                        return st.dynSlack[a] < st.dynSlack[b];
                    return a < b; // explicit op-index tie-break
                });

            ScheduleBuilder::DraftSlot &slot = builder.slot(r_unsigned);
            slot.kind = best_kind;
            uint64_t qubit_budget = st.arch.d;
            for (uint32_t op_index : candidates) {
                uint64_t need = opQubitCount(st.mod.op(op_index));
                if (need > qubit_budget)
                    break;
                qubit_budget -= need;
                slot.ops.push_back(op_index);
                scheduled_now.push_back(op_index);
            }
            if (slot.ops.empty())
                panic("RCP: selected region accepted no operations");

            // Retire the region and drop scheduled ops from the ready
            // list.
            region_used[r_unsigned] = true;
            --regions_left;
            for (uint32_t op_index : slot.ops) {
                st.ready.erase(std::find(st.ready.begin(), st.ready.end(),
                                         op_index));
                --st.readyCount[static_cast<size_t>(best_kind)];
            }
        }

        // updateRcpq: operand qubits now live in their regions; newly
        // dependence-free children become ready next timestep; waiting
        // ops grow more urgent.
        for (unsigned r = 0; r < arch.k; ++r) {
            for (uint32_t op_index : builder.slot(r).ops)
                for (QubitId q : st.mod.op(op_index).operands)
                    st.qubitRegion[q] = static_cast<int>(r);
        }
        for (int64_t &slack : st.dynSlack) {
            // Only ops still waiting matter; decrementing all is harmless
            // and cheaper than tracking membership.
            if (slack > 0)
                --slack;
        }
        // Release in canonical op-index order and merge into the sorted
        // ready list (erase above preserved its order), not in the
        // incidental region-commit order of this step.
        released.clear();
        for (uint32_t op_index : scheduled_now) {
            for (uint32_t succ : st.dag.succs(op_index)) {
                if (--st.pendingPreds[succ] == 0)
                    released.push_back(succ);
            }
        }
        std::sort(released.begin(), released.end());
        auto mid = static_cast<std::ptrdiff_t>(st.ready.size());
        for (uint32_t succ : released)
            st.pushReady(succ);
        std::inplace_merge(st.ready.begin(), st.ready.begin() + mid,
                           st.ready.end());
        builder.endStep();
    }

    return applyCoreAffinity(builder.finish(), arch);
}

} // namespace msq
