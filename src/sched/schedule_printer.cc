#include "sched/schedule_printer.hh"

#include "support/strings.hh"

namespace msq {

namespace {

/**
 * ScheduleSink that renders the classic timeline format. Active slots
 * arrive region-ascending, so inactive regions are the gaps between
 * consecutive slot callbacks — printed as r{--} without ever
 * materializing them.
 */
class TimelineSink : public ScheduleSink
{
  public:
    TimelineSink(std::ostream &os, const Module &mod, bool show_moves)
        : os(os), mod(mod), showMoves(show_moves)
    {}

    void
    beginStep(const TimestepView &step) override
    {
        os << csprintf("t%-5llu [%llu] ",
                       static_cast<unsigned long long>(step.index()),
                       static_cast<unsigned long long>(
                           MultiSimdArch::gateCycles +
                           step.movePhaseCycles()));
        nextRegion = 0;
    }

    void
    slot(const RegionSlotView &slot) override
    {
        printIdleUpTo(slot.region());
        os << " r" << slot.region() << "{" << gateName(slot.kind())
           << ":";
        for (uint32_t op_index : slot.ops())
            for (QubitId q : mod.op(op_index).operands)
                os << " " << mod.qubitName(q);
        os << "}";
        nextRegion = slot.region() + 1;
    }

    void
    endStep(const TimestepView &step) override
    {
        printIdleUpTo(step.k());
        MoveSpan moves = step.moves();
        if (showMoves && !moves.empty()) {
            os << "  | moves:";
            for (const Move &move : moves) {
                os << " " << mod.qubitName(move.qubit) << " "
                   << move.from.describe() << "->"
                   << move.to.describe();
                if (!move.isLocal() && move.blocking)
                    os << "!";
            }
        }
        os << "\n";
    }

  private:
    void
    printIdleUpTo(unsigned region)
    {
        for (unsigned r = nextRegion; r < region; ++r)
            os << " r" << r << "{--}";
    }

    std::ostream &os;
    const Module &mod;
    bool showMoves;
    unsigned nextRegion = 0;
};

} // anonymous namespace

void
printTimeline(std::ostream &os, const LeafSchedule &sched,
              const TimelinePrintOptions &options)
{
    TimelineSink sink(os, sched.module(), options.showMoves);
    sched.stream(sink, options.maxSteps);

    const uint64_t total = sched.computeTimesteps();
    if (options.maxSteps != 0 && options.maxSteps < total) {
        os << "... ("
           << static_cast<unsigned long long>(total - options.maxSteps)
           << " more timesteps)\n";
    }
}

} // namespace msq
