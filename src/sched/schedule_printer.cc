#include "sched/schedule_printer.hh"

#include "support/strings.hh"

namespace msq {

void
printTimeline(std::ostream &os, const LeafSchedule &sched,
              const TimelinePrintOptions &options)
{
    const Module &mod = sched.module();
    uint64_t limit = options.maxSteps == 0 ? sched.steps().size()
                                           : options.maxSteps;

    for (uint64_t ts = 0; ts < sched.steps().size() && ts < limit; ++ts) {
        const Timestep &step = sched.steps()[ts];
        os << csprintf("t%-5llu [%llu] ",
                       static_cast<unsigned long long>(ts),
                       static_cast<unsigned long long>(
                           MultiSimdArch::gateCycles +
                           step.movePhaseCycles()));
        for (unsigned r = 0; r < step.regions.size(); ++r) {
            const RegionSlot &slot = step.regions[r];
            if (!slot.active()) {
                os << " r" << r << "{--}";
                continue;
            }
            os << " r" << r << "{" << gateName(slot.kind) << ":";
            for (uint32_t op_index : slot.ops)
                for (QubitId q : mod.op(op_index).operands)
                    os << " " << mod.qubitName(q);
            os << "}";
        }
        if (options.showMoves && !step.moves.empty()) {
            os << "  | moves:";
            for (const auto &move : step.moves) {
                os << " " << mod.qubitName(move.qubit) << " "
                   << move.from.describe() << "->" << move.to.describe();
                if (!move.isLocal() && move.blocking)
                    os << "!";
            }
        }
        os << "\n";
    }
    if (limit < sched.steps().size()) {
        os << "... ("
           << static_cast<unsigned long long>(sched.steps().size() - limit)
           << " more timesteps)\n";
    }
}

} // namespace msq
