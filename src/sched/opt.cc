#include "sched/opt.hh"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/bounds.hh"
#include "ir/dag.hh"
#include "sched/comm.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/**
 * Children enumerated per search node before moving on. The first child
 * is the most parallel feasible packing (the greedy descent), so a deep
 * cap mostly spends budget re-deriving near-identical prefixes; a small
 * cap keeps the search wide instead.
 */
constexpr size_t maxChildrenPerNode = 64;

/** Mixed-radix counter iterations per node (feasible or not). */
constexpr size_t maxComboIterationsPerNode = 4096;

/**
 * One branch-and-bound search for an LB-step, zero-movement-cycle
 * schedule of a leaf module. State along the DFS spine is the set of
 * scheduled ops (a bitset), the canonical ready frontier derived from
 * it, and the per-step op picks needed to rebuild the schedule when a
 * leaf of the search tree completes.
 *
 * Every choice point is canonical — kinds in enum order, ops ordered by
 * (height desc, index asc), children in descending mixed-radix order,
 * regions by residency-then-lowest-index — so for a fixed (module,
 * arch, options) the entire search, including its statistics, is a
 * pure function of the input.
 */
class OptSearch
{
  public:
    OptSearch(const Module &mod, const MultiSimdArch &arch, CommMode mode,
              uint64_t lower_bound, uint64_t node_budget,
              ScheduleAttempt &attempt)
        : mod(mod), arch(arch), mode(mode), lb(lower_bound),
          budget(node_budget), attempt(attempt), dag(DepDag::build(mod)),
          height(dag.heightToBottom()),
          scheduledWords((mod.numOps() + 63) / 64, 0)
    {
        pendingPreds.resize(dag.numNodes());
        for (uint32_t i = 0; i < dag.numNodes(); ++i)
            pendingPreds[i] = static_cast<uint32_t>(dag.preds(i).size());
        // Same per-step touch capacity the resource bound divides by
        // (analysis/bounds.cc touchCapacity) — scheduler and bound must
        // agree on what one timestep can absorb.
        cap = std::min<uint64_t>(satMul(arch.k, arch.d), mod.numQubits());
        cap = std::max<uint64_t>(cap, 1);
    }

    /** @return true when a certificate schedule was found (in proof). */
    bool
    run()
    {
        std::vector<uint32_t> ready = dag.roots(); // ascending indices
        uint64_t touches = 0;
        for (const auto &op : mod.ops())
            touches = satAdd(touches, op.operands.size());
        return dfs(0, ready, touches);
    }

    std::optional<LeafSchedule> proof;

  private:
    /** Ready ops of one kind at a choice point, plus its d-derived
     * packing limits. */
    struct KindGroup
    {
        GateKind kind = GateKind::X;
        std::vector<uint32_t> ops; ///< (height desc, index asc) order
        uint64_t capPerRegion = 0; ///< same-kind ops one region holds
        uint32_t maxCount = 0;     ///< ops of this kind placeable at once
    };

    bool
    scheduledBit(uint32_t op) const
    {
        return (scheduledWords[op / 64] >> (op % 64)) & 1;
    }

    void
    applyPick(const std::vector<uint32_t> &picked)
    {
        for (uint32_t op : picked) {
            scheduledWords[op / 64] |= uint64_t{1} << (op % 64);
            for (uint32_t succ : dag.succs(op))
                --pendingPreds[succ];
        }
    }

    void
    undoPick(const std::vector<uint32_t> &picked)
    {
        for (uint32_t op : picked) {
            scheduledWords[op / 64] &= ~(uint64_t{1} << (op % 64));
            for (uint32_t succ : dag.succs(op))
                ++pendingPreds[succ];
        }
    }

    /** Group @p ready by kind and derive each kind's packing limits. */
    std::vector<KindGroup>
    groupReady(const std::vector<uint32_t> &ready) const
    {
        std::vector<KindGroup> groups;
        for (size_t kind_index = 0; kind_index < numGateKinds;
             ++kind_index) {
            auto kind = static_cast<GateKind>(kind_index);
            KindGroup group;
            group.kind = kind;
            for (uint32_t op : ready)
                if (mod.op(op).kind == kind)
                    group.ops.push_back(op);
            if (group.ops.empty())
                continue;
            std::sort(group.ops.begin(), group.ops.end(),
                      [&](uint32_t a, uint32_t b) {
                          if (height[a] != height[b])
                              return height[a] > height[b];
                          return a < b;
                      });
            const uint64_t arity =
                mod.op(group.ops.front()).operands.size();
            group.capPerRegion = arch.d == unbounded
                                     ? group.ops.size()
                                     : arch.d / arity; // >= 1, checkInputs
            group.maxCount = static_cast<uint32_t>(std::min<uint64_t>(
                group.ops.size(), satMul(group.capPerRegion, arch.k)));
            groups.push_back(std::move(group));
        }
        return groups;
    }

    /** Regions a pick of @p count ops from @p group occupies. */
    static uint64_t
    regionsNeeded(const KindGroup &group, uint32_t count)
    {
        return satCeilDiv(count, group.capPerRegion);
    }

    /**
     * Expand the node (depth, ready): enumerate per-kind pick counts in
     * descending mixed-radix order (most parallel first), prune with
     * the same bounds the certificate is judged against plus the
     * dominance table, and recurse. @return true once proof is set.
     */
    bool
    dfs(uint64_t depth, const std::vector<uint32_t> &ready,
        uint64_t rem_touches)
    {
        const std::vector<KindGroup> groups = groupReady(ready);
        std::vector<uint32_t> digits(groups.size());
        size_t yielded = 0;

        // Phase 1: kind-pure steps, largest pick first. A zero-movement
        // certificate needs every qubit to stay put, and steps that run
        // a single kind machine-wide never force a qubit to chase its
        // kind into another region — so they are where certificates
        // overwhelmingly live, and the budget goes to them first.
        for (size_t i = 0; i < groups.size(); ++i) {
            for (uint32_t count = groups[i].maxCount; count > 0;
                 --count) {
                if (regionsNeeded(groups[i], count) > arch.k)
                    continue;
                if (aborted || budget == 0) {
                    aborted = true;
                    return false;
                }
                digits.assign(groups.size(), 0);
                digits[i] = count;
                if (tryChild(depth, ready, rem_touches, groups, digits))
                    return true;
                if (aborted)
                    return false;
                if (++yielded == maxChildrenPerNode)
                    return false;
            }
        }

        // Phase 2: mixed-kind steps in descending mixed-radix order
        // (most parallel first), skipping the pure picks phase 1 tried.
        for (size_t i = 0; i < groups.size(); ++i)
            digits[i] = groups[i].maxCount;
        for (size_t iter = 0; iter < maxComboIterationsPerNode; ++iter) {
            size_t nonzero = 0;
            uint64_t regions = 0;
            for (size_t i = 0; i < groups.size(); ++i) {
                if (digits[i] == 0)
                    continue;
                ++nonzero;
                regions = satAdd(regions,
                                 regionsNeeded(groups[i], digits[i]));
            }
            if (nonzero >= 2 && regions <= arch.k) {
                if (aborted || budget == 0) {
                    aborted = true;
                    return false;
                }
                if (tryChild(depth, ready, rem_touches, groups, digits))
                    return true;
                if (aborted)
                    return false;
                if (++yielded == maxChildrenPerNode)
                    break;
            }
            // Next combination: decrement the rightmost nonzero digit
            // and reset everything after it to its maximum.
            size_t i = groups.size();
            while (i > 0 && digits[i - 1] == 0)
                --i;
            if (i == 0)
                break;
            --digits[i - 1];
            for (size_t j = i; j < groups.size(); ++j)
                digits[j] = groups[j].maxCount;
        }
        return false;
    }

    /** Expand one child: pick the digit-prefix ops of each kind as the
     * next timestep, prune or recurse. */
    bool
    tryChild(uint64_t depth, const std::vector<uint32_t> &ready,
             uint64_t rem_touches, const std::vector<KindGroup> &groups,
             const std::vector<uint32_t> &digits)
    {
        --budget;
        ++attempt.nodesExpanded;

        std::vector<uint32_t> picked;
        uint64_t picked_touches = 0;
        for (size_t i = 0; i < groups.size(); ++i) {
            for (uint32_t j = 0; j < digits[i]; ++j) {
                uint32_t op = groups[i].ops[j];
                picked.push_back(op);
                picked_touches += mod.op(op).operands.size();
            }
        }

        applyPick(picked);
        bool found = false;
        do {
            // Ready frontier after this step, ascending op index.
            std::vector<uint32_t> ready_next;
            for (uint32_t op : ready)
                if (!scheduledBit(op))
                    ready_next.push_back(op);
            // An op whose predecessors were all picked this very step
            // is released once per such predecessor — dedupe, or it
            // would be scheduled twice.
            for (uint32_t op : picked)
                for (uint32_t succ : dag.succs(op))
                    if (pendingPreds[succ] == 0)
                        ready_next.push_back(succ);
            std::sort(ready_next.begin(), ready_next.end());
            ready_next.erase(
                std::unique(ready_next.begin(), ready_next.end()),
                ready_next.end());

            const uint64_t rem_next = rem_touches - picked_touches;
            if (ready_next.empty()) {
                // All ops placed in depth + 1 steps; certify or keep
                // searching.
                stepPicks.push_back(picked);
                found = buildAndCheck();
                stepPicks.pop_back();
                break;
            }

            // Critical path: the unscheduled set is successor-closed,
            // so its tallest chain hangs off some ready op.
            uint64_t height_max = 0;
            for (uint32_t op : ready_next)
                height_max = std::max(height_max, height[op]);
            if (satAdd(depth + 1, height_max) > lb) {
                ++attempt.prunedByCriticalPath;
                break;
            }
            if (satAdd(depth + 1, satCeilDiv(rem_next, cap)) > lb) {
                ++attempt.prunedByResource;
                break;
            }
            // Dominance: reaching the same scheduled set in as few or
            // fewer steps subsumes every completion of this prefix
            // (completability depends only on the set).
            std::string key(
                reinterpret_cast<const char *>(scheduledWords.data()),
                scheduledWords.size() * sizeof(uint64_t));
            auto it = dominance.find(key);
            if (it != dominance.end() && it->second <= depth + 1) {
                ++attempt.prunedByDominance;
                break;
            }
            dominance[std::move(key)] = depth + 1;

            stepPicks.push_back(picked);
            found = dfs(depth + 1, ready_next, rem_next);
            stepPicks.pop_back();
        } while (false);
        undoPick(picked);
        return found;
    }

    /** One planned (region, kind, ops) slot of a step under
     * construction. */
    struct SlotPlan
    {
        unsigned region = 0;
        GateKind kind = GateKind::X;
        std::vector<uint32_t> ops;
    };

    /**
     * Residency-aware step placement: within each kind, ops whose
     * operands already live together in some free region stay there, so
     * multi-component zero-movement placements (one qubit cluster per
     * region) survive reconstruction. May need more regions than the
     * per-kind ceil(count / cap) arithmetic the search admitted — fails
     * (nullopt) instead of overflowing, and the caller falls back to
     * plain chunking.
     */
    std::optional<std::vector<SlotPlan>>
    planStepByResidency(const std::vector<uint32_t> &picked,
                        const std::vector<int> &qubit_region) const
    {
        std::vector<SlotPlan> plans;
        std::vector<bool> used(arch.k, false);
        for (size_t kind_index = 0; kind_index < numGateKinds;
             ++kind_index) {
            auto kind = static_cast<GateKind>(kind_index);
            std::vector<uint32_t> ops;
            for (uint32_t op : picked)
                if (mod.op(op).kind == kind)
                    ops.push_back(op);
            if (ops.empty())
                continue;
            const uint64_t arity = mod.op(ops.front()).operands.size();
            const uint64_t chunk_cap =
                arch.d == unbounded ? ops.size() : arch.d / arity;
            // Bucket by the region a resident operand pins the op to
            // (first resident operand wins; -1 = all operands fresh).
            std::vector<std::vector<uint32_t>> home(arch.k);
            std::vector<uint32_t> leftover;
            for (uint32_t op : ops) {
                int r = -1;
                for (QubitId q : mod.op(op).operands) {
                    if (qubit_region[q] >= 0) {
                        r = qubit_region[q];
                        break;
                    }
                }
                if (r >= 0)
                    home[static_cast<unsigned>(r)].push_back(op);
                else
                    leftover.push_back(op);
            }
            std::vector<size_t> kind_plans;
            for (unsigned r = 0; r < arch.k; ++r) {
                if (home[r].empty())
                    continue;
                if (used[r]) {
                    // Another kind claimed the residents' region this
                    // step; movement is unavoidable, park them anywhere.
                    leftover.insert(leftover.end(), home[r].begin(),
                                    home[r].end());
                    continue;
                }
                used[r] = true;
                SlotPlan plan;
                plan.region = r;
                plan.kind = kind;
                const size_t take = std::min<size_t>(
                    home[r].size(), static_cast<size_t>(chunk_cap));
                plan.ops.assign(home[r].begin(),
                                home[r].begin() +
                                    static_cast<std::ptrdiff_t>(take));
                leftover.insert(leftover.end(), home[r].begin() +
                                    static_cast<std::ptrdiff_t>(take),
                                home[r].end());
                kind_plans.push_back(plans.size());
                plans.push_back(std::move(plan));
            }
            // Fill spare capacity of this kind's resident slots before
            // opening fresh regions: an op on only-fresh qubits joins an
            // existing cluster for free (first fetches are masked)
            // instead of founding a region it will have to leave.
            size_t li = 0;
            for (size_t pi : kind_plans) {
                while (li < leftover.size() &&
                       plans[pi].ops.size() < chunk_cap)
                    plans[pi].ops.push_back(leftover[li++]);
            }
            leftover.erase(leftover.begin(),
                           leftover.begin() +
                               static_cast<std::ptrdiff_t>(li));
            for (size_t base = 0; base < leftover.size();
                 base += chunk_cap) {
                const size_t end = std::min<size_t>(
                    leftover.size(), base + chunk_cap);
                int region = -1;
                for (unsigned r = 0; region < 0 && r < arch.k; ++r)
                    if (!used[r])
                        region = static_cast<int>(r);
                if (region < 0)
                    return std::nullopt;
                used[static_cast<unsigned>(region)] = true;
                SlotPlan plan;
                plan.region = static_cast<unsigned>(region);
                plan.kind = kind;
                plan.ops.assign(leftover.begin() +
                                    static_cast<std::ptrdiff_t>(base),
                                leftover.begin() +
                                    static_cast<std::ptrdiff_t>(end));
                plans.push_back(std::move(plan));
            }
        }
        return plans;
    }

    /**
     * Plain per-kind chunking, guaranteed to fit because the search
     * admitted this step with the same ceil(count / cap) arithmetic.
     * Each chunk still prefers a free region holding one of its
     * operands.
     */
    std::vector<SlotPlan>
    planStepByChunks(const std::vector<uint32_t> &picked,
                     const std::vector<int> &qubit_region) const
    {
        std::vector<SlotPlan> plans;
        std::vector<bool> used(arch.k, false);
        for (size_t kind_index = 0; kind_index < numGateKinds;
             ++kind_index) {
            auto kind = static_cast<GateKind>(kind_index);
            std::vector<uint32_t> ops;
            for (uint32_t op : picked)
                if (mod.op(op).kind == kind)
                    ops.push_back(op);
            if (ops.empty())
                continue;
            const uint64_t arity = mod.op(ops.front()).operands.size();
            const uint64_t chunk_cap =
                arch.d == unbounded ? ops.size() : arch.d / arity;
            for (size_t base = 0; base < ops.size(); base += chunk_cap) {
                const size_t end =
                    std::min(ops.size(), base + chunk_cap);
                int region = -1;
                for (size_t i = base; i < end && region < 0; ++i) {
                    for (QubitId q : mod.op(ops[i]).operands) {
                        int r = qubit_region[q];
                        if (r >= 0 && !used[r]) {
                            region = r;
                            break;
                        }
                    }
                }
                for (unsigned r = 0; region < 0 && r < arch.k; ++r)
                    if (!used[r])
                        region = static_cast<int>(r);
                if (region < 0)
                    panic("OptScheduler: step needs more regions "
                          "than the feasibility check admitted");
                used[static_cast<unsigned>(region)] = true;
                SlotPlan plan;
                plan.region = static_cast<unsigned>(region);
                plan.kind = kind;
                plan.ops.assign(ops.begin() +
                                    static_cast<std::ptrdiff_t>(base),
                                ops.begin() +
                                    static_cast<std::ptrdiff_t>(end));
                plans.push_back(std::move(plan));
            }
        }
        return plans;
    }

    /**
     * Materialize the stepPicks stack as a schedule — residency-aware
     * placement first, plain chunking when that needs too many regions
     * — then annotate it under the configured communication mode. A
     * proof is a totalCycles that equals the lower bound exactly: LB
     * bounds compute steps of any valid schedule, so LB steps plus a
     * zero-cost movement phase is unbeatable.
     */
    bool
    buildAndCheck()
    {
        ScheduleBuilder builder(mod, arch.k);
        std::vector<int> qubit_region(mod.numQubits(), -1);
        for (const auto &picked : stepPicks) {
            std::optional<std::vector<SlotPlan>> plans =
                planStepByResidency(picked, qubit_region);
            if (!plans)
                plans = planStepByChunks(picked, qubit_region);
            builder.beginStep();
            for (const SlotPlan &plan : *plans) {
                ScheduleBuilder::DraftSlot &slot =
                    builder.slot(plan.region);
                slot.kind = plan.kind;
                slot.ops = plan.ops;
                // Operand qubits now live where their ops ran (mirrors
                // the RCP/LPFS residency update).
                for (uint32_t op : plan.ops)
                    for (QubitId q : mod.op(op).operands)
                        qubit_region[q] = static_cast<int>(plan.region);
            }
            builder.endStep();
        }

        LeafSchedule candidate = builder.finish();
        CommunicationAnalyzer comm(arch, mode);
        CommStats stats = comm.annotate(candidate);
        ++attempt.candidatesAnnotated;
        if (stats.totalCycles != lb)
            return false;
        proof.emplace(std::move(candidate));
        return true;
    }

    const Module &mod;
    const MultiSimdArch &arch;
    CommMode mode;
    uint64_t lb;
    uint64_t budget;
    ScheduleAttempt &attempt;
    bool aborted = false;

    DepDag dag;
    std::vector<uint64_t> height;
    std::vector<uint32_t> pendingPreds;
    std::vector<uint64_t> scheduledWords;
    uint64_t cap = 1;
    /** Op picks of each committed step along the DFS spine. */
    std::vector<std::vector<uint32_t>> stepPicks;
    /** scheduled-set bitset -> fewest steps that reached it. */
    std::unordered_map<std::string, uint64_t> dominance;
};

} // anonymous namespace

const char *
optFallbackName(OptFallback fallback)
{
    switch (fallback) {
      case OptFallback::Rcp:
        return "rcp";
      case OptFallback::Lpfs:
        return "lpfs";
    }
    panic("optFallbackName: invalid fallback");
}

const LeafScheduler &
OptScheduler::fallbackScheduler() const
{
    if (options.fallback == OptFallback::Rcp)
        return rcp;
    return lpfs;
}

std::string
OptScheduler::fingerprint() const
{
    return csprintf("opt(budget=%llu,maxops=%u,mode=%s,fallback=%s)",
                    static_cast<unsigned long long>(options.nodeBudget),
                    options.maxOps, commModeName(options.commMode),
                    fallbackScheduler().fingerprint().c_str());
}

LeafSchedule
OptScheduler::schedule(const Module &mod, const MultiSimdArch &arch) const
{
    ScheduleAttempt attempt;
    return scheduleWithAttempt(mod, arch, attempt);
}

LeafSchedule
OptScheduler::scheduleWithAttempt(const Module &mod,
                                  const MultiSimdArch &arch,
                                  ScheduleAttempt &attempt) const
{
    checkInputs(mod, arch);
    attempt = ScheduleAttempt{};

    if (mod.numOps() == 0) {
        // An empty schedule trivially meets its (zero) bound.
        attempt.provenance = ScheduleProvenance::Optimal;
        ScheduleBuilder builder(mod, arch.k);
        return builder.finish();
    }

    // Tier 0: cost the fallback heuristic against the bound. When it
    // already meets the bound the proof is free — the search would only
    // rediscover a schedule of the same certified length.
    LeafSchedule fallback = fallbackScheduler().schedule(mod, arch);
    CommunicationAnalyzer comm(arch, options.commMode);
    const CommStats fb_stats = comm.annotate(fallback);
    const uint64_t lb = computeLeafBounds(mod, arch).composite();
    attempt.candidatesAnnotated = 1;
    if (fb_stats.totalCycles == lb) {
        attempt.provenance = ScheduleProvenance::Optimal;
        return fallback;
    }

    if (mod.numOps() > options.maxOps || options.nodeBudget == 0) {
        attempt.provenance = ScheduleProvenance::Fallback;
        return fallback;
    }

    OptSearch search(mod, arch, options.commMode, lb, options.nodeBudget,
                     attempt);
    if (search.run()) {
        attempt.provenance = ScheduleProvenance::Optimal;
        return std::move(*search.proof);
    }
    attempt.provenance = ScheduleProvenance::Fallback;
    return fallback;
}

} // namespace msq
