#include "sched/core_affinity.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "analysis/qubit_mapping.hh"
#include "support/logging.hh"

namespace msq {

namespace {

/** One candidate region assignment: the ops of one original slot whose
 * operands prefer one core. Groups of a slot may be merged back
 * together when a step has more groups than regions. */
struct Group
{
    uint32_t slot;    ///< global index into buf.slots
    unsigned pref;    ///< the member ops' preferred core
    uint64_t weight;  ///< total operand count
    uint32_t parent;  ///< union-find: self when live
    std::vector<uint64_t> votes; ///< operand homes, per core
};

uint32_t
rootOf(std::vector<Group> &groups, uint32_t g)
{
    while (groups[g].parent != g)
        g = groups[g].parent;
    return g;
}

} // anonymous namespace

LeafSchedule
applyCoreAffinity(LeafSchedule sched, const MultiSimdArch &arch)
{
    const Topology &topo = arch.topology;
    if (!topo.multiCore())
        return sched;

    const ScheduleBuffer &buf = sched.buffer();
    if (!buf.moves.empty())
        panic("applyCoreAffinity: schedule already carries movement "
              "annotation");
    if (buf.slots.empty())
        return sched;

    const Module &mod = sched.module();
    const std::vector<unsigned> home = computeQubitMapping(mod, topo);
    const unsigned cores = topo.cores;

    // Regions each core owns, ascending (the clamp in coreOfRegion
    // gives any remainder regions to the last core).
    std::vector<std::vector<unsigned>> core_regions(cores);
    for (unsigned r = 0; r < buf.k; ++r)
        core_regions[arch.coreOfRegion(r)].push_back(r);

    auto out = std::make_shared<ScheduleBuffer>();
    out->k = buf.k;
    out->slots.reserve(buf.slots.size());
    out->slotEnd.reserve(buf.slotEnd.size());
    out->ops.reserve(buf.ops.size());
    out->moveEnd.reserve(buf.moveEnd.size());
    out->activeWords.reserve(buf.activeWords.size());
    const size_t words = out->wordsPerStep();

    std::vector<Group> groups;
    std::vector<uint32_t> op_group;  ///< per op in step: its group
    std::vector<uint64_t> op_votes(cores);
    std::vector<uint32_t> order;     ///< live groups, assignment order
    std::vector<uint8_t> region_taken(buf.k);
    std::vector<uint64_t> free_in(cores);
    struct Placement
    {
        uint32_t group;
        unsigned newRegion;
    };
    std::vector<Placement> placed;

    for (uint64_t step = 0; step < buf.numSteps(); ++step) {
        const uint32_t slot_begin = buf.slotBegin(step);
        const uint32_t slot_end = buf.slotEnd[step];
        if (slot_begin == slot_end) { // empty timestep
            out->activeWords.resize(out->activeWords.size() + words, 0);
            out->slotEnd.push_back(
                static_cast<uint32_t>(out->slots.size()));
            out->moveEnd.push_back(0);
            continue;
        }
        const uint32_t ops_base = buf.opBegin(slot_begin);

        // 1. Partition each slot's ops by their majority home core
        //    (ties take the lowest core). Ops of one (slot, core) pair
        //    form a group — a candidate region of their own, since two
        //    regions may run the same gate kind in one timestep.
        groups.clear();
        op_group.assign(buf.slots[slot_end - 1].opEnd - ops_base, 0);
        for (uint32_t s = slot_begin; s < slot_end; ++s) {
            const uint32_t first_group =
                static_cast<uint32_t>(groups.size());
            for (uint32_t i = buf.opBegin(s); i < buf.slots[s].opEnd;
                 ++i) {
                const Operation &op = mod.op(buf.ops[i]);
                std::fill(op_votes.begin(), op_votes.end(), 0);
                unsigned pref = 0;
                for (QubitId q : op.operands)
                    if (++op_votes[home[q]] > op_votes[pref] ||
                        (op_votes[home[q]] == op_votes[pref] &&
                         home[q] < pref))
                        pref = home[q];
                uint32_t g = static_cast<uint32_t>(groups.size());
                for (uint32_t j = first_group; j < groups.size(); ++j)
                    if (groups[j].pref == pref) {
                        g = j;
                        break;
                    }
                if (g == groups.size()) {
                    groups.push_back({s, pref, 0, g, {}});
                    groups.back().votes.assign(cores, 0);
                }
                Group &group = groups[g];
                group.weight += op.operands.size();
                for (QubitId q : op.operands)
                    ++group.votes[home[q]];
                op_group[i - ops_base] = g;
            }
        }

        // 2. A step may not activate more regions than exist: while the
        //    split overshoots k, merge the lightest group of any
        //    multi-group slot back into that slot's heaviest group.
        //    Terminates because the original step had <= k slots.
        uint32_t live = static_cast<uint32_t>(groups.size());
        while (live > buf.k) {
            uint32_t victim = UINT32_MAX;
            for (uint32_t g = 0; g < groups.size(); ++g) {
                if (groups[g].parent != g)
                    continue;
                bool alone = true;
                for (uint32_t h = 0; h < groups.size(); ++h)
                    if (h != g && groups[h].parent == h &&
                        groups[h].slot == groups[g].slot)
                        alone = false;
                if (alone)
                    continue;
                if (victim == UINT32_MAX ||
                    groups[g].weight < groups[victim].weight)
                    victim = g;
            }
            uint32_t target = UINT32_MAX;
            for (uint32_t h = 0; h < groups.size(); ++h)
                if (h != victim && groups[h].parent == h &&
                    groups[h].slot == groups[victim].slot &&
                    (target == UINT32_MAX ||
                     groups[h].weight > groups[target].weight))
                    target = h;
            groups[victim].parent = target;
            groups[target].weight += groups[victim].weight;
            for (unsigned c = 0; c < cores; ++c)
                groups[target].votes[c] += groups[victim].votes[c];
            --live;
        }

        // 3. Heaviest groups claim their cores first; each takes its
        //    highest-vote core with a free region (ties prefer the
        //    original slot's core, then the lowest core index), keeping
        //    the original region within that core when free (preserves
        //    LPFS path pinning).
        order.clear();
        for (uint32_t g = 0; g < groups.size(); ++g)
            if (groups[g].parent == g)
                order.push_back(g);
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                             return groups[a].weight > groups[b].weight;
                         });
        free_in.assign(cores, 0);
        for (unsigned c = 0; c < cores; ++c)
            free_in[c] = core_regions[c].size();
        std::fill(region_taken.begin(), region_taken.end(), 0);

        placed.clear();
        for (uint32_t g : order) {
            const Group &group = groups[g];
            const unsigned orig = buf.slots[group.slot].region;
            const unsigned orig_core = arch.coreOfRegion(orig);
            unsigned best = cores;
            for (unsigned c = 0; c < cores; ++c) {
                if (free_in[c] == 0)
                    continue;
                if (best == cores || group.votes[c] > group.votes[best] ||
                    (group.votes[c] == group.votes[best] &&
                     c == orig_core))
                    best = c;
            }
            if (best == cores)
                panic("applyCoreAffinity: more groups than regions in "
                      "one timestep");
            unsigned new_region = buf.k;
            if (best == orig_core && !region_taken[orig]) {
                new_region = orig;
            } else {
                for (unsigned r : core_regions[best]) {
                    if (!region_taken[r]) {
                        new_region = r;
                        break;
                    }
                }
            }
            region_taken[new_region] = 1;
            --free_in[best];
            placed.push_back({g, new_region});
        }

        // 4. Emit the step region-ascending; each group's ops keep the
        //    original slot's op order.
        std::sort(placed.begin(), placed.end(),
                  [](const Placement &a, const Placement &b) {
                      return a.newRegion < b.newRegion;
                  });
        const size_t word_base = out->activeWords.size();
        out->activeWords.resize(word_base + words, 0);
        for (const Placement &p : placed) {
            const ScheduleBuffer::Slot &slot = buf.slots[groups[p.group].slot];
            for (uint32_t i = buf.opBegin(groups[p.group].slot);
                 i < slot.opEnd; ++i)
                if (rootOf(groups, op_group[i - ops_base]) == p.group)
                    out->ops.push_back(buf.ops[i]);
            out->slots.push_back({static_cast<uint32_t>(out->ops.size()),
                                  p.newRegion, slot.kind});
            out->activeWords[word_base + p.newRegion / 64] |=
                uint64_t{1} << (p.newRegion % 64);
        }
        out->slotEnd.push_back(static_cast<uint32_t>(out->slots.size()));
        out->moveEnd.push_back(0);
    }

    return LeafSchedule(mod, std::move(out));
}

} // namespace msq
