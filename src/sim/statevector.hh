/**
 * @file
 * Dense state-vector simulation of small quantum circuits.
 *
 * The paper's benchmarks (10^7-10^12 gates, hundreds of thousands of
 * qubits) "can not be simulated on any classical computer" (§3) — the
 * whole toolflow is built on static analysis instead. This simulator
 * exists for the *library's* benefit: unit-validating gate semantics,
 * proving the Toffoli/Fredkin/Swap expansions exact, and checking that
 * optimization passes preserve program meaning on small circuits. It is
 * deliberately capped at a laptop-friendly qubit count.
 */

#ifndef MSQ_SIM_STATEVECTOR_HH
#define MSQ_SIM_STATEVECTOR_HH

#include <complex>
#include <vector>

#include "ir/module.hh"
#include "support/rng.hh"

namespace msq {

/** Dense 2^n-amplitude simulator over the full IR gate set. */
class StateVector
{
  public:
    using Amplitude = std::complex<double>;

    /** Largest supported register (2^24 amplitudes = 256 MiB). */
    static constexpr unsigned maxQubits = 24;

    /** Initialize |0...0> on @p num_qubits qubits. */
    explicit StateVector(unsigned num_qubits);

    unsigned numQubits() const { return numQubits_; }

    /**
     * Apply one operation. Unitaries evolve the state; PrepZ/PrepX
     * measure-and-reset; MeasZ/MeasX sample an outcome with @p rng and
     * collapse. Call operations panic (inline the program first).
     */
    void apply(const Operation &op, SplitMix64 &rng);

    /** Run every operation of a leaf module in order. */
    void run(const Module &mod, SplitMix64 &rng);

    /** Amplitude of computational basis state @p basis. */
    Amplitude amplitude(uint64_t basis) const;

    /** Probability that measuring @p q yields 1. */
    double probabilityOfOne(QubitId q) const;

    /**
     * State equality up to global phase (and numerical tolerance) —
     * the right notion for checking circuit identities.
     */
    bool approxEqual(const StateVector &other, double tolerance) const;

    /** Set the state to computational basis state @p basis. */
    void setBasisState(uint64_t basis);

  private:
    unsigned numQubits_;
    std::vector<Amplitude> amps;

    void applySingleQubit(QubitId q, const Amplitude u[2][2]);
    void applyControlledX(const std::vector<QubitId> &controls,
                          QubitId target);
    void applyControlledZ(QubitId a, QubitId b);
    void applySwap(QubitId a, QubitId b, const Operation &op);
    /** Sample + collapse a Z measurement; @return the outcome bit. */
    bool measureZ(QubitId q, SplitMix64 &rng);
};

} // namespace msq

#endif // MSQ_SIM_STATEVECTOR_HH
