#include "sim/statevector.hh"

#include <cmath>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

constexpr double invSqrt2 = 0.7071067811865475244;

} // anonymous namespace

StateVector::StateVector(unsigned num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits == 0 || num_qubits > maxQubits) {
        fatal(csprintf("StateVector supports 1..%u qubits, got %u",
                       maxQubits, num_qubits));
    }
    amps.assign(uint64_t{1} << num_qubits, Amplitude{0.0, 0.0});
    amps[0] = Amplitude{1.0, 0.0};
}

void
StateVector::setBasisState(uint64_t basis)
{
    if (basis >= amps.size())
        panic("setBasisState: basis index out of range");
    std::fill(amps.begin(), amps.end(), Amplitude{0.0, 0.0});
    amps[basis] = Amplitude{1.0, 0.0};
}

StateVector::Amplitude
StateVector::amplitude(uint64_t basis) const
{
    if (basis >= amps.size())
        panic("amplitude: basis index out of range");
    return amps[basis];
}

double
StateVector::probabilityOfOne(QubitId q) const
{
    if (q >= numQubits_)
        panic("probabilityOfOne: qubit out of range");
    uint64_t bit = uint64_t{1} << q;
    double p = 0.0;
    for (uint64_t i = 0; i < amps.size(); ++i)
        if (i & bit)
            p += std::norm(amps[i]);
    return p;
}

bool
StateVector::approxEqual(const StateVector &other, double tolerance) const
{
    if (other.numQubits_ != numQubits_)
        return false;
    // Find the relative phase at the largest amplitude, then compare
    // component-wise after unwinding it.
    uint64_t pivot = 0;
    double best = 0.0;
    for (uint64_t i = 0; i < amps.size(); ++i) {
        double mag = std::norm(amps[i]);
        if (mag > best) {
            best = mag;
            pivot = i;
        }
    }
    if (best < tolerance * tolerance)
        return false; // degenerate (unnormalized) state
    if (std::norm(other.amps[pivot]) < tolerance * tolerance)
        return false;
    Amplitude phase = amps[pivot] / other.amps[pivot];
    phase /= std::abs(phase);
    for (uint64_t i = 0; i < amps.size(); ++i) {
        if (std::abs(amps[i] - phase * other.amps[i]) > tolerance)
            return false;
    }
    return true;
}

void
StateVector::applySingleQubit(QubitId q, const Amplitude u[2][2])
{
    uint64_t bit = uint64_t{1} << q;
    for (uint64_t i = 0; i < amps.size(); ++i) {
        if (i & bit)
            continue;
        Amplitude a0 = amps[i];
        Amplitude a1 = amps[i | bit];
        amps[i] = u[0][0] * a0 + u[0][1] * a1;
        amps[i | bit] = u[1][0] * a0 + u[1][1] * a1;
    }
}

void
StateVector::applyControlledX(const std::vector<QubitId> &controls,
                              QubitId target)
{
    uint64_t ctl_mask = 0;
    for (QubitId c : controls)
        ctl_mask |= uint64_t{1} << c;
    uint64_t bit = uint64_t{1} << target;
    for (uint64_t i = 0; i < amps.size(); ++i) {
        if ((i & ctl_mask) == ctl_mask && !(i & bit))
            std::swap(amps[i], amps[i | bit]);
    }
}

void
StateVector::applyControlledZ(QubitId a, QubitId b)
{
    uint64_t mask = (uint64_t{1} << a) | (uint64_t{1} << b);
    for (uint64_t i = 0; i < amps.size(); ++i)
        if ((i & mask) == mask)
            amps[i] = -amps[i];
}

void
StateVector::applySwap(QubitId a, QubitId b, const Operation &op)
{
    uint64_t bit_a = uint64_t{1} << a;
    uint64_t bit_b = uint64_t{1} << b;
    bool fredkin = op.kind == GateKind::Fredkin;
    uint64_t ctl = fredkin ? uint64_t{1} << op.operands[0] : 0;
    for (uint64_t i = 0; i < amps.size(); ++i) {
        if ((i & bit_a) && !(i & bit_b)) {
            if (fredkin && !(i & ctl))
                continue;
            std::swap(amps[i], amps[(i & ~bit_a) | bit_b]);
        }
    }
}

bool
StateVector::measureZ(QubitId q, SplitMix64 &rng)
{
    double p_one = probabilityOfOne(q);
    bool outcome = rng.nextDouble() < p_one;
    double keep = outcome ? p_one : 1.0 - p_one;
    if (keep <= 0.0)
        panic("measureZ: collapsing onto zero-probability outcome");
    double scale = 1.0 / std::sqrt(keep);
    uint64_t bit = uint64_t{1} << q;
    for (uint64_t i = 0; i < amps.size(); ++i) {
        bool is_one = (i & bit) != 0;
        if (is_one == outcome)
            amps[i] *= scale;
        else
            amps[i] = Amplitude{0.0, 0.0};
    }
    return outcome;
}

void
StateVector::apply(const Operation &op, SplitMix64 &rng)
{
    using GK = GateKind;
    const auto &args = op.operands;
    for (QubitId q : args) {
        if (q >= numQubits_)
            panic("StateVector::apply: operand out of range");
    }

    const Amplitude i1{0.0, 1.0};
    switch (op.kind) {
      case GK::X: {
        const Amplitude u[2][2] = {{0, 1}, {1, 0}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Y: {
        const Amplitude u[2][2] = {{0, -i1}, {i1, 0}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Z: {
        const Amplitude u[2][2] = {{1, 0}, {0, -1}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::H: {
        const Amplitude u[2][2] = {{invSqrt2, invSqrt2},
                                   {invSqrt2, -invSqrt2}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::S: {
        const Amplitude u[2][2] = {{1, 0}, {0, i1}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Sdag: {
        const Amplitude u[2][2] = {{1, 0}, {0, -i1}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::T: {
        const Amplitude u[2][2] = {
            {1, 0}, {0, Amplitude{invSqrt2, invSqrt2}}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Tdag: {
        const Amplitude u[2][2] = {
            {1, 0}, {0, Amplitude{invSqrt2, -invSqrt2}}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Rx: {
        double c = std::cos(op.angle / 2);
        double s = std::sin(op.angle / 2);
        const Amplitude u[2][2] = {{c, -i1 * s}, {-i1 * s, c}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Ry: {
        double c = std::cos(op.angle / 2);
        double s = std::sin(op.angle / 2);
        const Amplitude u[2][2] = {{c, -s}, {s, c}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Rz: {
        Amplitude e_neg = std::exp(-i1 * (op.angle / 2));
        Amplitude e_pos = std::exp(i1 * (op.angle / 2));
        const Amplitude u[2][2] = {{e_neg, 0}, {0, e_pos}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::CNOT:
        applyControlledX({args[0]}, args[1]);
        break;
      case GK::CZ:
        applyControlledZ(args[0], args[1]);
        break;
      case GK::Toffoli:
        applyControlledX({args[0], args[1]}, args[2]);
        break;
      case GK::Swap:
        applySwap(args[0], args[1], op);
        break;
      case GK::Fredkin:
        applySwap(args[1], args[2], op);
        break;
      case GK::PrepZ:
        if (measureZ(args[0], rng)) {
            const Amplitude u[2][2] = {{0, 1}, {1, 0}};
            applySingleQubit(args[0], u);
        }
        break;
      case GK::PrepX: {
        apply(Operation(GK::PrepZ, {args[0]}), rng);
        const Amplitude u[2][2] = {{invSqrt2, invSqrt2},
                                   {invSqrt2, -invSqrt2}};
        applySingleQubit(args[0], u);
        break;
      }
      case GK::MeasZ:
        measureZ(args[0], rng);
        break;
      case GK::MeasX: {
        const Amplitude u[2][2] = {{invSqrt2, invSqrt2},
                                   {invSqrt2, -invSqrt2}};
        applySingleQubit(args[0], u);
        measureZ(args[0], rng);
        applySingleQubit(args[0], u);
        break;
      }
      case GK::Call:
        panic("StateVector: inline calls before simulating");
      default:
        panic(std::string("StateVector: unhandled gate ") +
              gateName(op.kind));
    }
}

void
StateVector::run(const Module &mod, SplitMix64 &rng)
{
    for (const auto &op : mod.ops())
        apply(op, rng);
}

} // namespace msq
