/**
 * @file
 * Internal helpers shared by the workload generators.
 */

#ifndef MSQ_WORKLOADS_DETAIL_HH
#define MSQ_WORKLOADS_DETAIL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "ctqg/arith.hh"
#include "ctqg/logic.hh"
#include "ir/module.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {
namespace workloads {
namespace detail {

/** Declare a parameter register base[0..width) on @p mod. */
inline ctqg::Register
addParamReg(Module &mod, const char *base, unsigned width)
{
    ctqg::Register reg;
    reg.reserve(width);
    for (unsigned i = 0; i < width; ++i)
        reg.push_back(mod.addParam(csprintf("%s[%u]", base, i)));
    return reg;
}

/** Prepare every qubit of @p reg in |0>. */
inline void
prepAll(Module &mod, const ctqg::Register &reg)
{
    for (QubitId q : reg)
        mod.addGate(GateKind::PrepZ, {q});
}

/** Apply H to every qubit of @p reg. */
inline void
hadamardAll(Module &mod, const ctqg::Register &reg)
{
    for (QubitId q : reg)
        mod.addGate(GateKind::H, {q});
}

/** Apply X to every qubit of @p reg. */
inline void
xAll(Module &mod, const ctqg::Register &reg)
{
    for (QubitId q : reg)
        mod.addGate(GateKind::X, {q});
}

/** Measure every qubit of @p reg in the Z basis. */
inline void
measureAll(Module &mod, const ctqg::Register &reg)
{
    for (QubitId q : reg)
        mod.addGate(GateKind::MeasZ, {q});
}

/** Grover iteration count ceil(pi/4 * 2^(n/2)), saturating at 2^62. */
inline uint64_t
groverIterations(unsigned n)
{
    if (n >= 120)
        return uint64_t{1} << 62;
    double reps = 0.7853981633974483 *
                  std::pow(2.0, static_cast<double>(n) / 2.0);
    double capped = std::min(reps, 4.6e18);
    return std::max<uint64_t>(1, static_cast<uint64_t>(capped));
}

} // namespace detail
} // namespace workloads
} // namespace msq

#endif // MSQ_WORKLOADS_DETAIL_HH
