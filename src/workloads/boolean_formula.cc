/**
 * @file
 * Boolean Formula (paper §3.3): evaluating a winning strategy for the
 * game of Hex on an x-by-y board via the AND-OR formula-evaluation
 * algorithm [Ambainis et al., FOCS'07]. The Scaffold original is built
 * from CTQG-generated arithmetic — the paper singles out BF (with CN and
 * SHA-1) as "composed of several CTQG modules, which produces unoptimized
 * code that is highly locally serialized" (§5.2) — so the generator leans
 * on serial adders, comparators and an AND-OR reduction tree.
 */

#include "workloads/workloads.hh"

#include "support/rng.hh"
#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildBooleanFormula(unsigned x, unsigned y)
{
    if (x < 2 || y < 2)
        fatal("boolean_formula: board must be at least 2x2");
    Program prog;
    const unsigned cells = x * y;
    const unsigned word = 8; // score accumulator width

    SplitMix64 rng(hashString("bf") ^ (uint64_t{x} << 32) ^ y);

    // cell_eval_<i>(board, score[word]): CTQG arithmetic scoring one
    // cell: add a positional constant, compare against a threshold.
    std::vector<ModuleId> cell_mods;
    for (unsigned i = 0; i < cells; ++i) {
        ModuleId id = prog.addModule(csprintf("cell_eval_%u", i));
        cell_mods.push_back(id);
        Module &mod = prog.module(id);
        QubitId cell = mod.addParam("cell");
        ctqg::Register score = addParamReg(mod, "score", word);
        QubitId above = mod.addParam("above");
        ctqg::Register scratch = mod.addRegister("scratch", word);
        ctqg::Register cmp = mod.addRegister("cmp", word);
        QubitId carry = mod.addLocal("carry");

        // score += weight(i) when the cell is occupied.
        uint64_t weight = (rng.next() % 23) + 1;
        ctqg::setConst(mod, scratch, weight);
        ctqg::controlledAdd(mod, cell, scratch, score, cmp, carry);
        ctqg::setConst(mod, scratch, weight);
        // above ^= (threshold < score)
        ctqg::setConst(mod, scratch, 11);
        ctqg::compareLess(mod, scratch, score, above, cmp, carry);
        ctqg::setConst(mod, scratch, 11);
    }

    // formula_eval(board, flag): serial cell evaluations feeding an
    // AND-OR tree over the per-cell "above" bits.
    ModuleId formula_id = prog.addModule("formula_eval");
    {
        Module &mod = prog.module(formula_id);
        ctqg::Register board = addParamReg(mod, "board", cells);
        QubitId flag = mod.addParam("flag");
        ctqg::Register score = mod.addRegister("score", word);
        ctqg::Register above = mod.addRegister("above", cells);

        for (unsigned i = 0; i < cells; ++i) {
            std::vector<QubitId> args{board[i]};
            args.insert(args.end(), score.begin(), score.end());
            args.push_back(above[i]);
            mod.addCall(cell_mods[i], args);
        }
        // AND-OR tree: pairwise OR (rows) then AND into the flag.
        ctqg::Register level = above;
        std::vector<ctqg::Register> scratch_levels;
        unsigned depth = 0;
        while (level.size() > 2) {
            unsigned half = static_cast<unsigned>(level.size()) / 2;
            ctqg::Register next =
                mod.addRegister(csprintf("tree%u", depth++), half);
            for (unsigned i = 0; i < half; ++i) {
                if (depth % 2 == 1) {
                    ctqg::bitwiseOr(mod, {level[2 * i]},
                                    {level[2 * i + 1]}, {next[i]});
                } else {
                    ctqg::bitwiseAnd(mod, {level[2 * i]},
                                     {level[2 * i + 1]}, {next[i]});
                }
            }
            level = next;
        }
        if (level.size() == 2)
            mod.addGate(GateKind::Toffoli, {level[0], level[1], flag});
        else
            mod.addGate(GateKind::CNOT, {level[0], flag});
    }

    // diffuse(board): standard Grover diffusion over strategies.
    ModuleId diffuse_id = prog.addModule("diffuse");
    {
        Module &mod = prog.module(diffuse_id);
        ctqg::Register board = addParamReg(mod, "board", cells);
        ctqg::Register anc = mod.addRegister("anc",
                                             cells > 2 ? cells - 2 : 1);
        hadamardAll(mod, board);
        xAll(mod, board);
        ctqg::Register controls(board.begin(), board.end() - 1);
        ctqg::multiControlledZ(mod, controls, board.back(), anc);
        xAll(mod, board);
        hadamardAll(mod, board);
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register board = mod.addRegister("board", cells);
        QubitId flag = mod.addLocal("flag");
        prepAll(mod, board);
        mod.addGate(GateKind::PrepZ, {flag});
        mod.addGate(GateKind::X, {flag});
        mod.addGate(GateKind::H, {flag});
        hadamardAll(mod, board);
        std::vector<QubitId> args(board.begin(), board.end());
        args.push_back(flag);
        uint64_t reps = groverIterations(cells);
        mod.addCall(formula_id, args, reps);
        mod.addCall(diffuse_id, board, reps);
        measureAll(mod, board);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
