#include "workloads/workloads.hh"

#include "support/logging.hh"

namespace msq {
namespace workloads {

std::vector<WorkloadSpec>
paperParams()
{
    return {
        {"BF x=2,y=2", "bf", [] { return buildBooleanFormula(2, 2); }},
        {"BWT n=300,s=3000", "bwt", [] { return buildBwt(300, 3000); }},
        {"CN p=6", "cn", [] { return buildClassNumber(6); }},
        {"Grovers n=40", "grovers", [] { return buildGrovers(40); }},
        {"GSE M=10", "gse", [] { return buildGse(10, 20); }},
        {"SHA-1 n=448", "sha1", [] { return buildSha1(448, 32, 80); }},
        {"Shors n=512", "shors", [] { return buildShors(512); }},
        {"TFP n=5", "tfp", [] { return buildTfp(5); }},
    };
}

std::vector<WorkloadSpec>
scaledParams()
{
    // Same structure, smaller instances: these schedule in seconds while
    // preserving each benchmark's serial/parallel character (DESIGN.md).
    return {
        {"BF x=2,y=2", "bf", [] { return buildBooleanFormula(2, 2); }},
        {"BWT n=10,s=100", "bwt", [] { return buildBwt(10, 100); }},
        {"CN p=4", "cn", [] { return buildClassNumber(4); }},
        {"Grovers n=10", "grovers", [] { return buildGrovers(10); }},
        {"GSE M=10", "gse", [] { return buildGse(10, 6); }},
        {"SHA-1 n=64", "sha1", [] { return buildSha1(64, 8, 20); }},
        {"Shors n=8", "shors", [] { return buildShors(8); }},
        {"TFP n=5", "tfp", [] { return buildTfp(5); }},
    };
}

std::vector<WorkloadSpec>
tinyParams()
{
    // Minimum legal instance of each builder: the leaves stay small
    // enough for the OptScheduler's exhaustive tier to search them
    // outright, so `msq-verify --params=tiny --scheduler=opt` exercises
    // real proofs (and real fallbacks) on genuine benchmark structure.
    return {
        {"BF x=2,y=2", "bf", [] { return buildBooleanFormula(2, 2); }},
        {"BWT n=2,s=2", "bwt", [] { return buildBwt(2, 2); }},
        {"CN p=1", "cn", [] { return buildClassNumber(1); }},
        {"Grovers n=3", "grovers", [] { return buildGrovers(3); }},
        {"GSE M=2", "gse", [] { return buildGse(2, 1); }},
        {"SHA-1 n=8", "sha1", [] { return buildSha1(8, 4, 4); }},
        {"Shors n=3", "shors", [] { return buildShors(3); }},
        {"TFP n=3", "tfp", [] { return buildTfp(3); }},
    };
}

WorkloadSpec
findWorkload(const std::vector<WorkloadSpec> &specs,
             const std::string &short_name)
{
    for (const auto &spec : specs)
        if (spec.shortName == short_name)
            return spec;
    fatal("unknown workload: " + short_name);
}

void
scaleWorkload(Program &prog, uint64_t factor)
{
    if (factor <= 1)
        return;
    const ModuleId old_entry = prog.entry();
    if (old_entry == invalidModule)
        fatal("scaleWorkload: program has no entry module");
    const ModuleId wrapper_id = prog.addModule(
        "__scaled_x" + std::to_string(factor));
    Module &wrapper = prog.module(wrapper_id);
    // The old entry's parameters become wrapper locals bound to every
    // iteration (benchmarks generally take none; this keeps arbitrary
    // programs valid).
    std::vector<QubitId> args;
    const Module &old_mod = prog.module(old_entry);
    for (size_t p = 0; p < old_mod.numParams(); ++p)
        args.push_back(wrapper.addLocal("scaled_q" +
                                        std::to_string(p)));
    wrapper.addCall(old_entry, std::move(args), factor);
    prog.setEntry(wrapper_id);
}

} // namespace workloads
} // namespace msq
