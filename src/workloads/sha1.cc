/**
 * @file
 * SHA-1 preimage search (paper §3.3): the SHA-1 compression function
 * [FIPS 180-4] implemented reversibly and used as a Grover oracle to
 * invert the hash. Message expansion is wire-rotated XORs; each round is
 * a chain of CTQG adders over the round function (Ch/Parity/Maj) — the
 * most serial benchmark of the suite, and the one with the largest
 * minimum qubit count (Table 1: Q = 472,746 at n = 448).
 *
 * @param n message size in bits; @param word_bits word width (32 in the
 * standard); @param rounds round count (80 in the standard).
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildSha1(unsigned n, unsigned word_bits, unsigned rounds)
{
    if (word_bits < 4 || rounds < 4)
        fatal("sha1: need word_bits >= 4 and rounds >= 4");
    unsigned msg_words = std::max(1u, n / word_bits);
    if (msg_words > 16)
        msg_words = 16; // one SHA-1 block feeds 16 schedule words
    Program prog;
    const unsigned w = word_bits;

    // Round constants (truncated to the word width).
    auto round_k = [w](unsigned t) -> uint64_t {
        static const uint64_t k[4] = {0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC,
                                      0xCA62C1D6};
        uint64_t mask = w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
        return k[(t / 20) % 4] & mask;
    };

    // schedule_step(w3, w8, w14, w16_out): W[t] = ROTL1(W[t-3] ^ W[t-8]
    // ^ W[t-14] ^ W[t-16]), computed into the W[t] register.
    ModuleId sched_id = prog.addModule("schedule_step");
    {
        Module &mod = prog.module(sched_id);
        ctqg::Register w3 = addParamReg(mod, "w3", w);
        ctqg::Register w8 = addParamReg(mod, "w8", w);
        ctqg::Register w14 = addParamReg(mod, "w14", w);
        ctqg::Register wt = addParamReg(mod, "wt", w);
        // W[t-16] is aliased onto wt by the caller's uncompute protocol;
        // here wt accumulates the XORs, then the rotation is a free wire
        // permutation applied at the call site.
        ctqg::bitwiseXor(mod, w3, wt);
        ctqg::bitwiseXor(mod, w8, wt);
        ctqg::bitwiseXor(mod, w14, wt);
    }

    // round_f<phase>(a,b,c,d,e,wt): e += ROTL5(a) + f(b,c,d) + K + W[t];
    // then the state rotation (a free relabeling at the call site).
    ModuleId round_ids[3];
    const char *names[3] = {"round_choose", "round_parity", "round_maj"};
    for (unsigned phase = 0; phase < 3; ++phase) {
        ModuleId id = prog.addModule(names[phase]);
        round_ids[phase] = id;
        Module &mod = prog.module(id);
        ctqg::Register a = addParamReg(mod, "a", w);
        ctqg::Register b = addParamReg(mod, "b", w);
        ctqg::Register c = addParamReg(mod, "c", w);
        ctqg::Register d = addParamReg(mod, "d", w);
        ctqg::Register e = addParamReg(mod, "e", w);
        ctqg::Register wt = addParamReg(mod, "wt", w);
        ctqg::Register f_out = mod.addRegister("f", w);
        ctqg::Register scratch = mod.addRegister("scratch", w);
        QubitId carry = mod.addLocal("carry");

        // f(b, c, d)
        if (phase == 0)
            ctqg::chooseFunction(mod, b, c, d, f_out);
        else if (phase == 1)
            ctqg::parityFunction(mod, b, c, d, f_out);
        else
            ctqg::majorityFunction(mod, b, c, d, f_out);

        // e += ROTL5(a); e += f; e += K; e += W[t]  (serial adders).
        ctqg::cuccaroAdd(mod, ctqg::rotl(a, 5), e, carry);
        ctqg::cuccaroAdd(mod, f_out, e, carry);
        ctqg::addConst(mod, round_k(phase * 20), e, scratch, carry);
        ctqg::cuccaroAdd(mod, wt, e, carry);

        // Uncompute f.
        if (phase == 0)
            ctqg::chooseFunction(mod, b, c, d, f_out);
        else if (phase == 1)
            ctqg::parityFunction(mod, b, c, d, f_out);
        else
            ctqg::majorityFunction(mod, b, c, d, f_out);
    }

    // sha1_oracle(msg words, flag): expansion + rounds + digest test.
    ModuleId oracle_id = prog.addModule("sha1_oracle");
    {
        Module &mod = prog.module(oracle_id);
        std::vector<ctqg::Register> wreg;
        for (unsigned t = 0; t < msg_words; ++t)
            wreg.push_back(addParamReg(mod, csprintf("m%u", t).c_str(), w));
        QubitId flag = mod.addParam("flag");
        for (unsigned t = msg_words; t < rounds; ++t)
            wreg.push_back(mod.addRegister(csprintf("w%u", t), w));
        std::vector<ctqg::Register> state;
        const char *state_names[5] = {"ha", "hb", "hc", "hd", "he"};
        for (auto *name : state_names)
            state.push_back(mod.addRegister(name, w));

        // Message expansion.
        for (unsigned t = msg_words; t < rounds; ++t) {
            std::vector<QubitId> args;
            auto push = [&](const ctqg::Register &reg) {
                args.insert(args.end(), reg.begin(), reg.end());
            };
            push(wreg[t >= 3 ? t - 3 : t % msg_words]);
            push(wreg[t >= 8 ? t - 8 : t % msg_words]);
            push(wreg[t >= 14 ? t - 14 : (t + 2) % msg_words]);
            push(wreg[t]);
            mod.addCall(sched_id, args);
            wreg[t] = ctqg::rotl(wreg[t], 1);
        }

        // Initial digest state.
        ctqg::setConst(mod, state[0], 0x67452301);
        ctqg::setConst(mod, state[1], 0xEFCDAB89);
        ctqg::setConst(mod, state[2], 0x98BADCFE);
        ctqg::setConst(mod, state[3], 0x10325476);
        ctqg::setConst(mod, state[4], 0xC3D2E1F0);

        // Rounds: call the phase module, then rotate the state registers
        // (a free relabeling) and ROTL30 b.
        for (unsigned t = 0; t < rounds; ++t) {
            unsigned phase = (t / 20) % 3;
            std::vector<QubitId> args;
            for (const auto &reg : state)
                args.insert(args.end(), reg.begin(), reg.end());
            const auto &wt = wreg[t % wreg.size()];
            args.insert(args.end(), wt.begin(), wt.end());
            mod.addCall(round_ids[phase], args);
            // State rotation: (a,b,c,d,e) <- (e', a, ROTL30(b), c, d).
            std::rotate(state.begin(), state.end() - 1, state.end());
            state[2] = ctqg::rotl(state[2], 30);
        }

        // Digest test: flag ^= (state == target) via an X-dressed
        // multi-controlled X on the top word.
        for (unsigned i = 0; i < w; i += 2)
            mod.addGate(GateKind::X, {state[0][i]});
        ctqg::Register anc = mod.addRegister("cmp_anc", w - 1);
        ctqg::multiControlledX(mod, state[0], flag, anc);
        for (unsigned i = 0; i < w; i += 2)
            mod.addGate(GateKind::X, {state[0][i]});
    }

    // diffuse over the message bits.
    const unsigned msg_bits = msg_words * w;
    ModuleId diffuse_id = prog.addModule("diffuse");
    {
        Module &mod = prog.module(diffuse_id);
        ctqg::Register msg = addParamReg(mod, "m", msg_bits);
        ctqg::Register anc = mod.addRegister("anc", msg_bits - 2);
        hadamardAll(mod, msg);
        xAll(mod, msg);
        ctqg::Register controls(msg.begin(), msg.end() - 1);
        ctqg::multiControlledZ(mod, controls, msg.back(), anc);
        xAll(mod, msg);
        hadamardAll(mod, msg);
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register msg = mod.addRegister("msg", msg_bits);
        QubitId flag = mod.addLocal("flag");
        prepAll(mod, msg);
        mod.addGate(GateKind::PrepZ, {flag});
        mod.addGate(GateKind::X, {flag});
        mod.addGate(GateKind::H, {flag});
        hadamardAll(mod, msg);
        std::vector<QubitId> args(msg.begin(), msg.end());
        args.push_back(flag);
        uint64_t reps = groverIterations(std::min(n, 120u));
        mod.addCall(oracle_id, args, reps);
        mod.addCall(diffuse_id, msg, reps);
        measureAll(mod, msg);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
