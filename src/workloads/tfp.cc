/**
 * @file
 * Triangle Finding Problem (paper §3.3): locate a triangle in a dense
 * n-node graph [Magniez-Santha-Szegedy '05]. The oracle tests every node
 * triple with an independent 2-Toffoli check on its own ancilla — a wide
 * fan of *small* leaf modules. This gives TFP the structure that makes it
 * the paper's one benchmark where RCP beats LPFS (§5.1): narrow RCP leaf
 * schedules let the coarse-grained scheduler run check blackboxes in
 * parallel.
 */

#include "workloads/workloads.hh"

#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildTfp(unsigned n)
{
    if (n < 3)
        fatal("tfp: n must be >= 3");
    Program prog;
    const unsigned num_edges = n * (n - 1) / 2;

    auto edge_index = [n](unsigned i, unsigned j) -> unsigned {
        // i < j; row-major upper triangle.
        return i * n - i * (i + 1) / 2 + (j - i - 1);
    };

    // triple_check(eij, ejk, eik, out): out ^= eij & ejk & eik.
    ModuleId check_id = prog.addModule("triple_check");
    {
        Module &mod = prog.module(check_id);
        QubitId eij = mod.addParam("eij");
        QubitId ejk = mod.addParam("ejk");
        QubitId eik = mod.addParam("eik");
        QubitId out = mod.addParam("out");
        QubitId anc = mod.addLocal("anc");
        mod.addGate(GateKind::Toffoli, {eij, ejk, anc});
        mod.addGate(GateKind::Toffoli, {anc, eik, out});
        mod.addGate(GateKind::Toffoli, {eij, ejk, anc});
    }

    const unsigned num_triples = n * (n - 1) * (n - 2) / 6;

    // oracle(e[], flag): check all triples in parallel, OR-reduce.
    ModuleId oracle_id = prog.addModule("oracle");
    {
        Module &mod = prog.module(oracle_id);
        ctqg::Register edges = addParamReg(mod, "e", num_edges);
        QubitId flag = mod.addParam("flag");
        ctqg::Register outs = mod.addRegister("hit", num_triples);

        unsigned t = 0;
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = i + 1; j < n; ++j) {
                for (unsigned k = j + 1; k < n; ++k) {
                    mod.addCall(check_id,
                                {edges[edge_index(i, j)],
                                 edges[edge_index(j, k)],
                                 edges[edge_index(i, k)], outs[t]});
                    ++t;
                }
            }
        }
        // OR-reduce the hits into the flag (X-conjugated AND over the
        // complemented hits would be exact; the CNOT reduction keeps the
        // parity structure and the serial tail the original has).
        for (unsigned u = 0; u < num_triples; ++u)
            mod.addGate(GateKind::CNOT, {outs[u], flag});
        // Uncompute the checks.
        t = 0;
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = i + 1; j < n; ++j) {
                for (unsigned k = j + 1; k < n; ++k) {
                    mod.addCall(check_id,
                                {edges[edge_index(i, j)],
                                 edges[edge_index(j, k)],
                                 edges[edge_index(i, k)], outs[t]});
                    ++t;
                }
            }
        }
    }

    // diffuse(e[]): inversion about the mean over edge superpositions.
    ModuleId diffuse_id = prog.addModule("diffuse");
    {
        Module &mod = prog.module(diffuse_id);
        ctqg::Register edges = addParamReg(mod, "e", num_edges);
        ctqg::Register anc = mod.addRegister("anc", num_edges - 2);
        hadamardAll(mod, edges);
        xAll(mod, edges);
        ctqg::Register controls(edges.begin(), edges.end() - 1);
        ctqg::multiControlledZ(mod, controls, edges.back(), anc);
        xAll(mod, edges);
        hadamardAll(mod, edges);
    }

    ModuleId iter_id = prog.addModule("tfp_iter");
    {
        Module &mod = prog.module(iter_id);
        ctqg::Register edges = addParamReg(mod, "e", num_edges);
        QubitId flag = mod.addParam("flag");
        std::vector<QubitId> args(edges.begin(), edges.end());
        args.push_back(flag);
        mod.addCall(oracle_id, args);
        mod.addCall(diffuse_id, edges);
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register edges = mod.addRegister("e", num_edges);
        QubitId flag = mod.addLocal("flag");
        prepAll(mod, edges);
        mod.addGate(GateKind::PrepZ, {flag});
        mod.addGate(GateKind::X, {flag});
        mod.addGate(GateKind::H, {flag});
        hadamardAll(mod, edges);
        std::vector<QubitId> args(edges.begin(), edges.end());
        args.push_back(flag);
        mod.addCall(iter_id, args, groverIterations(num_edges / 2));
        measureAll(mod, edges);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
