/**
 * @file
 * Binary Welded Tree (paper §3.3): quantum-random-walk traversal of two
 * binary trees welded at the leaves [Childs et al., STOC'03]. The walk
 * alternates three edge-coloring oracles; each oracle computes the
 * colored neighbor of the current node with CTQG-style reversible
 * arithmetic, and the walk step mixes the node and neighbor registers.
 * Parameterized by tree height n and walk-time parameter s.
 */

#include "workloads/workloads.hh"

#include "support/rng.hh"
#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildBwt(unsigned n, unsigned s)
{
    if (n < 2 || s < 1)
        fatal("bwt: need n >= 2 and s >= 1");
    Program prog;
    const unsigned width = n + 2; // node labels need n+2 bits

    SplitMix64 rng(hashString("bwt") ^ (uint64_t{n} << 32) ^ s);

    // One oracle per edge color c: b ^= neighbor_c(a).
    // neighbor_c is an affine-ish reversible function: constant add,
    // parity-controlled increments, and an a<->b entangling layer.
    ModuleId color_oracle[3];
    for (unsigned c = 0; c < 3; ++c) {
        ModuleId id = prog.addModule(csprintf("color_oracle_%u", c));
        color_oracle[c] = id;
        Module &mod = prog.module(id);
        ctqg::Register a = addParamReg(mod, "a", width);
        ctqg::Register b = addParamReg(mod, "b", width);
        ctqg::Register scratch = mod.addRegister("scratch", width);
        QubitId carry = mod.addLocal("carry");
        QubitId ctl = mod.addLocal("ctl");

        // b ^= a (copy node label), then arithmetic on b.
        ctqg::bitwiseXor(mod, a, b);
        uint64_t mask = width >= 64 ? ~uint64_t{0}
                                    : ((uint64_t{1} << width) - 1);
        uint64_t color_const = rng.next() & mask;
        ctqg::addConst(mod, color_const | 1, b, scratch, carry);
        // Parity(a)-controlled add of a into b: a serial adder chain
        // coupling the node and neighbor registers.
        for (QubitId q : a)
            mod.addGate(GateKind::CNOT, {q, ctl});
        ctqg::controlledAdd(mod, ctl, a, b, scratch, carry);
        for (QubitId q : a)
            mod.addGate(GateKind::CNOT, {q, ctl});
    }

    // walk_step(a, b): for each color, compute the neighbor, mix, and
    // uncompute (oracles are their own structural inverse here).
    ModuleId step_id = prog.addModule("walk_step");
    {
        Module &mod = prog.module(step_id);
        ctqg::Register a = addParamReg(mod, "a", width);
        ctqg::Register b = addParamReg(mod, "b", width);
        std::vector<QubitId> args;
        args.insert(args.end(), a.begin(), a.end());
        args.insert(args.end(), b.begin(), b.end());
        for (unsigned c = 0; c < 3; ++c) {
            mod.addCall(color_oracle[c], args);
            // Coin/mixing layer between the registers.
            for (unsigned i = 0; i < width; ++i) {
                mod.addGate(GateKind::H, {b[i]});
                mod.addGate(GateKind::CNOT, {b[i], a[i]});
            }
            mod.addCall(color_oracle[c], args);
        }
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register a = mod.addRegister("a", width);
        ctqg::Register b = mod.addRegister("b", width);
        prepAll(mod, a);
        prepAll(mod, b);
        // Start at the entry node (label 1).
        mod.addGate(GateKind::X, {a[0]});
        std::vector<QubitId> args;
        args.insert(args.end(), a.begin(), a.end());
        args.insert(args.end(), b.begin(), b.end());
        mod.addCall(step_id, args, s);
        measureAll(mod, a);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
