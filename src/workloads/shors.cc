/**
 * @file
 * Shor's factoring (paper §3.3): period finding over modular
 * exponentiation with a Quantum Fourier Transform readout [Shor '94],
 * in the Fourier-basis (Draper/Beauregard) style: each controlled
 * multiplication is a QFT, a fan of phase rotations by classically
 * computed constants, and an inverse QFT.
 *
 * This benchmark is the paper's rotation stress test (§5.4, Table 2,
 * Fig. 9): the phase-rotation fans are parallel across distinct qubits
 * *in principle*, but once each rotation is decomposed into a long serial
 * primitive sequence (kept as a blackbox module), every concurrent
 * rotation needs its own SIMD region — so Shor's keeps speeding up with
 * k long after the other benchmarks saturate.
 */

#include "workloads/workloads.hh"

#include "support/rng.hh"
#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

namespace {

/** Append a controlled-phase(theta) between ctl and tgt, decomposed into
 * primitives + rotations (standard 2-CNOT, 3-rotation identity). */
void
controlledPhase(Module &mod, QubitId ctl, QubitId tgt, double theta)
{
    mod.addGate(GateKind::Rz, {ctl}, theta / 2);
    mod.addGate(GateKind::CNOT, {ctl, tgt});
    mod.addGate(GateKind::Rz, {tgt}, -theta / 2);
    mod.addGate(GateKind::CNOT, {ctl, tgt});
    mod.addGate(GateKind::Rz, {tgt}, theta / 2);
}

} // anonymous namespace

Program
buildShors(unsigned n)
{
    if (n < 3)
        fatal("shors: n must be >= 3");
    Program prog;
    const unsigned ctl_bits = 2 * n;
    constexpr double pi = 3.14159265358979323846;

    SplitMix64 rng(hashString("shors") ^ n);
    // The (classical) modulus and base define the per-step multipliers
    // a^(2^i) mod N; only their bit patterns matter to the circuit.
    uint64_t modulus = (rng.next() | 1) & 0xffffffffULL;
    uint64_t multiplier = (rng.next() | 3);

    // qft(x[width]): full QFT with decomposed controlled phases.
    ModuleId qft_id = prog.addModule("qft");
    const unsigned qft_width = ctl_bits;
    {
        Module &mod = prog.module(qft_id);
        ctqg::Register x = addParamReg(mod, "x", qft_width);
        for (unsigned i = 0; i < qft_width; ++i) {
            mod.addGate(GateKind::H, {x[i]});
            for (unsigned j = i + 1; j < qft_width; ++j) {
                double theta = pi / static_cast<double>(uint64_t{1}
                                                        << (j - i));
                controlledPhase(mod, x[j], x[i], theta);
            }
        }
    }

    // work_qft(work[n]): QFT on the work register (used inside cmult).
    ModuleId work_qft_id = prog.addModule("work_qft");
    {
        Module &mod = prog.module(work_qft_id);
        ctqg::Register wreg = addParamReg(mod, "w", n);
        for (unsigned i = 0; i < n; ++i) {
            mod.addGate(GateKind::H, {wreg[i]});
            for (unsigned j = i + 1; j < n; ++j) {
                double theta = pi / static_cast<double>(uint64_t{1}
                                                        << (j - i));
                controlledPhase(mod, wreg[j], wreg[i], theta);
            }
        }
    }

    // cmult_<i>(ctl, work[n]): controlled multiply by a^(2^i) mod N.
    // In the Fourier basis the constant addition is a *parallel* fan of
    // rotations with step-specific angles (Table 2's scenario).
    std::vector<ModuleId> cmult_ids;
    uint64_t factor = multiplier;
    for (unsigned i = 0; i < ctl_bits; ++i) {
        ModuleId id = prog.addModule(csprintf("cmult_%u", i));
        cmult_ids.push_back(id);
        Module &mod = prog.module(id);
        QubitId ctl = mod.addParam("ctl");
        ctqg::Register wreg = addParamReg(mod, "w", n);

        mod.addCall(work_qft_id, wreg);
        // Controlled Fourier-basis constant add of c_i = a^(2^i) mod N:
        // one distinct-angle rotation per work qubit, bracketed by the
        // control coupling.
        for (unsigned b = 0; b < n; ++b) {
            double angle = 2.0 * pi *
                           static_cast<double>(factor % (b + 2)) /
                           static_cast<double>(uint64_t{1} << ((b % 20)
                                                               + 1));
            mod.addGate(GateKind::CNOT, {ctl, wreg[b]});
            mod.addGate(GateKind::Rz, {wreg[b]}, angle + 1e-9 * i);
            mod.addGate(GateKind::CNOT, {ctl, wreg[b]});
        }
        mod.addCall(work_qft_id, wreg); // structural inverse QFT
        // Classical update: factor = factor^2 mod modulus.
        factor = (factor * factor) % (modulus | 3);
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register x = mod.addRegister("x", ctl_bits);
        ctqg::Register work = mod.addRegister("work", n);
        prepAll(mod, x);
        prepAll(mod, work);
        mod.addGate(GateKind::X, {work[0]}); // |1> in the work register
        hadamardAll(mod, x);
        for (unsigned i = 0; i < ctl_bits; ++i) {
            std::vector<QubitId> args{x[i]};
            args.insert(args.end(), work.begin(), work.end());
            mod.addCall(cmult_ids[i], args);
        }
        mod.addCall(qft_id, x);
        measureAll(mod, x);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
