/**
 * @file
 * The paper's benchmark suite (§3.3): parameterized generators for the
 * eight large-scale quantum benchmarks, built from the same algorithmic
 * structure the Scaffold originals have (oracle/iteration skeletons, CTQG
 * arithmetic, QFT rotation ladders).
 *
 * Two parameter presets are provided:
 *  - paperParams(): the paper's problem sizes (BF 2x2, BWT n=300 s=3000,
 *    CN p=6, Grovers n=40, GSE M=10, SHA-1 n=448/128, Shors n=512,
 *    TFP n=5). Repeat-counted calls keep these representable without
 *    unrolling; use them for resource estimation (Fig. 5, Table 1).
 *  - scaledParams(): reduced sizes with identical structure that
 *    schedule in seconds; use them for the scheduling studies
 *    (Figs. 6-9). See DESIGN.md for the substitution rationale.
 *  - tinyParams(): minimum legal sizes whose leaf modules fit the
 *    OptScheduler's exhaustive tier (a few hundred ops at most), so
 *    the branch-and-bound scheduler can produce optimality proofs on
 *    real benchmark structure instead of falling back everywhere.
 */

#ifndef MSQ_WORKLOADS_WORKLOADS_HH
#define MSQ_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace msq {
namespace workloads {

/** Grover's Search over a database of 2^n elements. */
Program buildGrovers(unsigned n);

/** Binary Welded Tree quantum walk; tree height n, s walk steps. */
Program buildBwt(unsigned n, unsigned s);

/**
 * Ground State Estimation by quantum phase estimation.
 * @param m molecule size (molecular weight).
 * @param precision_bits phase-readout bits (paper GSE M=10 has Q=13).
 */
Program buildGse(unsigned m, unsigned precision_bits);

/** Triangle Finding Problem on an n-node dense graph. */
Program buildTfp(unsigned n);

/** Boolean Formula (Hex winning strategy) on an x-by-y board. */
Program buildBooleanFormula(unsigned x, unsigned y);

/** Class Number with p digits after the radix point. */
Program buildClassNumber(unsigned p);

/**
 * SHA-1 preimage search (SHA-1 as a Grover oracle).
 * @param n message size in bits.
 * @param word_bits word width (32 in the standard; scaled runs shrink
 *        it to keep leaf sizes tractable).
 * @param rounds number of SHA-1 rounds (80 in the standard).
 */
Program buildSha1(unsigned n, unsigned word_bits = 32,
                  unsigned rounds = 80);

/** Shor's factoring of an n-bit number (QFT + modular exponentiation). */
Program buildShors(unsigned n);

/** A named, pre-parameterized benchmark instance. */
struct WorkloadSpec
{
    std::string name;      ///< display name, e.g. "BWT n=300,s=3000"
    std::string shortName; ///< e.g. "bwt"
    std::function<Program()> build;
};

/** All eight benchmarks at the paper's problem sizes. */
std::vector<WorkloadSpec> paperParams();

/** All eight benchmarks at scaled-down sizes (same structure). */
std::vector<WorkloadSpec> scaledParams();

/** All eight benchmarks at minimum legal sizes (OptScheduler-friendly
 * leaves; same algorithmic skeleton as the other presets). */
std::vector<WorkloadSpec> tinyParams();

/** Look up a spec by shortName in @p specs (fatal when missing).
 * Returns a copy so callers may pass a temporary spec list. */
WorkloadSpec findWorkload(const std::vector<WorkloadSpec> &specs,
                          const std::string &short_name);

/**
 * Scale @p prog up by @p factor without unrolling: the entry module is
 * wrapped in a new entry that repeat-calls it @p factor times, so every
 * resource total grows by exactly @p factor (plus the wrapper's single
 * call-flush overhead) while the set of distinct modules — and thus
 * scheduling/estimation cost — is unchanged. This is how the built-in
 * benchmarks are instantiated at paper-scale sizes (10^9+ gates) for
 * `msq-verify --scale` and bench_paper_scale. @p factor <= 1 is a
 * no-op.
 */
void scaleWorkload(Program &prog, uint64_t factor);

} // namespace workloads
} // namespace msq

#endif // MSQ_WORKLOADS_WORKLOADS_HH
