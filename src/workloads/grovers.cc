/**
 * @file
 * Grover's Search (paper §3.3): amplitude amplification over a database of
 * 2^n elements [Grover '96]. Structure: an oracle marking one basis state
 * (X-dressed multi-controlled X onto a phase-kickback flag), the standard
 * diffusion operator, and ceil(pi/4 * 2^(n/2)) repetitions of the two.
 */

#include "workloads/workloads.hh"

#include "support/rng.hh"
#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildGrovers(unsigned n)
{
    if (n < 3)
        fatal("grovers: n must be >= 3");
    Program prog;

    // Deterministic marked element.
    SplitMix64 rng(hashString("grovers") ^ n);
    uint64_t marked = rng.next() & ((n >= 64) ? ~uint64_t{0}
                                              : ((uint64_t{1} << n) - 1));

    // oracle(x[n], flag): flip flag when x == marked.
    ModuleId oracle_id = prog.addModule("oracle");
    {
        Module &mod = prog.module(oracle_id);
        ctqg::Register x = addParamReg(mod, "x", n);
        QubitId flag = mod.addParam("flag");
        ctqg::Register anc = mod.addRegister("anc", n - 1);
        auto dress = [&]() {
            for (unsigned i = 0; i < n; ++i)
                if (!((marked >> i) & 1))
                    mod.addGate(GateKind::X, {x[i]});
        };
        dress();
        ctqg::multiControlledX(mod, x, flag, anc);
        dress();
    }

    // diffuse(x[n]): 2|s><s| - I.
    ModuleId diffuse_id = prog.addModule("diffuse");
    {
        Module &mod = prog.module(diffuse_id);
        ctqg::Register x = addParamReg(mod, "x", n);
        ctqg::Register anc = mod.addRegister("anc", n - 2);
        hadamardAll(mod, x);
        xAll(mod, x);
        ctqg::Register controls(x.begin(), x.end() - 1);
        ctqg::multiControlledZ(mod, controls, x.back(), anc);
        xAll(mod, x);
        hadamardAll(mod, x);
    }

    // grover_iter(x[n], flag): one amplification round.
    ModuleId iter_id = prog.addModule("grover_iter");
    {
        Module &mod = prog.module(iter_id);
        ctqg::Register x = addParamReg(mod, "x", n);
        QubitId flag = mod.addParam("flag");
        std::vector<QubitId> oracle_args(x.begin(), x.end());
        oracle_args.push_back(flag);
        mod.addCall(oracle_id, oracle_args);
        mod.addCall(diffuse_id, x);
    }

    // main: prepare, amplify, measure.
    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register x = mod.addRegister("x", n);
        QubitId flag = mod.addLocal("flag");
        prepAll(mod, x);
        mod.addGate(GateKind::PrepZ, {flag});
        // |-> on the flag for phase kickback.
        mod.addGate(GateKind::X, {flag});
        mod.addGate(GateKind::H, {flag});
        hadamardAll(mod, x);
        std::vector<QubitId> iter_args(x.begin(), x.end());
        iter_args.push_back(flag);
        mod.addCall(iter_id, iter_args, groverIterations(n));
        measureAll(mod, x);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
