/**
 * @file
 * Ground State Estimation (paper §3.3): iterative quantum phase estimation
 * of a molecular Hamiltonian [Whitfield et al. '10]. Each Trotter step is
 * a sequence of Pauli-term exponentials — CNOT ladders bracketing Rz
 * rotations — acting on the *same* small system register over and over.
 *
 * This is the benchmark with the paper's most distinctive structure
 * (§5.2): "the two key qubit registers ... are rarely moved out of a SIMD
 * region once they are in place and typically have long sequences of
 * operations on the same qubits", giving GSE the largest (308%) gain from
 * communication-aware scheduling. Rotations are decomposed *inline* so
 * the serial chains appear inside leaf modules.
 *
 * Qubits: m+1 system + 1 control + 1 measurement ancilla = m+3 - 2 = at
 * M=10 this matches Table 1's Q = 13.
 */

#include "workloads/workloads.hh"

#include "support/rng.hh"
#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildGse(unsigned m, unsigned precision_bits)
{
    if (m < 2 || precision_bits < 1)
        fatal("gse: need m >= 2 and precision_bits >= 1");
    Program prog;
    const unsigned sys_width = m + 1;

    SplitMix64 rng(hashString("gse") ^ m);

    // trotter_step(sys): exp(-iHt) ~ prod_terms exp(-i c_t P_t dt).
    // Two-body terms: CNOT ladder to the pivot, Rz, ladder back.
    ModuleId trotter_id = prog.addModule("trotter_step");
    {
        Module &mod = prog.module(trotter_id);
        ctqg::Register sys = addParamReg(mod, "sys", sys_width);
        // Single-body terms.
        for (unsigned i = 0; i < sys_width; ++i) {
            double angle = 0.1 + 0.8 * rng.nextDouble();
            mod.addGate(GateKind::Rz, {sys[i]}, angle);
        }
        // Two-body terms over every qubit pair (O(m^2) Hamiltonian
        // terms, as in second-quantized molecular Hamiltonians).
        for (unsigned i = 0; i < sys_width; ++i) {
            for (unsigned j = i + 1; j < sys_width; ++j) {
                double angle = 0.05 + 0.9 * rng.nextDouble();
                mod.addGate(GateKind::CNOT, {sys[i], sys[j]});
                mod.addGate(GateKind::Rz, {sys[j]}, angle);
                mod.addGate(GateKind::CNOT, {sys[i], sys[j]});
            }
        }
    }

    // main: iterative phase estimation, one precision bit at a time.
    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register sys = mod.addRegister("sys", sys_width);
        QubitId ctl = mod.addLocal("ctl");
        QubitId readout = mod.addLocal("readout");
        prepAll(mod, sys);
        mod.addGate(GateKind::PrepZ, {ctl});
        mod.addGate(GateKind::PrepZ, {readout});
        // Reference-state preparation (Hartree-Fock-like occupation).
        for (unsigned i = 0; i < sys_width; i += 2)
            mod.addGate(GateKind::X, {sys[i]});

        for (unsigned j = 0; j < precision_bits; ++j) {
            mod.addGate(GateKind::H, {ctl});
            // Controlled-U^(2^j); the repeated Trotter evolution
            // dominates, so the control dressing is elided (it does not
            // change the schedule structure).
            uint64_t reps = j < 63 ? (uint64_t{1} << j) : (uint64_t{1} << 62);
            mod.addCall(trotter_id, sys, reps);
            // Phase-feedback correction from earlier bits.
            mod.addGate(GateKind::Rz, {ctl},
                        -3.14159265358979 / static_cast<double>(j + 1));
            mod.addGate(GateKind::H, {ctl});
            mod.addGate(GateKind::CNOT, {ctl, readout});
            mod.addGate(GateKind::MeasZ, {ctl});
            mod.addGate(GateKind::PrepZ, {ctl});
        }
        mod.addGate(GateKind::MeasZ, {readout});
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
