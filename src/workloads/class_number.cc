/**
 * @file
 * Class Number (paper §3.3): computing the class group of a real
 * quadratic number field [Hallgren, STOC'05]. The quantum core is a
 * period-finding loop over fixed-point arithmetic evaluations of the
 * field's principal-ideal distance function — in the Scaffold original,
 * wall-to-wall CTQG arithmetic (the paper groups CN with BF and SHA-1 as
 * highly locally serialized CTQG code, §5.2). Parameter p is the number
 * of fixed-point digits after the radix point.
 */

#include "workloads/workloads.hh"

#include "support/rng.hh"
#include "workloads/detail.hh"

namespace msq {
namespace workloads {

using namespace detail;

Program
buildClassNumber(unsigned p)
{
    if (p < 1)
        fatal("class_number: p must be >= 1");
    Program prog;
    const unsigned word = 6 + p; // integer part + p fractional digits

    SplitMix64 rng(hashString("cn") ^ p);

    // fp_mul(a, b, prod): fixed-point multiply-accumulate.
    ModuleId mul_id = prog.addModule("fp_mul");
    {
        Module &mod = prog.module(mul_id);
        ctqg::Register a = addParamReg(mod, "a", word);
        ctqg::Register b = addParamReg(mod, "b", word);
        ctqg::Register prod = addParamReg(mod, "prod", 2 * word);
        ctqg::Register scratch = mod.addRegister("scratch", 2 * word);
        QubitId carry = mod.addLocal("carry");
        ctqg::multiplyAccumulate(mod, a, b, prod, scratch, carry);
    }

    // fp_reduce(prod, modulus-const): subtract-and-compare reduction.
    ModuleId reduce_id = prog.addModule("fp_reduce");
    {
        Module &mod = prog.module(reduce_id);
        ctqg::Register prod = addParamReg(mod, "prod", 2 * word);
        ctqg::Register cmp = mod.addRegister("cmp", 2 * word);
        QubitId flag = mod.addLocal("flag");
        QubitId carry = mod.addLocal("carry");
        uint64_t modulus = (rng.next() % 251) + 5;
        ctqg::Register mod_reg = mod.addRegister("modreg", 2 * word);
        ctqg::setConst(mod, mod_reg, modulus);
        ctqg::compareLess(mod, mod_reg, prod, flag, cmp, carry);
        ctqg::cuccaroSub(mod, mod_reg, prod, carry);
        ctqg::setConst(mod, mod_reg, modulus);
    }

    // distance_step(x, acc, prod): one evaluation of the principal-ideal
    // distance function: multiply, reduce, accumulate.
    ModuleId step_id = prog.addModule("distance_step");
    {
        Module &mod = prog.module(step_id);
        ctqg::Register x = addParamReg(mod, "x", word);
        ctqg::Register acc = addParamReg(mod, "acc", word);
        ctqg::Register prod = mod.addRegister("prod", 2 * word);
        ctqg::Register scratch = mod.addRegister("scratch", word);
        QubitId carry = mod.addLocal("carry");

        std::vector<QubitId> mul_args;
        mul_args.insert(mul_args.end(), x.begin(), x.end());
        mul_args.insert(mul_args.end(), acc.begin(), acc.end());
        mul_args.insert(mul_args.end(), prod.begin(), prod.end());
        mod.addCall(mul_id, mul_args);
        mod.addCall(reduce_id, prod);
        ctqg::Register low(prod.begin(), prod.begin() + word);
        ctqg::cuccaroAdd(mod, low, acc, carry);
        // Uncompute the product for reuse next step.
        mod.addCall(reduce_id, prod);
        mod.addCall(mul_id, mul_args);
        (void)scratch;
    }

    ModuleId main_id = prog.addModule("main");
    {
        Module &mod = prog.module(main_id);
        ctqg::Register x = mod.addRegister("x", word);
        ctqg::Register acc = mod.addRegister("acc", word);
        prepAll(mod, x);
        prepAll(mod, acc);
        hadamardAll(mod, x); // period-finding superposition
        std::vector<QubitId> args;
        args.insert(args.end(), x.begin(), x.end());
        args.insert(args.end(), acc.begin(), acc.end());
        // The regulator-precision loop: O(p * word) distance evaluations.
        mod.addCall(step_id, args, uint64_t{p} * word * 4);
        // Fourier readout of the period.
        hadamardAll(mod, x);
        measureAll(mod, x);
        measureAll(mod, acc);
    }

    prog.setEntry(main_id);
    prog.validate();
    return prog;
}

} // namespace workloads
} // namespace msq
