#include "verify/linter.hh"

#include <array>
#include <cmath>
#include <vector>

#include "analysis/qubit_analyses.hh"
#include "support/strings.hh"

namespace msq {

namespace {

DiagContext
at(const Module &mod, uint32_t op_index, const Operation &op)
{
    return {mod.name(), op_index, op.line};
}

/** L001: qubits never referenced by any operation. */
void
lintUnusedQubits(const Module &mod, DiagnosticEngine &diags)
{
    std::vector<bool> used(mod.numQubits(), false);
    for (const Operation &op : mod.ops())
        for (QubitId q : op.operands)
            if (q < used.size())
                used[q] = true;
    for (QubitId q = 0; q < mod.numQubits(); ++q) {
        if (used[q])
            continue;
        const char *role = q < mod.numParams() ? "parameter" : "local";
        diags.warning(DiagCode::UnusedQubit,
                      csprintf("%s qubit %u ('%s') is never used", role, q,
                               mod.qubitName(q).c_str()),
                      {mod.name()});
    }
}

/**
 * L002: dead gates after terminal measurement. A qubit "escapes" when
 * it is measured or passed to a callee; a non-call, non-measure gate
 * all of whose operands are past their final escape — and at least one
 * of which was actually measured — cannot influence any outcome.
 */
void
lintDeadGates(const Module &mod, DiagnosticEngine &diags)
{
    constexpr uint32_t never = ~uint32_t{0};
    std::vector<uint32_t> last_escape(mod.numQubits(), never);
    std::vector<bool> ever_measured(mod.numQubits(), false);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        bool escapes = op.isCall() || isMeasureGate(op.kind);
        for (QubitId q : op.operands) {
            if (q >= mod.numQubits())
                continue;
            if (escapes)
                last_escape[q] = i;
            if (isMeasureGate(op.kind))
                ever_measured[q] = true;
        }
    }
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        if (op.isCall() || isMeasureGate(op.kind) || op.operands.empty())
            continue;
        bool all_past = true;
        bool any_measured = false;
        for (QubitId q : op.operands) {
            if (q >= mod.numQubits()) {
                // Malformed operand; the verifier reports it.
                all_past = false;
                break;
            }
            all_past = all_past &&
                       (last_escape[q] != never && i > last_escape[q]);
            any_measured = any_measured || ever_measured[q];
        }
        if (all_past && any_measured) {
            diags.warning(DiagCode::DeadGate,
                          csprintf("gate %s follows the final measurement "
                                   "of all its operands (dead code)",
                                   gateName(op.kind)),
                          at(mod, i, op));
        }
    }
}

/** Would @p b undo @p a when run immediately after it? */
bool
isInversePair(const Operation &a, const Operation &b)
{
    if (a.isCall() || b.isCall() || a.operands != b.operands)
        return false;
    switch (a.kind) {
      case GateKind::PrepZ:
      case GateKind::PrepX:
      case GateKind::MeasZ:
      case GateKind::MeasX:
        return false; // no inverse
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
        return b.kind == a.kind && b.angle == -a.angle;
      default:
        return daggerOf(a.kind) == b.kind;
    }
}

/** The diagonal basis in which @p op acts on its operand @p q, for the
 * commutation check: two gates sharing a qubit commute when both are
 * diagonal in the same basis on it. */
enum class DiagonalBasis : uint8_t { None, Z, X };

DiagonalBasis
operandBasis(const Operation &op, QubitId q)
{
    switch (op.kind) {
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdag:
      case GateKind::T:
      case GateKind::Tdag:
      case GateKind::Rz:
      case GateKind::CZ:
        return DiagonalBasis::Z;
      case GateKind::X:
      case GateKind::Rx:
        return DiagonalBasis::X;
      case GateKind::CNOT:
        // Diagonal in Z on the control, in X on the target.
        return op.operands[0] == q ? DiagonalBasis::Z : DiagonalBasis::X;
      default:
        // H, Y, Ry, prep, measure, Swap, Toffoli, Fredkin, calls:
        // assume nothing.
        return DiagonalBasis::None;
    }
}

/** Conservative: true only when @p a and @p b provably commute —
 * disjoint operand sets, or a matching diagonal basis on every shared
 * qubit. */
bool
commutes(const Operation &a, const Operation &b)
{
    for (QubitId q : a.operands) {
        bool shared = false;
        for (QubitId r : b.operands)
            shared = shared || q == r;
        if (!shared)
            continue;
        if (a.isCall() || b.isCall())
            return false;
        DiagonalBasis ba = operandBasis(a, q);
        DiagonalBasis bb = operandBasis(b, q);
        if (ba == DiagonalBasis::None || ba != bb)
            return false;
    }
    return true;
}

/**
 * L003: gate/inverse pairs the peephole would remove — adjacent, or
 * separated only by gates that provably commute with the first of the
 * pair (so the pair can be slid together and cancelled).
 */
void
lintUncancelledInverses(const Module &mod, DiagnosticEngine &diags)
{
    // How far past op i to search for its inverse. Bounds the quadratic
    // worst case; real cancellation bugs sit close together.
    constexpr uint32_t lookahead = 32;

    std::vector<bool> consumed(mod.numOps(), false);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        if (consumed[i])
            continue;
        const Operation &a = mod.op(i);
        if (a.isCall())
            continue;
        uint32_t limit = mod.numOps();
        if (limit - i > lookahead + 1)
            limit = i + 1 + lookahead;
        for (uint32_t j = i + 1; j < limit; ++j) {
            if (consumed[j])
                continue; // a cancelled pair commutes with everything
            const Operation &b = mod.op(j);
            if (isInversePair(a, b)) {
                if (j == i + 1) {
                    diags.warning(
                        DiagCode::UncancelledInverses,
                        csprintf("ops %u/%u: adjacent %s/%s pair cancels "
                                 "to identity (run cancel-inverses)",
                                 i, j, gateName(a.kind), gateName(b.kind)),
                        at(mod, i, a));
                } else {
                    diags.warning(
                        DiagCode::UncancelledInverses,
                        csprintf("ops %u/%u: %s/%s pair separated only by "
                                 "commuting gates cancels to identity "
                                 "(run cancel-inverses)",
                                 i, j, gateName(a.kind), gateName(b.kind)),
                        at(mod, i, a));
                }
                consumed[i] = true;
                consumed[j] = true;
                break;
            }
            if (!commutes(a, b))
                break;
        }
    }
}

/** L004: rotations finer than the decomposer can resolve. */
void
lintRotationPrecision(const Module &mod, DiagnosticEngine &diags,
                      const LintOptions &options)
{
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        if (!isRotationGate(op.kind))
            continue;
        if (std::fabs(op.angle) >= options.rotationPrecisionFloor)
            continue;
        diags.warning(DiagCode::RotationBelowPrecision,
                      csprintf("%s angle %g is below the decomposition "
                               "precision floor %g; gate is effectively "
                               "identity",
                               gateName(op.kind), op.angle,
                               options.rotationPrecisionFloor),
                      at(mod, i, op));
    }
}

/** L005: gate kinds that can never coalesce into a SIMD batch. */
void
lintNonCoalescable(const Module &mod, DiagnosticEngine &diags,
                   const LintOptions &options)
{
    if (!mod.isLeaf() || mod.numOps() < options.coalesceMinOps)
        return;
    std::array<uint64_t, numGateKinds> counts{};
    for (const Operation &op : mod.ops())
        ++counts[static_cast<size_t>(op.kind)];
    for (size_t k = 0; k < numGateKinds; ++k) {
        if (counts[k] != 1)
            continue;
        auto kind = static_cast<GateKind>(k);
        diags.warning(DiagCode::NonCoalescableGate,
                      csprintf("gate kind %s occurs once in this leaf "
                               "module and can never share a SIMD region",
                               gateName(kind)),
                      {mod.name()});
    }
}

/**
 * L007/L008: the interprocedural refinements of L001 and V009. Only
 * runs when the call graph is acyclic with a valid entry — on programs
 * the verifier rejects, the local rules already reported what they
 * could.
 */
void
lintInterprocedural(const Program &prog, DiagnosticEngine &diags,
                    const std::vector<bool> &reachable)
{
    LivenessAnalysis liveness = LivenessAnalysis::analyze(prog);
    if (liveness.valid()) {
        for (ModuleId id = 0; id < prog.numModules(); ++id) {
            if (!reachable[id])
                continue;
            const Module &mod = prog.module(id);
            const ModuleLiveness &ml = liveness.module(id);
            for (QubitId q = 0; q < mod.numQubits(); ++q) {
                if (!ml.locallyReferenced[q] || ml.ranges[q].used)
                    continue;
                const char *role =
                    q < mod.numParams() ? "parameter" : "local";
                diags.warning(
                    DiagCode::InterprocUnusedQubit,
                    csprintf("%s qubit %u ('%s') is only passed to calls "
                             "that never use it",
                             role, q, mod.qubitName(q).c_str()),
                    {mod.name()});
            }
        }
    }

    MeasurementDominance dominance = MeasurementDominance::analyze(prog);
    if (dominance.valid()) {
        for (const MeasurementViolation &v : dominance.violations()) {
            // Local violations are verifier errors (V009); only the
            // cross-call cases V009 cannot see are lint territory.
            if (!v.interprocedural || v.module >= prog.numModules() ||
                !reachable[v.module])
                continue;
            const Module &mod = prog.module(v.module);
            const Operation &op = mod.op(v.opIndex);
            diags.warning(
                DiagCode::InterprocUseAfterMeasure,
                csprintf("qubit %u ('%s') may still be measured across a "
                         "call boundary when this operation uses it",
                         v.qubit, mod.qubitName(v.qubit).c_str()),
                at(mod, v.opIndex, op));
        }
    }
}

} // anonymous namespace

void
lintModule(const Program &prog, ModuleId id, DiagnosticEngine &diags,
           const LintOptions &options)
{
    const Module &mod = prog.module(id);
    lintUnusedQubits(mod, diags);
    lintDeadGates(mod, diags);
    lintUncancelledInverses(mod, diags);
    lintRotationPrecision(mod, diags, options);
    lintNonCoalescable(mod, diags, options);
}

size_t
lintProgram(const Program &prog, DiagnosticEngine &diags,
            const LintOptions &options)
{
    size_t warnings_before = diags.numWarnings();

    // Reachability over valid callees only; cycles and bad callee ids
    // are the verifier's concern and must not trip the linter.
    std::vector<bool> reachable(prog.numModules(), false);
    if (prog.entry() != invalidModule &&
        prog.entry() < prog.numModules()) {
        std::vector<ModuleId> work{prog.entry()};
        reachable[prog.entry()] = true;
        while (!work.empty()) {
            ModuleId id = work.back();
            work.pop_back();
            for (const Operation &op : prog.module(id).ops()) {
                if (!op.isCall() || op.callee >= prog.numModules())
                    continue;
                if (!reachable[op.callee]) {
                    reachable[op.callee] = true;
                    work.push_back(op.callee);
                }
            }
        }
    }

    for (ModuleId id = 0; id < prog.numModules(); ++id) {
        if (!reachable[id]) {
            diags.warning(DiagCode::UnreachableModule,
                          csprintf("module %s is unreachable from the "
                                   "entry module",
                                   prog.module(id).name().c_str()),
                          {prog.module(id).name()});
            continue;
        }
        lintModule(prog, id, diags, options);
    }

    lintInterprocedural(prog, diags, reachable);

    return diags.numWarnings() - warnings_before;
}

} // namespace msq
