#include "verify/linter.hh"

#include <array>
#include <cmath>
#include <vector>

#include "support/strings.hh"

namespace msq {

namespace {

DiagContext
at(const Module &mod, uint32_t op_index, const Operation &op)
{
    return {mod.name(), op_index, op.line};
}

/** L001: qubits never referenced by any operation. */
void
lintUnusedQubits(const Module &mod, DiagnosticEngine &diags)
{
    std::vector<bool> used(mod.numQubits(), false);
    for (const Operation &op : mod.ops())
        for (QubitId q : op.operands)
            if (q < used.size())
                used[q] = true;
    for (QubitId q = 0; q < mod.numQubits(); ++q) {
        if (used[q])
            continue;
        const char *role = q < mod.numParams() ? "parameter" : "local";
        diags.warning(DiagCode::UnusedQubit,
                      csprintf("%s qubit %u ('%s') is never used", role, q,
                               mod.qubitName(q).c_str()),
                      {mod.name()});
    }
}

/**
 * L002: dead gates after terminal measurement. A qubit "escapes" when
 * it is measured or passed to a callee; a non-call, non-measure gate
 * all of whose operands are past their final escape — and at least one
 * of which was actually measured — cannot influence any outcome.
 */
void
lintDeadGates(const Module &mod, DiagnosticEngine &diags)
{
    constexpr uint32_t never = ~uint32_t{0};
    std::vector<uint32_t> last_escape(mod.numQubits(), never);
    std::vector<bool> ever_measured(mod.numQubits(), false);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        bool escapes = op.isCall() || isMeasureGate(op.kind);
        for (QubitId q : op.operands) {
            if (q >= mod.numQubits())
                continue;
            if (escapes)
                last_escape[q] = i;
            if (isMeasureGate(op.kind))
                ever_measured[q] = true;
        }
    }
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        if (op.isCall() || isMeasureGate(op.kind) || op.operands.empty())
            continue;
        bool all_past = true;
        bool any_measured = false;
        for (QubitId q : op.operands) {
            if (q >= mod.numQubits()) {
                // Malformed operand; the verifier reports it.
                all_past = false;
                break;
            }
            all_past = all_past &&
                       (last_escape[q] != never && i > last_escape[q]);
            any_measured = any_measured || ever_measured[q];
        }
        if (all_past && any_measured) {
            diags.warning(DiagCode::DeadGate,
                          csprintf("gate %s follows the final measurement "
                                   "of all its operands (dead code)",
                                   gateName(op.kind)),
                          at(mod, i, op));
        }
    }
}

/** Would @p b undo @p a when run immediately after it? */
bool
isInversePair(const Operation &a, const Operation &b)
{
    if (a.isCall() || b.isCall() || a.operands != b.operands)
        return false;
    switch (a.kind) {
      case GateKind::PrepZ:
      case GateKind::PrepX:
      case GateKind::MeasZ:
      case GateKind::MeasX:
        return false; // no inverse
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
        return b.kind == a.kind && b.angle == -a.angle;
      default:
        return daggerOf(a.kind) == b.kind;
    }
}

/** L003: adjacent gate/inverse pairs the peephole would remove. */
void
lintUncancelledInverses(const Module &mod, DiagnosticEngine &diags)
{
    for (uint32_t i = 0; i + 1 < mod.numOps(); ++i) {
        const Operation &a = mod.op(i);
        const Operation &b = mod.op(i + 1);
        if (!isInversePair(a, b))
            continue;
        diags.warning(DiagCode::UncancelledInverses,
                      csprintf("ops %u/%u: adjacent %s/%s pair cancels to "
                               "identity (run cancel-inverses)",
                               i, i + 1, gateName(a.kind),
                               gateName(b.kind)),
                      at(mod, i, a));
        ++i; // don't re-flag b against its successor
    }
}

/** L004: rotations finer than the decomposer can resolve. */
void
lintRotationPrecision(const Module &mod, DiagnosticEngine &diags,
                      const LintOptions &options)
{
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        if (!isRotationGate(op.kind))
            continue;
        if (std::fabs(op.angle) >= options.rotationPrecisionFloor)
            continue;
        diags.warning(DiagCode::RotationBelowPrecision,
                      csprintf("%s angle %g is below the decomposition "
                               "precision floor %g; gate is effectively "
                               "identity",
                               gateName(op.kind), op.angle,
                               options.rotationPrecisionFloor),
                      at(mod, i, op));
    }
}

/** L005: gate kinds that can never coalesce into a SIMD batch. */
void
lintNonCoalescable(const Module &mod, DiagnosticEngine &diags,
                   const LintOptions &options)
{
    if (!mod.isLeaf() || mod.numOps() < options.coalesceMinOps)
        return;
    std::array<uint64_t, numGateKinds> counts{};
    for (const Operation &op : mod.ops())
        ++counts[static_cast<size_t>(op.kind)];
    for (size_t k = 0; k < numGateKinds; ++k) {
        if (counts[k] != 1)
            continue;
        auto kind = static_cast<GateKind>(k);
        diags.warning(DiagCode::NonCoalescableGate,
                      csprintf("gate kind %s occurs once in this leaf "
                               "module and can never share a SIMD region",
                               gateName(kind)),
                      {mod.name()});
    }
}

} // anonymous namespace

void
lintModule(const Program &prog, ModuleId id, DiagnosticEngine &diags,
           const LintOptions &options)
{
    const Module &mod = prog.module(id);
    lintUnusedQubits(mod, diags);
    lintDeadGates(mod, diags);
    lintUncancelledInverses(mod, diags);
    lintRotationPrecision(mod, diags, options);
    lintNonCoalescable(mod, diags, options);
}

size_t
lintProgram(const Program &prog, DiagnosticEngine &diags,
            const LintOptions &options)
{
    size_t warnings_before = diags.numWarnings();

    // Reachability over valid callees only; cycles and bad callee ids
    // are the verifier's concern and must not trip the linter.
    std::vector<bool> reachable(prog.numModules(), false);
    if (prog.entry() != invalidModule &&
        prog.entry() < prog.numModules()) {
        std::vector<ModuleId> work{prog.entry()};
        reachable[prog.entry()] = true;
        while (!work.empty()) {
            ModuleId id = work.back();
            work.pop_back();
            for (const Operation &op : prog.module(id).ops()) {
                if (!op.isCall() || op.callee >= prog.numModules())
                    continue;
                if (!reachable[op.callee]) {
                    reachable[op.callee] = true;
                    work.push_back(op.callee);
                }
            }
        }
    }

    for (ModuleId id = 0; id < prog.numModules(); ++id) {
        if (!reachable[id]) {
            diags.warning(DiagCode::UnreachableModule,
                          csprintf("module %s is unreachable from the "
                                   "entry module",
                                   prog.module(id).name().c_str()),
                          {prog.module(id).name()});
            continue;
        }
        lintModule(prog, id, diags, options);
    }
    return diags.numWarnings() - warnings_before;
}

} // namespace msq
