#include "verify/estimate_checker.hh"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/invocation_counts.hh"
#include "analysis/resource_estimator.hh"
#include "sched/comm.hh"
#include "support/logging.hh"
#include "support/saturate.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/** Shorthand for diagnostic message formatting. */
unsigned long long
ull(uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

/**
 * Build the leaf-summary callback the composition runs on: look the
 * full-width schedule up in the cache (the embedded CoarseScheduler run
 * has already populated it — its width sweep always includes k), fall
 * back to scheduling directly on a miss, and count distinct schedules
 * by memoization key so structurally identical leaves are counted once.
 */
ScheduleSummaryAnalysis::LeafSummaryFn
makeLeafSummaryFn(const MultiSimdArch &arch,
                  const LeafScheduler &scheduler, CommMode mode,
                  const std::shared_ptr<LeafScheduleCache> &cache,
                  std::unordered_set<std::string> *distinct_keys)
{
    std::string suffix =
        leafScheduleKeySuffix(scheduler.fingerprint(), arch, mode);
    return [&arch, &scheduler, mode, cache, distinct_keys,
            suffix](const Module &mod, ModuleId /*id*/) {
        const std::string key = leafScheduleKey(mod, arch.k, suffix);
        if (distinct_keys != nullptr)
            distinct_keys->insert(key);
        if (auto hit = cache->lookup(key))
            return hit->summary;
        LeafSchedule sched = scheduler.schedule(mod, arch);
        CommunicationAnalyzer comm(arch, mode);
        auto result = std::make_shared<LeafScheduleResult>();
        result->stats = comm.annotate(sched);
        result->bounds = computeLeafBounds(mod, arch);
        result->summary = summarizeLeafSchedule(sched, arch);
        result->schedule = sched.sharedBuffer();
        return cache->insert(key, std::move(result))->summary;
    };
}

} // anonymous namespace

double
ProgramResourceEstimate::sequentialSpeedup() const
{
    if (makespanCycles == 0)
        return 0.0;
    return static_cast<double>(program.gateOps) /
           static_cast<double>(makespanCycles);
}

double
ProgramResourceEstimate::naiveSpeedup() const
{
    return sequentialSpeedup() *
           static_cast<double>(MultiSimdArch::naiveCyclesPerGate);
}

ProgramResourceEstimate
computeProgramEstimate(const Program &prog, const MultiSimdArch &arch,
                       const LeafScheduler &scheduler, CommMode mode,
                       const EstimateOptions &opts)
{
    TraceSpan span(Telemetry::trace(), "toolflow-estimate");
    std::optional<ScopedTimerMs> timer;
    if (opts.metrics != nullptr)
        timer.emplace(opts.metrics->distribution("toolflow.estimate_ms"));

    arch.validate();
    std::shared_ptr<LeafScheduleCache> cache = opts.cache;
    if (!cache)
        cache = std::make_shared<LeafScheduleCache>();
    const uint64_t hits_before = cache->hits();
    const uint64_t misses_before = cache->misses();

    ProgramResourceEstimate est;

    // The parallel makespan needs the real hierarchical scheduler; its
    // cost is O(distinct modules x sweep widths), never O(gates), and
    // it leaves every (leaf, width) result — summary folds included —
    // in the shared cache for the composition below.
    CoarseScheduler::Options copts;
    copts.numThreads = opts.numThreads;
    copts.leafCache = cache;
    CoarseScheduler coarse(arch, scheduler, mode, copts);
    ProgramSchedule psched = coarse.schedule(prog);
    est.makespanCycles = psched.totalCycles;

    std::unordered_set<std::string> distinct;
    ScheduleSummaryAnalysis analysis(
        prog, mode,
        makeLeafSummaryFn(arch, scheduler, mode, cache, &distinct),
        opts.diags);
    est.program = analysis.programSummary();
    est.saturated = analysis.saturated();
    est.distinctLeafSchedules = distinct.size();
    est.reachableModules = analysis.analyzedModules().size();
    for (ModuleId id : analysis.analyzedModules())
        if (prog.module(id).isLeaf())
            ++est.leafModules;
    est.cacheHits = cache->hits() - hits_before;
    est.cacheMisses = cache->misses() - misses_before;

    // All recorded single-threaded, after the parallel fan-out has
    // joined: values are thread-count-invariant by construction.
    if (opts.metrics != nullptr) {
        MetricsRegistry &reg = *opts.metrics;
        reg.counter("estimate.runs").add(1);
        reg.counter("estimate.distinct_leaf_schedules")
            .add(est.distinctLeafSchedules);
        reg.counter("estimate.leaf_cache.hits").add(est.cacheHits);
        reg.counter("estimate.leaf_cache.misses").add(est.cacheMisses);
        if (est.saturated)
            reg.counter("estimate.saturated_runs").add(1);
        reg.distribution("estimate.program_gates")
            .record(static_cast<double>(est.program.gateOps));
        reg.distribution("estimate.serial_cycles")
            .record(static_cast<double>(est.program.serialCycles));
        reg.distribution("estimate.makespan_cycles")
            .record(static_cast<double>(est.makespanCycles));
        reg.distribution("estimate.comm_fraction")
            .record(est.program.commFraction());
        reg.distribution("estimate.sequential_speedup")
            .record(est.sequentialSpeedup());
    }
    return est;
}

namespace {

/** Compare one field of a leaf fold against the annotator (E001). */
void
checkLeafField(DiagnosticEngine &diags, const Module &mod,
               const char *field, uint64_t fold, uint64_t annotator)
{
    if (fold == annotator)
        return;
    diags.error(DiagCode::EstimateLeafFoldMismatch,
                csprintf("leaf summary fold disagrees with the "
                         "communication analyzer on %s: fold %llu, "
                         "annotator %llu",
                         field, ull(fold), ull(annotator)),
                DiagContext{mod.name()});
}

/** Compare one composed program field against a cross-check (E004/5). */
void
checkProgramField(DiagnosticEngine &diags, DiagCode code,
                  const char *source, const char *field,
                  uint64_t composed, uint64_t independent)
{
    if (composed == independent)
        return;
    diags.error(code,
                csprintf("composed program %s (%llu) disagrees with "
                         "the %s (%llu)",
                         field, ull(composed), source,
                         ull(independent)));
}

/** Accumulator for the E004 literally-unrolled walk: every repeat is
 * executed as that many additions, so a multiplication bug in the
 * composition cannot reproduce itself here. */
struct UnrolledWalk
{
    const Program *prog;
    const std::unordered_map<ModuleId, ResourceSummary> *leafSummaries;
    uint64_t gateCost;
    uint64_t gateComm;
    uint64_t callOverhead;
    uint64_t budget;
    uint64_t visits = 0;

    ResourceSummary sum;

    bool
    walk(ModuleId id)
    {
        const Module &mod = prog->module(id);
        if (mod.isLeaf()) {
            // One op-visit minimum per invocation keeps zero-gate
            // leaves from making the walk budget-blind.
            visits += std::max<uint64_t>(mod.numOps(), 1);
            if (visits > budget)
                return false;
            const ResourceSummary &leaf = leafSummaries->at(id);
            sum.gateOps += leaf.gateOps;
            sum.serialCycles += leaf.serialCycles;
            sum.commCycles += leaf.commCycles;
            sum.teleportMoves += leaf.teleportMoves;
            sum.blockingTeleports += leaf.blockingTeleports;
            sum.interCoreTeleports += leaf.interCoreTeleports;
            sum.localMoves += leaf.localMoves;
            sum.stepsWithBlockingMove += leaf.stepsWithBlockingMove;
            sum.stepsWithOnlyLocalMoves += leaf.stepsWithOnlyLocalMoves;
            sum.activeRegionSteps += leaf.activeRegionSteps;
            sum.operandTouches += leaf.operandTouches;
            for (size_t b = 0; b < sum.occupancy.size(); ++b)
                sum.occupancy[b] += leaf.occupancy[b];
            sum.peakRegionOccupancy = std::max(
                sum.peakRegionOccupancy, leaf.peakRegionOccupancy);
            sum.peakBlockingMovesPerStep =
                std::max(sum.peakBlockingMovesPerStep,
                         leaf.peakBlockingMovesPerStep);
            sum.peakActiveRegions = std::max(sum.peakActiveRegions,
                                             leaf.peakActiveRegions);
            return true;
        }
        for (const Operation &op : mod.ops()) {
            if (!op.isCall()) {
                ++visits;
                if (visits > budget)
                    return false;
                sum.gateOps += 1;
                sum.serialCycles += gateCost;
                sum.commCycles += gateComm;
                continue;
            }
            for (uint64_t rep = 0; rep < op.repeat; ++rep) {
                sum.serialCycles += callOverhead;
                sum.commCycles += callOverhead;
                sum.callInvocations += 1;
                if (!walk(op.callee))
                    return false;
            }
        }
        return true;
    }
};

} // anonymous namespace

bool
checkEstimateExactness(const Program &prog, const MultiSimdArch &arch,
                       const LeafScheduler &scheduler, CommMode mode,
                       const ProgramResourceEstimate &est,
                       DiagnosticEngine &diags,
                       const EstimateOptions &opts,
                       EstimateCheckStats *stats,
                       uint64_t materialize_budget)
{
    const size_t errors_before = diags.numErrors();
    arch.validate();
    std::shared_ptr<LeafScheduleCache> cache = opts.cache;
    if (!cache)
        cache = std::make_shared<LeafScheduleCache>();

    // E001 — re-schedule each distinct leaf from scratch and compare
    // the streaming fold against the CommunicationAnalyzer's own
    // accumulation, field for field. The two paths share no state: the
    // annotator classifies moves as it derives them, the fold re-reads
    // the annotated buffer through the sink interface.
    std::unordered_set<std::string> folded;
    const std::string suffix =
        leafScheduleKeySuffix(scheduler.fingerprint(), arch, mode);
    for (ModuleId id : prog.bottomUpOrder()) {
        const Module &mod = prog.module(id);
        if (!mod.isLeaf())
            continue;
        if (!folded.insert(leafScheduleKey(mod, arch.k, suffix)).second)
            continue;
        LeafSchedule sched = scheduler.schedule(mod, arch);
        CommunicationAnalyzer comm(arch, mode);
        CommStats ground = comm.annotate(sched);
        ResourceSummary fold = summarizeLeafSchedule(sched, arch);
        checkLeafField(diags, mod, "totalCycles/serialCycles",
                       fold.serialCycles, ground.totalCycles);
        checkLeafField(diags, mod, "teleportMoves", fold.teleportMoves,
                       ground.teleportMoves);
        checkLeafField(diags, mod, "blockingTeleports",
                       fold.blockingTeleports, ground.blockingTeleports);
        checkLeafField(diags, mod, "interCoreTeleports",
                       fold.interCoreTeleports,
                       ground.interCoreTeleports);
        checkLeafField(diags, mod, "localMoves", fold.localMoves,
                       ground.localMoves);
        checkLeafField(diags, mod, "stepsWithBlockingMove",
                       fold.stepsWithBlockingMove,
                       ground.stepsWithBlockingMove);
        checkLeafField(diags, mod, "stepsWithOnlyLocalMoves",
                       fold.stepsWithOnlyLocalMoves,
                       ground.stepsWithOnlyLocalMoves);
        checkLeafField(diags, mod, "activeRegionSteps",
                       fold.activeRegionSteps, ground.activeRegionSteps);
        checkLeafField(diags, mod, "operandTouches/operandSlots",
                       fold.operandTouches, ground.operandSlots);
        checkLeafField(diags, mod, "peakRegionOccupancy",
                       fold.peakRegionOccupancy,
                       ground.peakRegionOccupancy);
        checkLeafField(diags, mod, "peakBlockingMovesPerStep",
                       fold.peakBlockingMovesPerStep,
                       ground.peakBlockingMovesPerStep);
        checkLeafField(diags, mod, "gateOps/scheduledOps", fold.gateOps,
                       sched.scheduledOps());
        checkLeafField(diags, mod, "occupancySteps/computeTimesteps",
                       fold.occupancySteps(), sched.computeTimesteps());
        if (stats != nullptr)
            ++stats->leafFoldsChecked;
    }

    // E002 — the estimate's makespan must equal a freshly scheduled
    // ProgramSchedule's total (determinism + cache-integrity check).
    {
        CoarseScheduler::Options copts;
        copts.numThreads = opts.numThreads;
        copts.leafCache = cache;
        CoarseScheduler coarse(arch, scheduler, mode, copts);
        ProgramSchedule psched = coarse.schedule(prog);
        if (psched.totalCycles != est.makespanCycles) {
            diags.error(
                DiagCode::EstimateMakespanMismatch,
                csprintf("estimate makespan %llu disagrees with a "
                         "freshly computed ProgramSchedule (%llu cycles)",
                         ull(est.makespanCycles),
                         ull(psched.totalCycles)));
        }
    }

    // Recompose for the per-module comparisons (leaf scheduling is all
    // cache hits by now; composition is O(distinct modules)).
    ScheduleSummaryAnalysis analysis(
        prog, mode,
        makeLeafSummaryFn(arch, scheduler, mode, cache, nullptr),
        nullptr);
    const bool saturated = analysis.saturated() || est.saturated;

    // E002 (continued) — the estimate handed to us must equal the fresh
    // recomposition field-for-field, not just on the makespan: a stale
    // or tampered estimate is as wrong as a nondeterministic scheduler.
    if (!saturated) {
        const ResourceSummary &p = analysis.programSummary();
        const char *src = "fresh recomposition";
        auto code = DiagCode::EstimateMakespanMismatch;
        checkProgramField(diags, code, src, "gateOps",
                          est.program.gateOps, p.gateOps);
        checkProgramField(diags, code, src, "serialCycles",
                          est.program.serialCycles, p.serialCycles);
        checkProgramField(diags, code, src, "commCycles",
                          est.program.commCycles, p.commCycles);
        checkProgramField(diags, code, src, "teleportMoves",
                          est.program.teleportMoves, p.teleportMoves);
        checkProgramField(diags, code, src, "interCoreTeleports",
                          est.program.interCoreTeleports,
                          p.interCoreTeleports);
        checkProgramField(diags, code, src, "localMoves",
                          est.program.localMoves, p.localMoves);
        checkProgramField(diags, code, src, "operandTouches",
                          est.program.operandTouches, p.operandTouches);
        checkProgramField(diags, code, src, "callInvocations",
                          est.program.callInvocations,
                          p.callInvocations);
    }

    // E006 — saturation poisons dependent fields; exactness of those
    // cannot be verified, only flagged.
    if (saturated) {
        if (stats != nullptr)
            stats->saturated = true;
        diags.warning(
            DiagCode::EstimateSaturated,
            "repeat algebra saturated at 2^64-1 while composing the "
            "estimate; poisoned fields are excluded from exactness "
            "checks");
    }

    // E003 — composed gate totals vs ResourceEstimator, per module.
    // Skip saturated modules: both sides clip to 2^64-1 by design and
    // comparing clipped values proves nothing.
    ResourceEstimator estimator(prog);
    for (ModuleId id : analysis.analyzedModules()) {
        const ResourceSummary &s = analysis.summary(id);
        if (s.saturated)
            continue;
        if (s.gateOps != estimator.totalGates(id)) {
            diags.error(
                DiagCode::EstimateGateAlgebra,
                csprintf("composed gate total %llu disagrees with "
                         "ResourceEstimator (%llu)",
                         ull(s.gateOps), ull(estimator.totalGates(id))),
                DiagContext{prog.module(id).name()});
        }
        if (stats != nullptr)
            ++stats->modulesChecked;
    }

    // E005 — invocation-weighted sum of local contributions: an
    // independent *top-down* composition path (InvocationCountAnalysis
    // multiplies down the call graph; the summary composes up).
    InvocationCountAnalysis invocations(prog);
    if (!saturated && !invocations.saturated()) {
        ResourceSummary weighted;
        weighted.occupancy.assign(ResourceSummary::numOccupancyBuckets(),
                                  0);
        bool wsat = false;
        uint64_t total_invocations = 0;
        for (ModuleId id : analysis.analyzedModules()) {
            const uint64_t inv = invocations.invocations(id);
            ResourceSummary local = analysis.localContribution(id);
            wsat |= local.saturated;
            weighted.gateOps = satAdd(
                weighted.gateOps, satMul(inv, local.gateOps, wsat),
                wsat);
            weighted.serialCycles =
                satAdd(weighted.serialCycles,
                       satMul(inv, local.serialCycles, wsat), wsat);
            weighted.commCycles =
                satAdd(weighted.commCycles,
                       satMul(inv, local.commCycles, wsat), wsat);
            weighted.teleportMoves =
                satAdd(weighted.teleportMoves,
                       satMul(inv, local.teleportMoves, wsat), wsat);
            weighted.blockingTeleports =
                satAdd(weighted.blockingTeleports,
                       satMul(inv, local.blockingTeleports, wsat), wsat);
            weighted.interCoreTeleports =
                satAdd(weighted.interCoreTeleports,
                       satMul(inv, local.interCoreTeleports, wsat),
                       wsat);
            weighted.localMoves =
                satAdd(weighted.localMoves,
                       satMul(inv, local.localMoves, wsat), wsat);
            weighted.stepsWithBlockingMove =
                satAdd(weighted.stepsWithBlockingMove,
                       satMul(inv, local.stepsWithBlockingMove, wsat),
                       wsat);
            weighted.stepsWithOnlyLocalMoves =
                satAdd(weighted.stepsWithOnlyLocalMoves,
                       satMul(inv, local.stepsWithOnlyLocalMoves, wsat),
                       wsat);
            weighted.activeRegionSteps =
                satAdd(weighted.activeRegionSteps,
                       satMul(inv, local.activeRegionSteps, wsat), wsat);
            weighted.operandTouches =
                satAdd(weighted.operandTouches,
                       satMul(inv, local.operandTouches, wsat), wsat);
            weighted.callInvocations =
                satAdd(weighted.callInvocations,
                       satMul(inv, local.callInvocations, wsat), wsat);
            for (size_t b = 0; b < weighted.occupancy.size(); ++b) {
                weighted.occupancy[b] =
                    satAdd(weighted.occupancy[b],
                           satMul(inv, local.occupancy[b], wsat), wsat);
            }
            if (inv > 0) {
                weighted.peakRegionOccupancy =
                    std::max(weighted.peakRegionOccupancy,
                             local.peakRegionOccupancy);
                weighted.peakBlockingMovesPerStep =
                    std::max(weighted.peakBlockingMovesPerStep,
                             local.peakBlockingMovesPerStep);
                weighted.peakActiveRegions =
                    std::max(weighted.peakActiveRegions,
                             local.peakActiveRegions);
            }
            total_invocations = satAdd(total_invocations, inv, wsat);
        }
        const ResourceSummary &p = analysis.programSummary();
        if (!wsat) {
            const char *src = "invocation-weighted sum";
            auto code = DiagCode::EstimateWeightMismatch;
            checkProgramField(diags, code, src, "gateOps", p.gateOps,
                              weighted.gateOps);
            checkProgramField(diags, code, src, "serialCycles",
                              p.serialCycles, weighted.serialCycles);
            checkProgramField(diags, code, src, "commCycles",
                              p.commCycles, weighted.commCycles);
            checkProgramField(diags, code, src, "teleportMoves",
                              p.teleportMoves, weighted.teleportMoves);
            checkProgramField(diags, code, src, "blockingTeleports",
                              p.blockingTeleports,
                              weighted.blockingTeleports);
            checkProgramField(diags, code, src, "interCoreTeleports",
                              p.interCoreTeleports,
                              weighted.interCoreTeleports);
            checkProgramField(diags, code, src, "localMoves",
                              p.localMoves, weighted.localMoves);
            checkProgramField(diags, code, src, "stepsWithBlockingMove",
                              p.stepsWithBlockingMove,
                              weighted.stepsWithBlockingMove);
            checkProgramField(diags, code, src,
                              "stepsWithOnlyLocalMoves",
                              p.stepsWithOnlyLocalMoves,
                              weighted.stepsWithOnlyLocalMoves);
            checkProgramField(diags, code, src, "activeRegionSteps",
                              p.activeRegionSteps,
                              weighted.activeRegionSteps);
            checkProgramField(diags, code, src, "operandTouches",
                              p.operandTouches, weighted.operandTouches);
            checkProgramField(diags, code, src, "peakRegionOccupancy",
                              p.peakRegionOccupancy,
                              weighted.peakRegionOccupancy);
            checkProgramField(diags, code, src,
                              "peakBlockingMovesPerStep",
                              p.peakBlockingMovesPerStep,
                              weighted.peakBlockingMovesPerStep);
            checkProgramField(diags, code, src, "peakActiveRegions",
                              p.peakActiveRegions,
                              weighted.peakActiveRegions);
            for (size_t b = 0; b < weighted.occupancy.size(); ++b) {
                checkProgramField(
                    diags, code, src,
                    csprintf("occupancy[%s]",
                             ResourceSummary::occupancyLabel(b).c_str())
                        .c_str(),
                    p.occupancy[b], weighted.occupancy[b]);
            }
            // Every invocation except the entry's own run is a call.
            checkProgramField(diags, code, src, "callInvocations",
                              p.callInvocations,
                              total_invocations - 1);
            checkProgramField(diags, code, src,
                              "callInvocations(weighted)",
                              p.callInvocations,
                              weighted.callInvocations);
        }
    }

    // E004 — the literally unrolled walk: repeats executed as repeated
    // addition, so the composition's repeat *multiplication* is checked
    // against ground-truth iteration. Budget-gated by op visits.
    if (!saturated && !estimator.saturated() &&
        estimator.programGates() <= materialize_budget) {
        std::unordered_map<ModuleId, ResourceSummary> leaf_summaries;
        for (ModuleId id : analysis.analyzedModules())
            if (prog.module(id).isLeaf())
                leaf_summaries.emplace(id, analysis.summary(id));
        UnrolledWalk walk;
        walk.prog = &prog;
        walk.leafSummaries = &leaf_summaries;
        walk.gateCost = MultiSimdArch::coarseGateCost(mode);
        walk.gateComm = walk.gateCost - MultiSimdArch::gateCycles;
        walk.callOverhead = MultiSimdArch::callOverhead(mode);
        walk.budget = materialize_budget;
        walk.sum.occupancy.assign(ResourceSummary::numOccupancyBuckets(),
                                  0);
        if (walk.walk(prog.entry())) {
            const ResourceSummary &p = analysis.programSummary();
            const char *src = "unrolled walk";
            auto code = DiagCode::EstimateUnrolledMismatch;
            checkProgramField(diags, code, src, "gateOps", p.gateOps,
                              walk.sum.gateOps);
            checkProgramField(diags, code, src, "serialCycles",
                              p.serialCycles, walk.sum.serialCycles);
            checkProgramField(diags, code, src, "commCycles",
                              p.commCycles, walk.sum.commCycles);
            checkProgramField(diags, code, src, "teleportMoves",
                              p.teleportMoves, walk.sum.teleportMoves);
            checkProgramField(diags, code, src, "blockingTeleports",
                              p.blockingTeleports,
                              walk.sum.blockingTeleports);
            checkProgramField(diags, code, src, "interCoreTeleports",
                              p.interCoreTeleports,
                              walk.sum.interCoreTeleports);
            checkProgramField(diags, code, src, "localMoves",
                              p.localMoves, walk.sum.localMoves);
            checkProgramField(diags, code, src, "stepsWithBlockingMove",
                              p.stepsWithBlockingMove,
                              walk.sum.stepsWithBlockingMove);
            checkProgramField(diags, code, src,
                              "stepsWithOnlyLocalMoves",
                              p.stepsWithOnlyLocalMoves,
                              walk.sum.stepsWithOnlyLocalMoves);
            checkProgramField(diags, code, src, "activeRegionSteps",
                              p.activeRegionSteps,
                              walk.sum.activeRegionSteps);
            checkProgramField(diags, code, src, "operandTouches",
                              p.operandTouches, walk.sum.operandTouches);
            checkProgramField(diags, code, src, "callInvocations",
                              p.callInvocations,
                              walk.sum.callInvocations);
            checkProgramField(diags, code, src, "peakRegionOccupancy",
                              p.peakRegionOccupancy,
                              walk.sum.peakRegionOccupancy);
            checkProgramField(diags, code, src,
                              "peakBlockingMovesPerStep",
                              p.peakBlockingMovesPerStep,
                              walk.sum.peakBlockingMovesPerStep);
            checkProgramField(diags, code, src, "peakActiveRegions",
                              p.peakActiveRegions,
                              walk.sum.peakActiveRegions);
            for (size_t b = 0; b < walk.sum.occupancy.size(); ++b) {
                checkProgramField(
                    diags, code, src,
                    csprintf("occupancy[%s]",
                             ResourceSummary::occupancyLabel(b).c_str())
                        .c_str(),
                    p.occupancy[b], walk.sum.occupancy[b]);
            }
            if (stats != nullptr)
                stats->unrolledChecked = true;
        }
    }

    return diags.numErrors() == errors_before;
}

} // namespace msq
