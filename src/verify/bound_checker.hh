/**
 * @file
 * Schedule-quality / schedule-sanity checker (diagnostic codes
 * B001-B006) built on the static makespan lower bounds of
 * analysis/bounds.hh.
 *
 * A lower bound is a *certificate*: no valid schedule of a module can
 * finish below it. A schedule that does is therefore not merely slow or
 * suboptimal — it is corrupt (scheduler bug, cache aliasing, truncated
 * buffer), and this checker turns that certificate into a novel bug
 * detector the S/C validators cannot replicate (they check invariants
 * of what *is* in the schedule; the bound checks what *must* be):
 *
 *  - B001 a leaf schedule has fewer compute timesteps than its
 *         critical-path bound (a dependence chain cannot fit);
 *  - B002 fewer timesteps than its resource bound (more operand touches
 *         than k*d per step could absorb);
 *  - B003 fewer timesteps than its Fernandez interval bound (some
 *         earliest-start/latest-finish window is overcommitted);
 *  - B004 a blackbox dimension of the width sweep is shorter than the
 *         lower bound at that width;
 *  - B005 the program's total cycle count is below the hierarchically
 *         composed program bound;
 *  - B006 (warning) the repeat algebra saturated at 2^64-1 while
 *         composing bounds — the bounds stay sound but loose;
 *  - B007 a leaf whose schedule the scheduler certified as optimal
 *         (ScheduleProvenance::Optimal) does not sit exactly on its
 *         lower bound — a false certificate: either the proof logic or
 *         the bound is broken, never valid output.
 *
 * The same pass computes the per-leaf and program *optimality gaps*
 * (makespan / lower bound >= 1.0), the repo's first quantitative answer
 * to "how far from optimal are RCP and LPFS?" (EXPERIMENTS.md); the
 * msq-verify --bounds flag surfaces them as a JSON gap report.
 */

#ifndef MSQ_VERIFY_BOUND_CHECKER_HH
#define MSQ_VERIFY_BOUND_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bounds.hh"
#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "sched/coarse.hh"
#include "support/diagnostic.hh"

namespace msq {

/** Aggregate numbers from one checker run (for reporting/tests). */
struct BoundCheckStats
{
    uint64_t leavesChecked = 0; ///< leaf modules with a gap record
    uint64_t dimsChecked = 0;   ///< (module, width) dims compared
};

/** One leaf module's schedule-quality record. */
struct LeafGapRecord
{
    std::string module;       ///< module name
    uint64_t gates = 0;       ///< op count
    uint64_t qubits = 0;      ///< qubit count
    uint64_t invocations = 0; ///< runs per program execution
    unsigned width = 0;       ///< widest sweep width
    uint64_t makespan = 0;    ///< cycles at the widest width (incl. comm)
    MakespanBounds bounds;    ///< static bounds at the widest width
    uint64_t lowerBound = 0;  ///< bounds.composite()
    double gap = 1.0;         ///< makespan / lowerBound (>= 1.0)
    /** How the widest schedule was obtained; Optimal implies gap 1.0
     * (enforced as B007). */
    ScheduleProvenance provenance = ScheduleProvenance::Heuristic;
};

/** Whole-program schedule-quality report (the --bounds JSON payload). */
struct ProgramGapReport
{
    std::vector<LeafGapRecord> leaves; ///< one per scheduled leaf
    uint64_t programMakespan = 0;      ///< ProgramSchedule::totalCycles
    uint64_t programLowerBound = 0;    ///< hierarchical composite bound
    double programGap = 1.0;           ///< makespan / bound (>= 1.0)
    bool saturated = false;            ///< any repeat product clipped
};

/** makespan / bound; 1.0 when both are zero (empty module, exact). */
double optimalityGap(uint64_t makespan, uint64_t lower_bound);

/**
 * Check one leaf schedule's compute-timestep count against its static
 * bounds (B001-B003). The bounds are evaluated at the schedule's own
 * width (sched.k()) with @p arch supplying d.
 *
 * @param precomputed reuse already-computed bounds (must match the
 *        schedule's module and width) instead of recomputing.
 * @return true when no Error-severity diagnostic was added.
 */
bool checkLeafScheduleBounds(const LeafSchedule &sched,
                             const MultiSimdArch &arch,
                             DiagnosticEngine &diags,
                             const MakespanBounds *precomputed = nullptr);

/**
 * Check a whole ProgramSchedule against the hierarchical bounds: every
 * blackbox dimension of every analyzed module (B004), and the program
 * total (B005). @p mode must be the communication mode @p psched was
 * produced with (it selects the coarse-level cycle costs).
 *
 * @param report optional gap report to fill (leaves in ModuleId order).
 * @return true when no Error-severity diagnostic was added.
 */
bool checkScheduleBounds(const Program &prog,
                         const ProgramSchedule &psched,
                         const MultiSimdArch &arch, CommMode mode,
                         DiagnosticEngine &diags,
                         ProgramGapReport *report = nullptr,
                         BoundCheckStats *stats = nullptr);

} // namespace msq

#endif // MSQ_VERIFY_BOUND_CHECKER_HH
