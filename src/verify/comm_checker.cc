#include "verify/comm_checker.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "analysis/qubit_mapping.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/** Qubit name when known, else "q<id>". */
std::string
qubitLabel(const Module &mod, uint32_t q)
{
    if (q < mod.numQubits())
        return mod.qubitName(q);
    return csprintf("q%u", q);
}

} // anonymous namespace

bool
checkCommSchedule(const LeafSchedule &sched, const MultiSimdArch &arch,
                  DiagnosticEngine &diags, CommCheckStats *stats)
{
    const Module &mod = sched.module();
    size_t num_qubits = mod.numQubits();
    size_t errors_before = diags.numErrors();
    DiagContext ctx;
    ctx.module = mod.name();

    // Last timestep each qubit participates in a scheduled gate; the
    // qubit is dead afterwards. Derived from the schedule itself (not
    // from module op order) so partially scheduled modules still replay.
    constexpr uint64_t neverUsed = std::numeric_limits<uint64_t>::max();
    std::vector<uint64_t> last_use(num_qubits, neverUsed);
    for (TimestepView step : sched.steps()) {
        for (RegionSlotView slot : step) {
            for (uint32_t op_index : slot.ops()) {
                if (op_index >= mod.numOps())
                    continue; // S003's job
                for (QubitId q : mod.op(op_index).operands)
                    if (q < num_qubits)
                        last_use[q] = step.index();
            }
        }
    }

    const Topology &topo = arch.topology;
    const bool multi_core = topo.multiCore();
    const TopologyRouter router(topo);
    // Masked inter-core teleports crossing each link this timestep —
    // checked against the link bandwidth at end of step (M010).
    std::vector<uint64_t> link_load(router.numEdges(), 0);
    std::vector<unsigned> route;

    std::vector<Location> loc(num_qubits, Location::global());
    if (multi_core) {
        // The same pure home mapping the analyzer started from.
        const std::vector<unsigned> home =
            computeQubitMapping(mod, topo);
        for (size_t q = 0; q < loc.size(); ++q)
            loc[q] = Location::inMemory(home[q]);
    }
    std::vector<uint64_t> local_count(sched.k(), 0);

    for (ScheduleWalker walker(sched); !walker.atEnd(); walker.next()) {
        const uint64_t ts = walker.index();
        TimestepView step = walker.step();
        if (stats)
            ++stats->steps;

        // Which region each qubit computes in this step, if any.
        std::unordered_map<uint32_t, unsigned> operand_region;
        for (RegionSlotView slot : step) {
            for (uint32_t op_index : slot.ops()) {
                if (op_index >= mod.numOps())
                    continue;
                for (QubitId q : mod.op(op_index).operands)
                    operand_region.emplace(q, slot.region());
            }
        }

        std::unordered_map<uint32_t, size_t> moved_at;
        MoveSpan step_moves = step.moves();
        for (size_t i = 0; i < step_moves.size(); ++i) {
            const Move &move = step_moves[i];
            uint32_t q = move.qubit;
            if (stats) {
                ++stats->movesChecked;
                if (move.isLocal()) {
                    ++stats->localMoves;
                } else {
                    ++stats->teleports;
                    if (!move.blocking)
                        ++stats->maskedTeleports;
                }
            }

            // M009: memory-bank endpoints must name an existing core.
            bool endpoint_bad = false;
            for (const Location *end : {&move.from, &move.to}) {
                if (end->isGlobal() && end->region >= topo.cores) {
                    diags.error(
                        DiagCode::CommCoreOutOfRange,
                        csprintf("step %zu: move of qubit %s names "
                                 "memory bank of core %u, topology has "
                                 "%u cores",
                                 ts, qubitLabel(mod, q).c_str(),
                                 end->region, topo.cores),
                        ctx);
                    endpoint_bad = true;
                }
            }

            if (multi_core && !endpoint_bad && !move.isLocal()) {
                unsigned from_core = locationCore(move.from, arch);
                unsigned to_core = locationCore(move.to, arch);
                if (from_core != to_core) {
                    if (stats)
                        ++stats->interCoreTeleports;
                    if (!move.blocking &&
                        topo.linkBandwidth != unbounded) {
                        route.clear();
                        router.routeEdges(from_core, to_core, route);
                        for (unsigned e : route)
                            ++link_load[e];
                    }
                }
            }

            if (q >= num_qubits) {
                diags.error(DiagCode::CommMoveSourceMismatch,
                            csprintf("step %zu: move of unknown qubit q%u",
                                     ts, q),
                            ctx);
                continue;
            }

            auto [prev, fresh] = moved_at.emplace(q, i);
            if (!fresh) {
                diags.error(
                    DiagCode::CommConflictingMoves,
                    csprintf("step %zu: qubit %s moved twice in one "
                             "timestep (moves %zu and %zu)",
                             ts, qubitLabel(mod, q).c_str(), prev->second,
                             i),
                    ctx);
            }

            if (loc[q] != move.from) {
                diags.error(
                    DiagCode::CommMoveSourceMismatch,
                    csprintf("step %zu: move of qubit %s claims source "
                             "%s but the qubit is at %s",
                             ts, qubitLabel(mod, q).c_str(),
                             move.from.describe().c_str(),
                             loc[q].describe().c_str()),
                    ctx);
            }

            if (move.to == loc[q]) {
                diags.warning(
                    DiagCode::CommRedundantMove,
                    csprintf("step %zu: qubit %s moved to %s where it "
                             "already resides",
                             ts, qubitLabel(mod, q).c_str(),
                             move.to.describe().c_str()),
                    ctx);
            }

            auto use = operand_region.find(q);
            if (use != operand_region.end() &&
                move.to != Location::inRegion(use->second)) {
                diags.error(
                    DiagCode::CommMoveDuringGate,
                    csprintf("step %zu: qubit %s is an operand of a gate "
                             "in region %u but is moved to %s in the "
                             "same timestep",
                             ts, qubitLabel(mod, q).c_str(), use->second,
                             move.to.describe().c_str()),
                    ctx);
            }

            bool dead = last_use[q] == neverUsed || ts > last_use[q];
            if (dead) {
                if (stats)
                    ++stats->deadMoves;
                // Dead evictions to global memory riding the masked
                // window are mandatory SIMD hygiene; everything else
                // spends communication on a value nobody reads.
                if (move.to.isRegion() || move.to.isLocalMem() ||
                    move.blocking) {
                    diags.warning(
                        DiagCode::CommDeadTeleport,
                        csprintf("step %zu: qubit %s is dead (last use "
                                 "%s) but is moved %s to %s — wasted "
                                 "communication",
                                 ts, qubitLabel(mod, q).c_str(),
                                 last_use[q] == neverUsed
                                     ? "never"
                                     : csprintf("at step %llu",
                                                (unsigned long long)
                                                    last_use[q])
                                           .c_str(),
                                 move.blocking ? "blocking" : "masked",
                                 move.to.describe().c_str()),
                        ctx);
                }
            }

            // Apply the move so later checks see the updated world.
            if (loc[q].isLocalMem() && loc[q].region < local_count.size())
                --local_count[loc[q].region];
            loc[q] = move.to;
            if (move.to.isLocalMem()) {
                unsigned r = move.to.region;
                if (r < local_count.size() &&
                    ++local_count[r] > arch.localMemCapacity) {
                    diags.error(
                        DiagCode::CommLocalOvercap,
                        csprintf("step %zu: scratchpad of region %u "
                                 "holds %llu qubits, capacity %llu",
                                 ts, r,
                                 (unsigned long long)local_count[r],
                                 (unsigned long long)
                                     arch.localMemCapacity),
                        ctx);
                }
            }
        }

        // M010: per-link masked-teleport budget. The analyzer must
        // demote excess masked inter-core traffic to blocking; a link
        // carrying more masked teleports than its bandwidth in one
        // step has been over-subscribed.
        if (multi_core && topo.linkBandwidth != unbounded) {
            for (size_t e = 0; e < link_load.size(); ++e) {
                if (link_load[e] > topo.linkBandwidth) {
                    auto [a, b] = router.edges()[e];
                    diags.error(
                        DiagCode::CommLinkOvercap,
                        csprintf("step %zu: link %u-%u carries %llu "
                                 "masked teleports, bandwidth %llu",
                                 ts, a, b,
                                 (unsigned long long)link_load[e],
                                 (unsigned long long)topo.linkBandwidth),
                        ctx);
                }
            }
            std::fill(link_load.begin(), link_load.end(), 0);
        }

        // Post-movement residency: every operand sits in its gate's
        // region...
        for (RegionSlotView slot : step) {
            const unsigned r = slot.region();
            for (uint32_t op_index : slot.ops()) {
                if (op_index >= mod.numOps())
                    continue;
                for (QubitId q : mod.op(op_index).operands) {
                    if (q >= num_qubits)
                        continue;
                    if (loc[q] != Location::inRegion(r)) {
                        diags.error(
                            DiagCode::CommOperandNotResident,
                            csprintf("step %zu: operand %s of op %u "
                                     "must be in region %u but is at %s",
                                     ts, qubitLabel(mod, q).c_str(),
                                     op_index, r,
                                     loc[q].describe().c_str()),
                            ctx);
                    }
                }
            }
        }

        // ...and no region holds more than d qubits (parked qubits
        // count: they occupy physical sites and would receive the
        // region's broadcast gate).
        if (arch.d != unbounded) {
            std::vector<uint64_t> occupancy(sched.k(), 0);
            for (uint32_t q = 0; q < num_qubits; ++q)
                if (loc[q].isRegion() && loc[q].region < occupancy.size())
                    ++occupancy[loc[q].region];
            for (unsigned r = 0; r < occupancy.size(); ++r) {
                if (occupancy[r] > arch.d) {
                    diags.error(
                        DiagCode::CommRegionOvercap,
                        csprintf("step %zu: region %u holds %llu qubits, "
                                 "SIMD width d = %llu",
                                 ts, r, (unsigned long long)occupancy[r],
                                 (unsigned long long)arch.d),
                        ctx);
                }
            }
        }
    }

    return diags.numErrors() == errors_before;
}

} // namespace msq
