/**
 * @file
 * Paper-scale resource estimation driver and its exactness checker
 * (diagnostic codes E001-E006).
 *
 * computeProgramEstimate() is the production entry point of the
 * schedule-summary analysis (analysis/schedule_summary.hh): it
 * schedules each *distinct* leaf exactly once through the shared
 * LeafScheduleCache, reuses the per-leaf ResourceSummary folds memoized
 * in LeafScheduleResult, composes them bottom-up through the repeat
 * algebra, and runs the CoarseScheduler (itself O(distinct modules))
 * for the parallel makespan — exact program-level resource reports for
 * 10^12-gate workloads in O(distinct leaves) memory.
 *
 * checkEstimateExactness() is what makes the estimate trustworthy: the
 * composed numbers are claimed *exact*, so on any program small enough
 * to materialize, they must equal independently computed ground truth
 * field-for-field. Divergence is a hard error — an estimator, repeat
 * algebra, scheduler or cache bug — never an approximation error:
 *
 *  - E001 a leaf's streaming summary fold disagrees with the
 *         CommunicationAnalyzer's independently accumulated statistics;
 *  - E002 the estimate disagrees with a fresh recomputation — its
 *         makespan with a freshly computed ProgramSchedule, or its
 *         summary fields with a fresh recomposition;
 *  - E003 composed gate totals disagree with ResourceEstimator's
 *         independently composed totals (per module and program);
 *  - E004 the composition disagrees with a literally unrolled walk of
 *         the call tree (repeat-by-repeat addition — multiplication
 *         checked against repeated addition); budget-gated;
 *  - E005 the composition disagrees with the invocation-weighted sum
 *         Σ invocations(m) * localContribution(m) (independent
 *         top-down path through InvocationCountAnalysis);
 *  - E006 (warning) the repeat algebra saturated at 2^64-1 — poisoned
 *         fields are excluded from exactness comparisons because
 *         equality of two clipped values proves nothing.
 */

#ifndef MSQ_VERIFY_ESTIMATE_CHECKER_HH
#define MSQ_VERIFY_ESTIMATE_CHECKER_HH

#include <cstdint>
#include <memory>

#include "analysis/schedule_summary.hh"
#include "arch/multi_simd.hh"
#include "ir/program.hh"
#include "sched/coarse.hh"
#include "sched/leaf_cache.hh"
#include "sched/leaf_scheduler.hh"
#include "support/diagnostic.hh"
#include "support/telemetry.hh"

namespace msq {

/** Exact whole-program resource estimate (the --estimate payload). */
struct ProgramResourceEstimate
{
    /** Composed summary of one program run (entry module). */
    ResourceSummary program;

    /** Parallel makespan: the CoarseScheduler's entry best length. */
    uint64_t makespanCycles = 0;

    /** Distinct leaf schedules computed/folded (the memory bound). */
    uint64_t distinctLeafSchedules = 0;

    /** Reachable leaf modules (>= distinctLeafSchedules). */
    uint64_t leafModules = 0;

    /** Modules reachable from the entry. */
    uint64_t reachableModules = 0;

    /** Leaf-cache traffic attributable to this estimate run. */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;

    /** Any repeat product clipped at 2^64-1 (poisons fields). */
    bool saturated = false;

    /**
     * Speedup over sequential execution (one gate per cycle):
     * gateOps / makespan — the paper's speedup metric.
     */
    double sequentialSpeedup() const;

    /** Speedup over the naive every-timestep movement model
     * (naiveCyclesPerGate * gateOps / makespan, paper §4). */
    double naiveSpeedup() const;
};

/** Options shared by the estimate driver and the exactness checker. */
struct EstimateOptions
{
    /** Scheduling fan-out threads (1 = sequential, 0 = hardware). */
    unsigned numThreads = 1;

    /** Leaf-schedule memoization cache; created fresh when null. May
     * be shared with prior CoarseScheduler runs so already-scheduled
     * leaves are never recomputed. */
    std::shared_ptr<LeafScheduleCache> cache;

    /** Optional telemetry sink: estimate.* counters/distributions and
     * the toolflow.estimate_ms phase timing, recorded only from the
     * single-threaded driver (thread-count-invariance contract). */
    MetricsRegistry *metrics = nullptr;

    /** Optional sink for E006 composition-saturation warnings. */
    DiagnosticEngine *diags = nullptr;
};

/**
 * Compute the exact resource estimate of @p prog on @p arch under
 * @p mode, never materializing more than O(distinct leaves) schedule
 * state. Leaves are scheduled at every sweep width by the embedded
 * CoarseScheduler run (for the makespan) and their full-width summary
 * folds are composed through the repeat algebra.
 */
ProgramResourceEstimate
computeProgramEstimate(const Program &prog, const MultiSimdArch &arch,
                       const LeafScheduler &scheduler, CommMode mode,
                       const EstimateOptions &opts = {});

/** Aggregate numbers from one exactness-checker run. */
struct EstimateCheckStats
{
    uint64_t leafFoldsChecked = 0; ///< distinct leaves re-folded (E001)
    uint64_t modulesChecked = 0;   ///< modules compared (E003/E005)
    bool unrolledChecked = false;  ///< E004 ran (within budget)
    bool saturated = false;        ///< E006 anywhere
};

/** Default op-visit budget for the E004 unrolled-walk cross-check. */
constexpr uint64_t defaultMaterializeBudget = 5'000'000;

/**
 * Verify @p est against independently computed ground truth (E001-E006
 * above). @p scheduler and @p mode must match what produced @p est.
 *
 * @param materialize_budget op-visit ceiling for the E004 unrolled
 *        walk; programs larger than this skip E004 (the other checks
 *        run at any scale — they are all O(distinct modules)).
 * @return true when no Error-severity diagnostic was added.
 */
bool checkEstimateExactness(const Program &prog,
                            const MultiSimdArch &arch,
                            const LeafScheduler &scheduler, CommMode mode,
                            const ProgramResourceEstimate &est,
                            DiagnosticEngine &diags,
                            const EstimateOptions &opts = {},
                            EstimateCheckStats *stats = nullptr,
                            uint64_t materialize_budget =
                                defaultMaterializeBudget);

} // namespace msq

#endif // MSQ_VERIFY_ESTIMATE_CHECKER_HH
