/**
 * @file
 * Circuit linter: pass-style checks for legal-but-suspicious circuits
 * (codes L001-L008). Unlike the IR verifier, nothing here is a
 * correctness error — each lint flags structure that wastes qubits,
 * gates, or SIMD regions on the Multi-SIMD target:
 *
 *  - L001 unused qubits inflate the Q requirement (Table 1 metric);
 *  - L002 gates past a qubit's last measurement can never influence an
 *    outcome — dead code from a buggy uncompute sequence;
 *  - L003 uncancelled inverse pairs — adjacent or separated only by
 *    commuting gates — are exactly what the cancel-inverses peephole
 *    removes; flagging them catches pipelines that forgot to run it;
 *  - L004 rotations below the decomposer's precision floor decompose to
 *    identity-length sequences and should be dropped at the source;
 *  - L005 a gate kind occurring once in a leaf module can never share a
 *    SIMD region with a sibling (paper §4.2's utilization concern);
 *  - L006 unreachable modules are compiled but never executed;
 *  - L007 a qubit threaded through calls whose callees never touch it —
 *    the interprocedural refinement of L001, from the liveness analysis
 *    (analysis/qubit_analyses.hh);
 *  - L008 a use that a measurement may reach across a call boundary —
 *    the interprocedural refinement of verifier V009, which must assume
 *    calls re-prepare their arguments.
 */

#ifndef MSQ_VERIFY_LINTER_HH
#define MSQ_VERIFY_LINTER_HH

#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/** Tunables for the linter. */
struct LintOptions
{
    /**
     * Rotations with |angle| below this are flagged L004. Matches the
     * rotation decomposer's default epsilon.
     */
    double rotationPrecisionFloor = 1e-10;

    /**
     * L005 fires only in leaf modules with at least this many
     * operations; single-occurrence kinds in tiny modules are noise.
     */
    size_t coalesceMinOps = 8;
};

/**
 * Lint every module of @p prog (reachable ones get the full battery;
 * unreachable ones are flagged L006). All reports are warnings.
 * @return the number of warnings reported.
 */
size_t lintProgram(const Program &prog, DiagnosticEngine &diags,
                   const LintOptions &options = {});

/** Lint a single module (no reachability check). */
void lintModule(const Program &prog, ModuleId id, DiagnosticEngine &diags,
                const LintOptions &options = {});

} // namespace msq

#endif // MSQ_VERIFY_LINTER_HH
