#include "verify/bound_checker.hh"

#include <limits>

#include "analysis/invocation_counts.hh"
#include "support/strings.hh"

namespace msq {

namespace {

unsigned long long
ull(uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

} // anonymous namespace

double
optimalityGap(uint64_t makespan, uint64_t lower_bound)
{
    if (lower_bound == 0) {
        return makespan == 0 ? 1.0
                             : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(makespan) /
           static_cast<double>(lower_bound);
}

bool
checkLeafScheduleBounds(const LeafSchedule &sched,
                        const MultiSimdArch &arch,
                        DiagnosticEngine &diags,
                        const MakespanBounds *precomputed)
{
    MakespanBounds local;
    if (precomputed == nullptr) {
        MultiSimdArch sub = arch;
        sub.k = sched.k();
        local = computeLeafBounds(sched.module(), sub);
        precomputed = &local;
    }
    const uint64_t steps = sched.computeTimesteps();
    const DiagContext where{sched.module().name(), diagNoOp, 0};
    const size_t errors_before = diags.numErrors();

    if (steps < precomputed->criticalPath) {
        diags.error(
            DiagCode::BoundBelowCriticalPath,
            csprintf("schedule has %llu compute timestep(s) but the "
                     "critical-path bound is %llu: a dependence chain "
                     "cannot fit (corrupt schedule)",
                     ull(steps), ull(precomputed->criticalPath)),
            where);
    }
    if (steps < precomputed->resource) {
        diags.error(
            DiagCode::BoundBelowResource,
            csprintf("schedule has %llu compute timestep(s) but the "
                     "resource bound at width %u is %llu: more operand "
                     "touches than the machine can absorb (corrupt "
                     "schedule)",
                     ull(steps), sched.k(), ull(precomputed->resource)),
            where);
    }
    if (steps < precomputed->interval) {
        diags.error(
            DiagCode::BoundBelowInterval,
            csprintf("schedule has %llu compute timestep(s) but the "
                     "interval bound is %llu: an earliest-start/"
                     "latest-finish window is overcommitted (corrupt "
                     "schedule)",
                     ull(steps), ull(precomputed->interval)),
            where);
    }
    return diags.numErrors() == errors_before;
}

bool
checkScheduleBounds(const Program &prog, const ProgramSchedule &psched,
                    const MultiSimdArch &arch, CommMode mode,
                    DiagnosticEngine &diags, ProgramGapReport *report,
                    BoundCheckStats *stats)
{
    const size_t errors_before = diags.numErrors();
    MakespanBoundAnalysis analysis(prog, arch, mode, &diags);
    InvocationCountAnalysis invocations(prog);

    BoundCheckStats local_stats;
    if (report != nullptr) {
        *report = ProgramGapReport{};
        report->saturated = analysis.saturated();
    }

    for (ModuleId id = 0; id < psched.modules.size(); ++id) {
        const ModuleScheduleInfo &info = psched.modules[id];
        if (!info.analyzed)
            continue;
        const Module &mod = prog.module(id);
        for (const Blackbox &bb : info.dims) {
            ++local_stats.dimsChecked;
            const uint64_t lb = analysis.lowerBoundAt(id, bb.width);
            if (bb.length >= lb)
                continue;
            diags.error(
                DiagCode::BoundDimBelowBound,
                csprintf("blackbox dimension (width %u, length %llu) "
                         "is below the width-%u lower bound %llu "
                         "(corrupt schedule or cache entry)",
                         bb.width, ull(bb.length), bb.width, ull(lb)),
                DiagContext{mod.name(), diagNoOp, 0});
        }
        if (!info.leaf || info.dims.empty())
            continue;
        ++local_stats.leavesChecked;
        const bool proven =
            info.provenance == ScheduleProvenance::Optimal;
        if (report == nullptr && !proven)
            continue;
        const Blackbox &widest = info.dims.back();
        LeafGapRecord record;
        record.module = mod.name();
        record.gates = mod.numOps();
        record.qubits = mod.numQubits();
        record.invocations = invocations.invocations(id);
        record.width = widest.width;
        record.makespan = widest.length;
        record.provenance = info.provenance;
        MultiSimdArch sub = arch;
        sub.k = widest.width;
        record.bounds = computeLeafBounds(mod, sub);
        record.lowerBound = record.bounds.composite();
        record.gap = optimalityGap(record.makespan, record.lowerBound);
        // A certificate is an equality claim, checked on the raw
        // integers (never through the float gap): a proven-optimal
        // leaf off its bound means the proof logic or the bound is
        // broken.
        if (proven && record.makespan != record.lowerBound) {
            diags.error(
                DiagCode::BoundOptimalGapNotOne,
                csprintf("schedule is marked proven-optimal but its "
                         "makespan %llu differs from the width-%u "
                         "lower bound %llu (false certificate)",
                         ull(record.makespan), record.width,
                         ull(record.lowerBound)),
                DiagContext{mod.name(), diagNoOp, 0});
        }
        if (report != nullptr)
            report->leaves.push_back(std::move(record));
    }

    const uint64_t program_lb = analysis.programLowerBound();
    if (psched.totalCycles < program_lb) {
        diags.error(
            DiagCode::BoundProgramBelow,
            csprintf("program schedule totals %llu cycle(s) but the "
                     "hierarchical lower bound is %llu (corrupt "
                     "schedule)",
                     ull(psched.totalCycles), ull(program_lb)),
            DiagContext{prog.module(prog.entry()).name(), diagNoOp, 0});
    }
    if (report != nullptr) {
        report->programMakespan = psched.totalCycles;
        report->programLowerBound = program_lb;
        report->programGap =
            optimalityGap(psched.totalCycles, program_lb);
    }
    if (stats != nullptr)
        *stats = local_stats;
    return diags.numErrors() == errors_before;
}

} // namespace msq
