/**
 * @file
 * Communication-schedule race detector (diagnostic codes M001-M008).
 *
 * The CommunicationAnalyzer (sched/comm.cc) decorates a leaf schedule
 * with a movement plan: which qubit teleports or shuttles where, at
 * every timestep. Nothing downstream re-derives that plan, so a bug in
 * the analyzer silently corrupts every cost number built on top of it.
 * This checker replays the movement plan from scratch — tracking every
 * qubit's location cycle by cycle, exactly like the leaf-schedule
 * validator's S010-S014 residency checks but against the *communication*
 * invariants of the Multi-SIMD model (paper §2.4, §4.4):
 *
 *  - M001 a qubit is moved somewhere other than its gate's region in a
 *         timestep where it participates in that gate (races the gate);
 *  - M002 two moves target the same qubit in one timestep (no-cloning:
 *         a qubit has one location, so simultaneous moves conflict);
 *  - M003 a region holds more than d qubits at some timestep;
 *  - M004 a scratchpad holds more than its capacity;
 *  - M005 (warning) wasted communication: a qubit that liveness proves
 *         dead is fetched into a region, parked into a scratchpad, or
 *         moved with a blocking teleport. Dead *evictions* to global
 *         memory that ride the masked-teleport window are mandatory in
 *         the SIMD model (a parked qubit would receive the region's
 *         gate) and are exempt;
 *  - M006 a move's declared source disagrees with the replayed location;
 *  - M007 an operand is not resident in its gate's region after the
 *         movement phase;
 *  - M008 (warning) a move whose destination equals its current
 *         location (pure overhead);
 *  - M009 a move endpoint names a memory bank of a core the topology
 *         does not have;
 *  - M010 the masked inter-core teleports crossing one link in one
 *         timestep exceed the link's EPR bandwidth (the analyzer must
 *         demote the excess to blocking, not over-subscribe the link).
 *
 * On a multi-core topology the replay starts every qubit in its home
 * core's memory bank, recomputing the identical pure qubit mapping the
 * analyzer used (analysis/qubit_mapping.hh).
 */

#ifndef MSQ_VERIFY_COMM_CHECKER_HH
#define MSQ_VERIFY_COMM_CHECKER_HH

#include <cstdint>

#include "arch/multi_simd.hh"
#include "arch/schedule.hh"
#include "support/diagnostic.hh"

namespace msq {

/** Aggregate numbers from one checker run (for reporting/tests). */
struct CommCheckStats
{
    uint64_t steps = 0;           ///< timesteps replayed
    uint64_t movesChecked = 0;    ///< moves replayed
    uint64_t teleports = 0;       ///< global (non-local) moves
    uint64_t localMoves = 0;      ///< region<->scratchpad moves
    uint64_t maskedTeleports = 0; ///< non-blocking global moves
    uint64_t deadMoves = 0;       ///< moves of dead qubits (any kind)
    uint64_t interCoreTeleports = 0; ///< teleports crossing cores
};

/**
 * Replay @p sched's movement plan against @p arch and report every
 * violated communication invariant to @p diags (codes M001-M010).
 *
 * @return true when the replay added no Error-severity diagnostics
 * (M005/M008 warnings alone keep the schedule passing).
 */
bool checkCommSchedule(const LeafSchedule &sched, const MultiSimdArch &arch,
                       DiagnosticEngine &diags,
                       CommCheckStats *stats = nullptr);

} // namespace msq

#endif // MSQ_VERIFY_COMM_CHECKER_HH
