/**
 * @file
 * IR verifier: whole-program well-formedness checking over Program /
 * Module, reporting every violation through a DiagnosticEngine instead of
 * panicking on the first (codes V001-V012, see support/diagnostic.hh).
 *
 * The checked-build path (Module::addGate / Program::validate) rejects
 * most of these at construction time, but frontends use the raw insertion
 * path so user input yields collected line-numbered diagnostics, and
 * rewriting passes use Module::setOps which bypasses all checks — the
 * verifier is what catches a pass that emits garbage (run it between
 * passes via PassManager::setVerifyAfterPasses).
 */

#ifndef MSQ_VERIFY_VERIFIER_HH
#define MSQ_VERIFY_VERIFIER_HH

#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/**
 * Verify @p prog: per-module operation well-formedness (arity, operand
 * ranges, no-cloning duplicates, callee/repeat fields, use-after-measure)
 * plus program-level structure (entry module, call arity, acyclic call
 * graph). Reports into @p diags; never throws in Collect mode.
 * @return true when no errors were reported.
 */
bool verifyProgram(const Program &prog, DiagnosticEngine &diags);

/**
 * Verify the operations of one module. Program-level context is needed
 * for call checks; pass the owning program.
 * @return true when no errors were reported for this module.
 */
bool verifyModule(const Program &prog, ModuleId id,
                  DiagnosticEngine &diags);

/**
 * Frontend convenience: verify with a collecting engine and fatal() with
 * every error in one message when the program is malformed.
 */
void verifyProgramFatal(const Program &prog);

} // namespace msq

#endif // MSQ_VERIFY_VERIFIER_HH
