#include "verify/verifier.hh"

#include <vector>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/** Context for one op's diagnostics. */
DiagContext
at(const Module &mod, uint32_t op_index, const Operation &op)
{
    return {mod.name(), op_index, op.line};
}

/** Verify one non-call operation. */
void
verifyGate(const Module &mod, uint32_t i, const Operation &op,
           DiagnosticEngine &diags)
{
    if (op.callee != invalidModule) {
        diags.error(DiagCode::MalformedOperation,
                    csprintf("gate %s carries a callee id (%u)",
                             gateName(op.kind), op.callee),
                    at(mod, i, op));
    }
    if (op.repeat != 1) {
        diags.error(DiagCode::BadRepeat,
                    csprintf("gate %s has repeat count %llu; only calls "
                             "may repeat",
                             gateName(op.kind),
                             static_cast<unsigned long long>(op.repeat)),
                    at(mod, i, op));
    }
    int arity = gateArity(op.kind);
    if (arity >= 0 && op.operands.size() != static_cast<size_t>(arity)) {
        diags.error(DiagCode::GateArity,
                    csprintf("gate %s expects %d operand(s), got %zu",
                             gateName(op.kind), arity, op.operands.size()),
                    at(mod, i, op));
    }
    if (op.angle != 0.0 && !isRotationGate(op.kind)) {
        diags.warning(DiagCode::AngleOnNonRotation,
                      csprintf("non-rotation gate %s carries angle %g",
                               gateName(op.kind), op.angle),
                      at(mod, i, op));
    }
}

/** Verify one call operation. */
void
verifyCall(const Program &prog, const Module &mod, uint32_t i,
           const Operation &op, DiagnosticEngine &diags)
{
    if (op.repeat == 0) {
        diags.error(DiagCode::BadRepeat, "call repeat count must be >= 1",
                    at(mod, i, op));
    }
    if (op.callee >= prog.numModules()) {
        diags.error(DiagCode::BadCallee,
                    csprintf("call targets invalid module id %u "
                             "(%zu modules)",
                             op.callee, prog.numModules()),
                    at(mod, i, op));
        return; // no callee to check arity against
    }
    const Module &callee = prog.module(op.callee);
    if (op.operands.size() != callee.numParams()) {
        diags.error(DiagCode::CallArity,
                    csprintf("call to %s passes %zu argument(s), callee "
                             "takes %zu",
                             callee.name().c_str(), op.operands.size(),
                             callee.numParams()),
                    at(mod, i, op));
    }
}

/** Shared for gates and calls: operand ranges and duplicates. Binding
 * one qubit to two operands of a single op violates no-cloning (e.g.
 * CNOT(q, q)), and aliased call arguments do the same inside the
 * callee. */
void
verifyOperands(const Module &mod, uint32_t i, const Operation &op,
               DiagnosticEngine &diags)
{
    for (QubitId q : op.operands) {
        if (q >= mod.numQubits()) {
            diags.error(DiagCode::OperandOutOfRange,
                        csprintf("operand %u out of range (%zu qubits)", q,
                                 mod.numQubits()),
                        at(mod, i, op));
        }
    }
    for (size_t a = 0; a < op.operands.size(); ++a) {
        for (size_t b = a + 1; b < op.operands.size(); ++b) {
            if (op.operands[a] != op.operands[b])
                continue;
            DiagCode code = op.isCall() ? DiagCode::DuplicateCallArg
                                        : DiagCode::DuplicateOperand;
            const char *what =
                op.isCall() ? "call binds qubit %u to two parameters"
                            : "gate %s touches qubit %u twice";
            std::string msg =
                op.isCall()
                    ? csprintf(what, op.operands[a])
                    : csprintf(what, gateName(op.kind), op.operands[a]);
            diags.error(code, msg + " (no-cloning violation)",
                        at(mod, i, op));
            break; // one report per duplicated qubit pair set
        }
    }
}

/**
 * Use-after-measure: a gate acting on a measured qubit that was never
 * re-prepared reads a collapsed state — almost always a lowering bug.
 * PrepZ/PrepX reset the qubit; passing it to a callee conservatively
 * clears the flag (the callee may prepare it). Re-measuring is allowed.
 */
void
verifyMeasurementDiscipline(const Module &mod, DiagnosticEngine &diags)
{
    std::vector<bool> measured(mod.numQubits(), false);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        if (op.isCall()) {
            for (QubitId q : op.operands)
                if (q < measured.size())
                    measured[q] = false;
            continue;
        }
        bool is_prep = op.kind == GateKind::PrepZ ||
                       op.kind == GateKind::PrepX;
        for (QubitId q : op.operands) {
            if (q >= measured.size())
                continue; // reported as OperandOutOfRange already
            if (measured[q] && !is_prep && !isMeasureGate(op.kind)) {
                diags.error(
                    DiagCode::UseAfterMeasure,
                    csprintf("gate %s uses qubit %u ('%s') after "
                             "measurement without re-preparation",
                             gateName(op.kind), q,
                             mod.qubitName(q).c_str()),
                    at(mod, i, op));
            }
            if (is_prep)
                measured[q] = false;
            else if (isMeasureGate(op.kind))
                measured[q] = true;
        }
    }
}

/** Detect cycles in the call graph with an explicit DFS (the Program's
 * own bottomUpOrder() fatals on the first cycle; here every cycle entry
 * point is reported). */
void
verifyAcyclic(const Program &prog, DiagnosticEngine &diags)
{
    enum class Mark : uint8_t { White, Grey, Black };
    std::vector<Mark> marks(prog.numModules(), Mark::White);

    // Iterative DFS; (module, next-op-cursor) frames.
    for (ModuleId root = 0; root < prog.numModules(); ++root) {
        if (marks[root] != Mark::White)
            continue;
        std::vector<std::pair<ModuleId, size_t>> stack{{root, 0}};
        marks[root] = Mark::Grey;
        while (!stack.empty()) {
            auto &[id, cursor] = stack.back();
            const Module &mod = prog.module(id);
            bool descended = false;
            while (cursor < mod.numOps()) {
                const Operation &op = mod.op(cursor++);
                if (!op.isCall() || op.callee >= prog.numModules())
                    continue;
                if (marks[op.callee] == Mark::Grey) {
                    diags.error(
                        DiagCode::RecursiveCall,
                        csprintf("recursive call cycle: %s calls %s",
                                 mod.name().c_str(),
                                 prog.module(op.callee).name().c_str()),
                        at(mod, static_cast<uint32_t>(cursor - 1), op));
                    continue;
                }
                if (marks[op.callee] == Mark::White) {
                    marks[op.callee] = Mark::Grey;
                    stack.emplace_back(op.callee, 0);
                    descended = true;
                    break;
                }
            }
            if (!descended && cursor >= mod.numOps()) {
                marks[id] = Mark::Black;
                stack.pop_back();
            }
        }
    }
}

} // anonymous namespace

bool
verifyModule(const Program &prog, ModuleId id, DiagnosticEngine &diags)
{
    size_t errors_before = diags.numErrors();
    const Module &mod = prog.module(id);
    for (uint32_t i = 0; i < mod.numOps(); ++i) {
        const Operation &op = mod.op(i);
        if (op.isCall())
            verifyCall(prog, mod, i, op, diags);
        else
            verifyGate(mod, i, op, diags);
        verifyOperands(mod, i, op, diags);
    }
    verifyMeasurementDiscipline(mod, diags);
    return diags.numErrors() == errors_before;
}

bool
verifyProgram(const Program &prog, DiagnosticEngine &diags)
{
    size_t errors_before = diags.numErrors();
    if (prog.entry() == invalidModule)
        diags.error(DiagCode::NoEntryModule, "program has no entry module");
    for (ModuleId id = 0; id < prog.numModules(); ++id)
        verifyModule(prog, id, diags);
    verifyAcyclic(prog, diags);
    return diags.numErrors() == errors_before;
}

void
verifyProgramFatal(const Program &prog)
{
    DiagnosticEngine diags(DiagnosticEngine::FailMode::Collect);
    if (!verifyProgram(prog, diags)) {
        fatal(csprintf("program fails IR verification (%zu error(s)):\n",
                       diags.numErrors()) +
              diags.formatAll());
    }
}

} // namespace msq
