/**
 * @file
 * Compile-as-a-service engine behind the `msq-served` daemon: one
 * NDJSON compile request in, one NDJSON response out, with a shared
 * persistent LeafScheduleCache amortizing leaf scheduling across
 * requests *and* process restarts (DESIGN.md §15).
 *
 * The engine is the testable core — tools/msq_served.cc is a thin
 * stdin/stdout loop around it, and bench_serve_latency drives it
 * in-process so latency numbers exclude pipe overhead.
 *
 * Request (one JSON object per line):
 *   {"id": <any>,                     echoed back verbatim-ish (string/num)
 *    "workload": "bwt",               built-in benchmark shortName, or
 *    "source": "...", "format": "scaffold"|"qasm",
 *    "params": "tiny"|"scaled"|"paper" (default "scaled"),
 *    "scale": N,                      repeat-wrapper scale factor
 *    "scheduler": "lpfs"|"rcp"|"opt"|"sequential" (default "lpfs"),
 *    "k": N, "d": N, "local_mem": N, "epr": N,
 *    "comm_mode": "none"|"global"|"local",
 *    "topology": "cores=4,k=2,shape=ring,link-bw=1,link-lat=3"}
 *
 * The "topology" field (parseTopologySpec grammar) reshapes the
 * request's architecture into a multi-core machine; absent, the
 * daemon-wide ServeOptions::topology default applies, and absent that
 * the machine is the flat single-core Multi-SIMD(k,d). The topology is
 * part of the leaf-cache key (MultiSimdArch::fingerprint), so requests
 * against different topologies never share cached leaf schedules.
 *
 * Response: {"id", "ok", "makespan", "total_gates", "qubits",
 * "critical_path", "speedup", "lower_bound", "gap", "schedule_hash",
 * "cache": {hits, misses, loads, rejections, size, hit_rate},
 * "telemetry": {...}, "wall_ms"} — or {"id", "ok": false, "error"} for
 * malformed/failed requests (a bad request never kills the daemon).
 *
 * Determinism contract (extends DESIGN.md §9): "schedule_hash" and
 * every schedule-derived field are bit-identical for a given request
 * whether the cache is cold, warm from earlier requests, or warm from
 * loadCache() in a fresh process — only wall-clock and cache-traffic
 * fields may differ.
 */

#ifndef MSQ_CORE_SERVE_HH
#define MSQ_CORE_SERVE_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "sched/coarse.hh"
#include "sched/leaf_cache.hh"
#include "support/telemetry.hh"

namespace msq {

/** Daemon-level configuration of a ServeEngine. */
struct ServeOptions
{
    /** Default architecture for requests that do not override it. */
    unsigned k = 4;
    uint64_t d = unbounded;
    uint64_t localMem = 0;
    uint64_t eprBandwidth = unbounded;

    /** Default `--topology` spec (parseTopologySpec grammar) applied to
     * requests that carry no "topology" field; "" = flat machine. */
    std::string topology;

    /** Batch parallelism for handleBatch (0 = hardware threads). Each
     * request schedules single-threaded; parallelism is across
     * requests, which keeps every response bit-identical to a
     * sequential run of the same request. */
    unsigned numThreads = 0;

    /** Cache persistence path ("" disables loadCache/saveCache). */
    std::string cachePath;
};

/** FNV-1a fold of every schedule-derived field of @p sched — the
 * cheap bit-identity probe the warm-start tests compare. Covers all
 * module dims, comm stats, provenance, and totalCycles. */
uint64_t hashProgramSchedule(const ProgramSchedule &sched);

/** One compile-service instance: shared cache + request handling. */
class ServeEngine
{
  public:
    explicit ServeEngine(ServeOptions options);

    /**
     * Load options.cachePath into the shared cache (warm start).
     * @return entries loaded (0 when the path is unset, missing, or
     * rejected; rejections are P-code diagnostics in diags()).
     */
    size_t loadCache();

    /**
     * Persist the shared cache to options.cachePath.
     * @return entries written, or SIZE_MAX on error/unset path.
     */
    size_t saveCache();

    /** Handle one NDJSON request line; returns the response line
     * (without trailing newline). Never throws on bad input. */
    std::string handleLine(const std::string &line);

    /**
     * Handle a batch of request lines concurrently through the
     * ThreadPool (options.numThreads). Response i corresponds to
     * request i; each response equals what handleLine(lines[i]) would
     * produce modulo wall-clock and cache-traffic counters.
     */
    std::vector<std::string>
    handleBatch(const std::vector<std::string> &lines);

    const LeafScheduleCache &cache() const { return *cache_; }
    LeafScheduleCache &cache() { return *cache_; }

    /** Daemon-lifetime metrics (per-request registries merge in here,
     * so nothing is lost when the process never exits cleanly). */
    MetricsRegistry &metrics() { return metrics_; }

    /** Requests handled so far (ok and failed alike). */
    uint64_t requestsServed() const { return requests_.load(); }

    /** Load/save diagnostics (P-codes accumulate across calls). */
    DiagnosticEngine &diags() { return diags_; }

    const ServeOptions &options() const { return options_; }

  private:
    ServeOptions options_;
    std::shared_ptr<LeafScheduleCache> cache_;
    MetricsRegistry metrics_;
    DiagnosticEngine diags_;
    std::atomic<uint64_t> requests_{0};
};

} // namespace msq

#endif // MSQ_CORE_SERVE_HH
