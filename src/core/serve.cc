#include "core/serve.hh"

#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>

#include "analysis/bounds.hh"
#include "core/toolflow.hh"
#include "frontend/parser.hh"
#include "frontend/qasm_reader.hh"
#include "sched/cache_io.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace msq {

namespace {

struct HashFold
{
    uint64_t hash = 0xcbf29ce484222325ull;

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= static_cast<uint8_t>(v >> (8 * i));
            hash *= 0x100000001b3ull;
        }
    }
};

/** The "id" field is echoed back as-is (string or number) so clients
 * can correlate pipelined responses; anything else becomes null. */
std::string
echoId(const JsonValue &request)
{
    const JsonValue &id = request.get("id");
    if (id.isString())
        return "\"" + jsonEscape(id.asString()) + "\"";
    if (id.isNumber())
        return jsonNumber(id.asNumber());
    return "null";
}

std::string
errorResponse(const std::string &id, const std::string &message)
{
    return csprintf("{\"id\": %s, \"ok\": false, \"error\": \"%s\"}",
                    id.c_str(), jsonEscape(message).c_str());
}

/** Everything decoded out of one request line. */
struct Request
{
    std::string id = "null";
    Program prog;
    std::string name;
    ToolflowConfig config;
};

bool
parseRequest(const std::string &line, const ServeOptions &defaults,
             Request &out, std::string &error)
{
    std::unique_ptr<JsonValue> parsed = parseJson(line, error);
    if (!parsed)
        return false;
    const JsonValue &req = *parsed;
    if (!req.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    out.id = echoId(req);

    // --- program source -------------------------------------------------
    const std::string workload = req.get("workload").asString();
    const std::string source = req.get("source").asString();
    if (workload.empty() == source.empty()) {
        error = "exactly one of \"workload\" or \"source\" is required";
        return false;
    }
    if (!workload.empty()) {
        const std::string params = req.has("params")
                                       ? req.get("params").asString()
                                       : "scaled";
        std::vector<workloads::WorkloadSpec> specs;
        if (params == "tiny")
            specs = workloads::tinyParams();
        else if (params == "scaled")
            specs = workloads::scaledParams();
        else if (params == "paper")
            specs = workloads::paperParams();
        else {
            error = "unknown params preset \"" + params + "\"";
            return false;
        }
        bool found = false;
        for (const auto &spec : specs) {
            if (spec.shortName == workload) {
                out.prog = spec.build();
                out.name = spec.shortName;
                found = true;
                break;
            }
        }
        if (!found) {
            error = "unknown workload \"" + workload + "\"";
            return false;
        }
        out.config.rotations = Toolflow::rotationPresetFor(workload);
    } else {
        const std::string format = req.has("format")
                                       ? req.get("format").asString()
                                       : "scaffold";
        try {
            if (format == "scaffold")
                out.prog = parseScaffold(source);
            else if (format == "qasm")
                out.prog = parseHierarchicalQasm(source);
            else {
                error = "unknown source format \"" + format + "\"";
                return false;
            }
        } catch (const FatalError &e) {
            error = std::string("parse error: ") + e.what();
            return false;
        }
        out.name = "source";
    }
    uint64_t scale = req.get("scale").asUnsigned(1);
    if (scale > 1)
        workloads::scaleWorkload(out.prog, scale);

    // --- scheduler / architecture ---------------------------------------
    const std::string scheduler = req.has("scheduler")
                                      ? req.get("scheduler").asString()
                                      : "lpfs";
    if (scheduler == "lpfs")
        out.config.scheduler = SchedulerKind::Lpfs;
    else if (scheduler == "rcp")
        out.config.scheduler = SchedulerKind::Rcp;
    else if (scheduler == "opt")
        out.config.scheduler = SchedulerKind::Opt;
    else if (scheduler == "sequential")
        out.config.scheduler = SchedulerKind::Sequential;
    else {
        error = "unknown scheduler \"" + scheduler + "\"";
        return false;
    }

    unsigned k = static_cast<unsigned>(
        req.get("k").asUnsigned(defaults.k));
    uint64_t d = req.has("d") ? req.get("d").asUnsigned(defaults.d)
                              : defaults.d;
    uint64_t localMem = req.has("local_mem")
                            ? req.get("local_mem").asUnsigned(0)
                            : defaults.localMem;
    if (k == 0) {
        error = "k must be >= 1";
        return false;
    }
    out.config.arch = MultiSimdArch(k, d == 0 ? unbounded : d, localMem);
    if (req.has("epr"))
        out.config.arch.eprBandwidth = req.get("epr").asUnsigned(1);
    else
        out.config.arch.eprBandwidth = defaults.eprBandwidth;

    // Per-request topology overrides the daemon-wide default; either
    // way the spec reshapes the arch (cores * per-core k regions) and
    // is validated before any scheduling happens, so a bad spec is an
    // error response, never a dead daemon.
    const std::string topoSpec = req.has("topology")
                                     ? req.get("topology").asString()
                                     : defaults.topology;
    if (!topoSpec.empty()) {
        std::string topoError;
        if (!parseTopologySpec(topoSpec, out.config.arch, topoError)) {
            error = "bad topology spec: " + topoError;
            return false;
        }
    }

    const std::string mode = req.has("comm_mode")
                                 ? req.get("comm_mode").asString()
                                 : "";
    if (mode == "none")
        out.config.commMode = CommMode::None;
    else if (mode == "global")
        out.config.commMode = CommMode::Global;
    else if (mode == "local")
        out.config.commMode = CommMode::GlobalWithLocalMem;
    else if (mode.empty())
        out.config.commMode = localMem > 0 ? CommMode::GlobalWithLocalMem
                                           : CommMode::Global;
    else {
        error = "unknown comm_mode \"" + mode + "\"";
        return false;
    }

    // Per-request scheduling is single-threaded: parallelism lives at
    // the batch level, and this keeps each response bit-identical to a
    // standalone sequential run (DESIGN.md §9).
    out.config.numThreads = 1;
    return true;
}

} // anonymous namespace

uint64_t
hashProgramSchedule(const ProgramSchedule &sched)
{
    HashFold fold;
    fold.u64(sched.totalCycles);
    fold.u64(sched.modules.size());
    for (const ModuleScheduleInfo &info : sched.modules) {
        fold.u64(info.analyzed ? 1 : 0);
        if (!info.analyzed)
            continue;
        fold.u64(info.leaf ? 1 : 0);
        fold.u64(static_cast<uint64_t>(info.provenance));
        fold.u64(info.dims.size());
        for (const Blackbox &bb : info.dims) {
            fold.u64(bb.width);
            fold.u64(bb.length);
        }
        fold.u64(info.comm.teleportMoves);
        fold.u64(info.comm.blockingTeleports);
        fold.u64(info.comm.localMoves);
        fold.u64(info.comm.totalCycles);
    }
    return fold.hash;
}

ServeEngine::ServeEngine(ServeOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<LeafScheduleCache>())
{}

size_t
ServeEngine::loadCache()
{
    if (options_.cachePath.empty())
        return 0;
    // A missing file is a normal cold start, not a diagnostic.
    if (!std::ifstream(options_.cachePath).good())
        return 0;
    return cache_->loadFrom(options_.cachePath, &diags_);
}

size_t
ServeEngine::saveCache()
{
    if (options_.cachePath.empty())
        return SIZE_MAX;
    return cache_->saveTo(options_.cachePath, &diags_);
}

std::string
ServeEngine::handleLine(const std::string &line)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    Request request;
    std::string error;
    if (!parseRequest(line, options_, request, error))
        return errorResponse(request.id, error);

    const auto start = std::chrono::steady_clock::now();
    ToolflowResult result;
    MetricsRegistry local;
    try {
        request.config.sharedLeafCache = cache_;
        request.config.metrics = &local;
        Toolflow toolflow(request.config);
        result = toolflow.run(request.prog);
    } catch (const std::exception &e) {
        return errorResponse(request.id,
                             std::string("compile failed: ") + e.what());
    }
    // Daemon-lifetime accumulation: per-request registries merge into
    // the engine's registry (and the process-wide one when enabled), so
    // periodic flushes see every request even though the daemon never
    // reaches the atexit hook.
    local.mergeInto(metrics_);
    if (Telemetry::metricsEnabled())
        local.mergeInto(Telemetry::metrics());

    // Optimality gap against the hierarchical lower bound of the
    // *lowered* program (run() rewrites it in place).
    uint64_t lowerBound = 0;
    try {
        MakespanBoundAnalysis bounds(request.prog, request.config.arch,
                                     request.config.commMode);
        lowerBound = bounds.programLowerBound();
    } catch (const std::exception &) {
        lowerBound = 0; // gap degrades to 0 rather than failing the request
    }
    double gap = 0.0;
    if (lowerBound > 0)
        gap = static_cast<double>(result.scheduledCycles) /
              static_cast<double>(lowerBound);
    else if (result.scheduledCycles == 0)
        gap = 1.0;

    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    const uint64_t hits = cache_->hits();
    const uint64_t misses = cache_->misses();
    std::string out = csprintf(
        "{\"id\": %s, \"ok\": true, \"workload\": \"%s\", "
        "\"makespan\": %llu, \"total_gates\": %llu, \"qubits\": %llu, "
        "\"critical_path\": %llu, \"speedup\": %s, "
        "\"lower_bound\": %llu, \"gap\": %s, "
        "\"schedule_hash\": \"%016llx\"",
        request.id.c_str(), jsonEscape(request.name).c_str(),
        static_cast<unsigned long long>(result.scheduledCycles),
        static_cast<unsigned long long>(result.totalGates),
        static_cast<unsigned long long>(result.qubits),
        static_cast<unsigned long long>(result.criticalPath),
        jsonNumber(result.speedupVsSequential).c_str(),
        static_cast<unsigned long long>(lowerBound),
        jsonNumber(gap).c_str(),
        static_cast<unsigned long long>(
            hashProgramSchedule(result.schedule)));
    out += csprintf(
        ", \"cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"loads\": %llu, \"rejections\": %llu, \"size\": %llu, "
        "\"hit_rate\": %s}",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<unsigned long long>(cache_->loads()),
        static_cast<unsigned long long>(cache_->rejections()),
        static_cast<unsigned long long>(cache_->size()),
        jsonNumber(hits + misses == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(hits + misses))
            .c_str());
    out += csprintf(
        ", \"telemetry\": {\"leaf_cache_hits\": %llu, "
        "\"leaf_cache_misses\": %llu, \"metrics\": %llu}, "
        "\"wall_ms\": %s}",
        static_cast<unsigned long long>(result.leafCacheHits),
        static_cast<unsigned long long>(result.leafCacheMisses),
        static_cast<unsigned long long>(result.telemetry.entries.size()),
        jsonNumber(wallMs).c_str());
    return out;
}

std::vector<std::string>
ServeEngine::handleBatch(const std::vector<std::string> &lines)
{
    std::vector<std::string> responses(lines.size());
    ThreadPool pool(options_.numThreads);
    pool.parallelFor(lines.size(), [&](uint64_t i) {
        responses[i] = handleLine(lines[i]);
    });
    return responses;
}

} // namespace msq
