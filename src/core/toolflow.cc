#include "core/toolflow.hh"

#include <limits>

#include "analysis/critical_path.hh"
#include "analysis/qubit_estimator.hh"
#include "analysis/resource_estimator.hh"
#include "passes/cancel_inverses.hh"
#include "passes/decompose_toffoli.hh"
#include "passes/pass_manager.hh"
#include "sched/lpfs.hh"
#include "sched/rcp.hh"
#include "support/logging.hh"
#include "support/saturate.hh"

namespace msq {

namespace {

/** Clamp a uint64 metric onto the int64 gauge domain. */
int64_t
gaugeValue(uint64_t v)
{
    const uint64_t max =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
    return static_cast<int64_t>(v > max ? max : v);
}

} // anonymous namespace

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Sequential:
        return "sequential";
      case SchedulerKind::Rcp:
        return "rcp";
      case SchedulerKind::Lpfs:
        return "lpfs";
      case SchedulerKind::Opt:
        return "opt";
    }
    panic("unknown SchedulerKind");
}

Toolflow::Toolflow(ToolflowConfig config) : config_(std::move(config))
{
    config_.arch.validate();
}

std::unique_ptr<LeafScheduler>
Toolflow::makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Sequential:
        return std::make_unique<SequentialScheduler>();
      case SchedulerKind::Rcp:
        return std::make_unique<RcpScheduler>();
      case SchedulerKind::Lpfs:
        return std::make_unique<LpfsScheduler>();
      case SchedulerKind::Opt:
        return std::make_unique<OptScheduler>();
    }
    panic("unknown SchedulerKind");
}

std::unique_ptr<LeafScheduler>
Toolflow::makeConfiguredScheduler() const
{
    switch (config_.scheduler) {
      case SchedulerKind::Sequential:
        return std::make_unique<SequentialScheduler>();
      case SchedulerKind::Rcp:
        return std::make_unique<RcpScheduler>(config_.rcpWeights);
      case SchedulerKind::Lpfs:
        return std::make_unique<LpfsScheduler>(config_.lpfsOptions);
      case SchedulerKind::Opt: {
        // The certificate must be judged under the same communication
        // model the coarse scheduler costs schedules with.
        OptScheduler::Options options = config_.optOptions;
        options.commMode = config_.commMode;
        return std::make_unique<OptScheduler>(options);
      }
    }
    panic("unknown SchedulerKind");
}

RotationDecomposerPass::Config
Toolflow::rotationPresetFor(const std::string &workload_short_name)
{
    RotationDecomposerPass::Config config;
    if (workload_short_name == "shors") {
        config.outline = true;
        config.noInlineOutlined = true;
    }
    return config;
}

ToolflowResult
Toolflow::run(Program &prog) const
{
    prog.validate();

    // Metrics land in the caller's registry when one is configured, in
    // a run-local one otherwise; either way the result carries a
    // snapshot, and the run folds into the global MSQ_METRICS sink when
    // the environment asked for it.
    MetricsRegistry local;
    MetricsRegistry *reg = config_.metrics ? config_.metrics : &local;
    TraceSpan run_span(Telemetry::trace(), "toolflow-run");
    reg->counter("toolflow.runs").add(1);

    if (config_.decompose) {
        TraceSpan span(Telemetry::trace(), "toolflow-passes");
        ScopedTimerMs timer(reg->distribution("toolflow.passes_ms"));
        PassManager passes;
        passes.setMetrics(reg);
        passes.add(std::make_unique<DecomposeToffoliPass>());
        passes.add(std::make_unique<RotationDecomposerPass>(
            config_.rotations));
        passes.add(std::make_unique<FlattenPass>(config_.flattenThreshold));
        if (config_.optimize)
            passes.add(std::make_unique<CancelInversesPass>());
        passes.run(prog);
    }

    ToolflowResult result;
    {
        TraceSpan span(Telemetry::trace(), "toolflow-analysis");
        ScopedTimerMs timer(reg->distribution("toolflow.analysis_ms"));
        ResourceEstimator resources(prog);
        result.totalGates = resources.programGates();
        CriticalPathAnalysis critical(prog);
        result.criticalPath = critical.programCriticalPath();
        QubitEstimator qubits(prog);
        result.qubits = qubits.programQubits();
    }
    reg->gauge("toolflow.total_gates").set(gaugeValue(result.totalGates));
    reg->gauge("toolflow.critical_path")
        .set(gaugeValue(result.criticalPath));
    reg->gauge("toolflow.qubits").set(gaugeValue(result.qubits));
    reg->gauge("toolflow.modules")
        .set(gaugeValue(prog.numModules()));

    auto leaf_scheduler = makeConfiguredScheduler();
    CoarseScheduler::Options coarse_options;
    coarse_options.widths = config_.coarseWidths;
    coarse_options.numThreads = config_.numThreads;
    coarse_options.metrics = reg;
    std::shared_ptr<LeafScheduleCache> cache = config_.sharedLeafCache;
    if (!cache && config_.leafCache)
        cache = std::make_shared<LeafScheduleCache>();
    coarse_options.leafCache = cache;
    const uint64_t hits_before = cache ? cache->hits() : 0;
    const uint64_t misses_before = cache ? cache->misses() : 0;
    CoarseScheduler coarse(config_.arch, *leaf_scheduler, config_.commMode,
                           coarse_options);
    {
        TraceSpan span(Telemetry::trace(), "toolflow-scheduling");
        ScopedTimerMs timer(reg->distribution("toolflow.scheduling_ms"));
        result.schedule = coarse.schedule(prog);
    }
    result.scheduledCycles = result.schedule.totalCycles;
    reg->gauge("toolflow.scheduled_cycles")
        .set(gaugeValue(result.scheduledCycles));
    if (cache) {
        result.leafCacheHits = cache->hits() - hits_before;
        result.leafCacheMisses = cache->misses() - misses_before;
    }

    // Empty program after flattening: no cycles, no meaningful
    // speedups; leave them 0.0 rather than dividing by zero.
    if (result.scheduledCycles > 0) {
        result.speedupVsSequential =
            static_cast<double>(result.totalGates) /
            static_cast<double>(result.scheduledCycles);
        result.speedupVsNaive =
            static_cast<double>(
                satMul(MultiSimdArch::naiveCyclesPerGate,
                       result.totalGates)) /
            static_cast<double>(result.scheduledCycles);
    }

    result.telemetry = reg->snapshot();
    if (Telemetry::metricsEnabled() && reg == &local)
        local.mergeInto(Telemetry::metrics());
    return result;
}

} // namespace msq
