/**
 * @file
 * The end-to-end MSQ toolflow (paper Fig. 3 context + §3): program in,
 * decomposition passes, flattening, hierarchical scheduling, and the
 * headline metrics out. This is the library's primary public entry point;
 * the benchmark harness and the examples are thin wrappers around it.
 */

#ifndef MSQ_CORE_TOOLFLOW_HH
#define MSQ_CORE_TOOLFLOW_HH

#include <memory>
#include <string>

#include "arch/multi_simd.hh"
#include "ir/program.hh"
#include "passes/flatten.hh"
#include "passes/rotation_decomposer.hh"
#include "sched/coarse.hh"
#include "sched/leaf_scheduler.hh"
#include "sched/lpfs.hh"
#include "sched/opt.hh"
#include "sched/rcp.hh"
#include "support/telemetry.hh"

namespace msq {

/** Which fine-grained scheduler drives leaf modules. */
enum class SchedulerKind : uint8_t {
    Sequential, ///< baseline: one op per timestep
    Rcp,        ///< Ready Critical Path (Algorithm 1)
    Lpfs,       ///< Longest Path First (Algorithm 2)
    Opt,        ///< branch-and-bound optimal tier with fallback
};

/** @return "sequential" / "rcp" / "lpfs" / "opt". */
const char *schedulerKindName(SchedulerKind kind);

/** Complete configuration of one toolflow run. */
struct ToolflowConfig
{
    SchedulerKind scheduler = SchedulerKind::Lpfs;
    MultiSimdArch arch{4, unbounded, 0};
    CommMode commMode = CommMode::Global;

    /**
     * Flattening threshold (paper FTh). The paper uses 2M gate
     * operations for its full-scale benchmarks (3M for SHA-1); the
     * library default of 30k plays the same role for the scaled
     * workloads, flattening a comparable fraction of modules.
     */
    uint64_t flattenThreshold = 30'000;

    /** Rotation decomposition settings (inline vs outlined, epsilon). */
    RotationDecomposerPass::Config rotations;

    /** RCP priority weights (w_op, w_dist, w_slack; paper uses 1,1,1). */
    RcpScheduler::Weights rcpWeights;

    /** LPFS options (l, SIMD, Refill; paper runs l=1 with both on). */
    LpfsScheduler::Options lpfsOptions;

    /**
     * OptScheduler options (node budget, size cap, fallback tier).
     * optOptions.commMode is ignored: run() overwrites it with
     * @ref commMode so the optimality certificate is judged under
     * exactly the communication model the schedule is costed with.
     */
    OptScheduler::Options optOptions;

    /** Run gate decomposition passes (disable only for pre-lowered IR). */
    bool decompose = true;

    /**
     * Run the inverse-cancellation peephole after decomposition and
     * flattening (off by default so measurements stay comparable with
     * the paper's unoptimized-CTQG observations, §5.2).
     */
    bool optimize = false;

    /** Optional explicit width sweep for the coarse scheduler. */
    std::vector<unsigned> coarseWidths;

    /**
     * Scheduling fan-out: leaf (module x width) tasks and non-leaf
     * width sweeps run on this many threads. 0 (the default) selects
     * the hardware concurrency; 1 is the exact sequential legacy path.
     * Schedules are bit-identical for every value (DESIGN.md §9).
     */
    unsigned numThreads = 0;

    /**
     * Memoize leaf-schedule results keyed on (module structural hash,
     * scheduler fingerprint, arch, width) so structurally identical
     * flattened leaves are scheduled once (sched/leaf_cache.hh).
     */
    bool leafCache = true;

    /**
     * Optional externally owned cache to use instead of a run-local
     * one (e.g. shared across the runs of a sweep). Overrides
     * @ref leafCache when set.
     */
    std::shared_ptr<LeafScheduleCache> sharedLeafCache;

    /**
     * Optional externally owned metrics registry. When null (the
     * default) run() records into a run-local registry and returns
     * its snapshot in ToolflowResult::telemetry; when set, metrics
     * accumulate into the given registry instead (and the snapshot
     * reflects its state after the run). Every non-wall-clock value
     * is thread-count-invariant (DESIGN.md §10).
     */
    MetricsRegistry *metrics = nullptr;
};

/** Everything a toolflow run reports. */
struct ToolflowResult
{
    /** Total gate operations = sequential execution cycles. */
    uint64_t totalGates = 0;

    /** Hierarchical critical path estimate (Fig. 6's "cp" bound). */
    uint64_t criticalPath = 0;

    /** Minimum qubits Q (Table 1 metric). */
    uint64_t qubits = 0;

    /** Scheduled whole-program cycles under the configured CommMode. */
    uint64_t scheduledCycles = 0;

    /** totalGates / scheduledCycles (Fig. 6 metric, CommMode::None). */
    double speedupVsSequential = 0.0;

    /**
     * (5 * totalGates) / scheduledCycles: speedup over the naive
     * movement model that teleports data every timestep (Figs. 7-9).
     */
    double speedupVsNaive = 0.0;

    /** Per-module schedule details. */
    ProgramSchedule schedule;

    /** Leaf-schedule cache traffic of this run (0/0 when disabled). */
    uint64_t leafCacheHits = 0;
    uint64_t leafCacheMisses = 0;

    /**
     * Structured metrics recorded during the run: per-pass timings,
     * per-leaf gate/cycle distributions, communication totals, cache
     * traffic, and the headline gauges (toolflow.*). Serializable via
     * MetricsSnapshot::toJson(); deterministic modulo "*_ms" wall-clock
     * distributions (DESIGN.md §10).
     */
    MetricsSnapshot telemetry;
};

/** Orchestrates passes and schedulers per a ToolflowConfig. */
class Toolflow
{
  public:
    explicit Toolflow(ToolflowConfig config);

    /**
     * Run the full pipeline on @p prog (rewritten in place by the
     * decomposition and flattening passes).
     */
    ToolflowResult run(Program &prog) const;

    const ToolflowConfig &config() const { return config_; }

    /** Instantiate a leaf scheduler of the given kind (defaults). */
    static std::unique_ptr<LeafScheduler> makeScheduler(SchedulerKind kind);

    /** Instantiate this configuration's leaf scheduler (with its RCP
     * weights / LPFS options applied). */
    std::unique_ptr<LeafScheduler> makeConfiguredScheduler() const;

    /**
     * Rotation decomposition preset per benchmark: Shor's outlines
     * rotations as noInline blackboxes (paper §5.4); every other
     * benchmark decomposes them inline.
     */
    static RotationDecomposerPass::Config
    rotationPresetFor(const std::string &workload_short_name);

  private:
    ToolflowConfig config_;
};

} // namespace msq

#endif // MSQ_CORE_TOOLFLOW_HH
