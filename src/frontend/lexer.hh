/**
 * @file
 * Tokenizer for the Scaffold-subset input language (see parser.hh for the
 * grammar). Supports C/C++-style comments and reports line numbers for
 * diagnostics.
 */

#ifndef MSQ_FRONTEND_LEXER_HH
#define MSQ_FRONTEND_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace msq {

/** Lexical token kinds. */
enum class TokenKind : uint8_t {
    Identifier,
    Integer,
    Float,
    KwModule,
    KwQbit,
    KwRepeat,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Minus,
    EndOfFile,
};

/** @return a printable name for @p kind (for diagnostics). */
const char *tokenKindName(TokenKind kind);

/** One lexical token. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;      ///< identifier spelling
    uint64_t intValue = 0; ///< for Integer
    double floatValue = 0; ///< for Float
    unsigned line = 0;     ///< 1-based source line
};

/**
 * Tokenize @p source completely.
 * Calls fatal() with a line-numbered message on invalid input.
 * The returned vector always ends with an EndOfFile token.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace msq

#endif // MSQ_FRONTEND_LEXER_HH
