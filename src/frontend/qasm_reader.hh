/**
 * @file
 * Reader for the hierarchical QASM format produced by
 * emitHierarchicalQasm(): `.module <name> <params...>` blocks containing
 * `qbit` declarations, gate lines, `call[xN] <module> <args...>` lines
 * and a closing `.end`. Round-trips with the emitter, letting compiled
 * programs be stored and reloaded.
 */

#ifndef MSQ_FRONTEND_QASM_READER_HH
#define MSQ_FRONTEND_QASM_READER_HH

#include <string>

#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/**
 * Parse hierarchical QASM text into a verified Program. The entry is
 * the last module in the stream (the emitter writes callees first).
 * Calls fatal() with line-numbered diagnostics on malformed input;
 * semantic errors (gate arity, duplicate operands, ...) are found by
 * the IR verifier and either raise one FatalError listing all of them
 * (@p diags null) or are collected into @p diags.
 */
Program parseHierarchicalQasm(const std::string &text,
                              DiagnosticEngine *diags = nullptr);

} // namespace msq

#endif // MSQ_FRONTEND_QASM_READER_HH
