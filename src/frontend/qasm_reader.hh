/**
 * @file
 * Reader for the hierarchical QASM format produced by
 * emitHierarchicalQasm(): `.module <name> <params...>` blocks containing
 * `qbit` declarations, gate lines, `call[xN] <module> <args...>` lines
 * and a closing `.end`. Round-trips with the emitter, letting compiled
 * programs be stored and reloaded.
 */

#ifndef MSQ_FRONTEND_QASM_READER_HH
#define MSQ_FRONTEND_QASM_READER_HH

#include <string>

#include "ir/program.hh"

namespace msq {

/**
 * Parse hierarchical QASM text into a validated Program. The entry is
 * the last module in the stream (the emitter writes callees first).
 * Calls fatal() with line-numbered diagnostics on malformed input.
 */
Program parseHierarchicalQasm(const std::string &text);

} // namespace msq

#endif // MSQ_FRONTEND_QASM_READER_HH
