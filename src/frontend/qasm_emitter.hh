/**
 * @file
 * QASM back-end (paper §3.1): emits technology-independent quantum
 * assembly. Two forms are provided:
 *
 *  - hierarchical QASM-HL-style output, one block per module (compact,
 *    mirrors ScaffCC's QASM-HL format); and
 *  - fully flattened QASM, with every call inlined and every qubit given a
 *    unique global name (bounded by an explicit gate budget, since
 *    paper-scale programs cannot be unrolled, §3.1).
 */

#ifndef MSQ_FRONTEND_QASM_EMITTER_HH
#define MSQ_FRONTEND_QASM_EMITTER_HH

#include <cstdint>
#include <ostream>

#include "ir/program.hh"

namespace msq {

/** Options for flat QASM emission. */
struct QasmEmitOptions
{
    /**
     * Abort (fatal) when the unrolled program exceeds this many
     * operations; guards against accidentally unrolling a 10^12-gate
     * benchmark.
     */
    uint64_t maxGates = 10'000'000;
};

/** Emit hierarchical QASM: one block per reachable module, callees first. */
void emitHierarchicalQasm(std::ostream &os, const Program &prog);

/**
 * Emit fully flattened QASM for the whole program.
 * @return the number of gate operations emitted.
 */
uint64_t emitFlatQasm(std::ostream &os, const Program &prog,
                      const QasmEmitOptions &options = {});

} // namespace msq

#endif // MSQ_FRONTEND_QASM_EMITTER_HH
