#include "frontend/qasm_emitter.hh"

#include <functional>
#include <vector>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

void
emitHierarchicalQasm(std::ostream &os, const Program &prog)
{
    for (ModuleId id : prog.bottomUpOrder()) {
        const Module &mod = prog.module(id);
        std::vector<std::string> params;
        for (QubitId q = 0; q < mod.numParams(); ++q)
            params.push_back(mod.qubitName(q));
        os << ".module " << mod.name() << " " << join(params, " ") << "\n";
        for (auto q = static_cast<QubitId>(mod.numParams());
             q < mod.numQubits(); ++q)
            os << "    qbit " << mod.qubitName(q) << "\n";
        for (const auto &op : mod.ops()) {
            std::vector<std::string> args;
            for (QubitId q : op.operands)
                args.push_back(mod.qubitName(q));
            if (op.isCall()) {
                os << "    call";
                if (op.repeat != 1)
                    os << "[x" << op.repeat << "]";
                os << " " << prog.module(op.callee).name() << " "
                   << join(args, " ") << "\n";
            } else if (isRotationGate(op.kind)) {
                os << "    " << gateName(op.kind) << "("
                   << csprintf("%.12g", op.angle) << ") " << join(args, " ")
                   << "\n";
            } else {
                os << "    " << gateName(op.kind) << " " << join(args, " ")
                   << "\n";
            }
        }
        os << ".end\n\n";
    }
}

uint64_t
emitFlatQasm(std::ostream &os, const Program &prog,
             const QasmEmitOptions &options)
{
    uint64_t emitted = 0;
    uint64_t fresh = 0;

    // Recursively expand calls; `names` maps callee qubit ids to globally
    // unique flat names.
    std::function<void(const Module &, const std::vector<std::string> &)>
        expand = [&](const Module &mod,
                     const std::vector<std::string> &names) {
            for (const auto &op : mod.ops()) {
                if (op.isCall()) {
                    const Module &callee = prog.module(op.callee);
                    std::vector<std::string> callee_names(
                        callee.numQubits());
                    for (size_t i = 0; i < callee.numParams(); ++i)
                        callee_names[i] = names[op.operands[i]];
                    for (size_t i = callee.numParams();
                         i < callee.numQubits(); ++i) {
                        callee_names[i] = csprintf("anc%llu",
                            static_cast<unsigned long long>(fresh++));
                        os << "qbit " << callee_names[i] << "\n";
                    }
                    for (uint64_t rep = 0; rep < op.repeat; ++rep)
                        expand(callee, callee_names);
                    continue;
                }
                if (++emitted > options.maxGates) {
                    fatal(csprintf(
                        "flat QASM emission exceeds budget of %llu gates; "
                        "use hierarchical emission for large programs",
                        static_cast<unsigned long long>(options.maxGates)));
                }
                std::vector<std::string> args;
                for (QubitId q : op.operands)
                    args.push_back(names[q]);
                if (isRotationGate(op.kind)) {
                    os << gateName(op.kind) << "("
                       << csprintf("%.12g", op.angle) << ") "
                       << join(args, " ") << "\n";
                } else {
                    os << gateName(op.kind) << " " << join(args, " ")
                       << "\n";
                }
            }
        };

    const Module &entry = prog.module(prog.entry());
    std::vector<std::string> entry_names(entry.numQubits());
    for (size_t i = 0; i < entry.numQubits(); ++i) {
        entry_names[i] = entry.qubitName(static_cast<QubitId>(i));
        os << "qbit " << entry_names[i] << "\n";
    }
    expand(entry, entry_names);
    return emitted;
}

} // namespace msq
