#include "frontend/parser.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "frontend/lexer.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "verify/verifier.hh"

namespace msq {

namespace {

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens(std::move(tokens)) {}

    Program
    parse(DiagnosticEngine *diags)
    {
        preScanModuleNames();
        while (!at(TokenKind::EndOfFile))
            parseModule();

        ModuleId entry = prog.findModule("main");
        if (entry == invalidModule) {
            if (lastModule == invalidModule)
                fatal("input contains no modules");
            entry = lastModule;
        }
        prog.setEntry(entry);
        if (diags != nullptr)
            verifyProgram(prog, *diags);
        else
            verifyProgramFatal(prog);
        return std::move(prog);
    }

  private:
    std::vector<Token> tokens;
    size_t pos = 0;
    Program prog;
    ModuleId lastModule = invalidModule;

    // Per-module symbol table: name -> qubit ids (size 1 for scalars).
    std::unordered_map<std::string, std::vector<QubitId>> symbols;

    const Token &peek() const { return tokens[pos]; }
    bool at(TokenKind kind) const { return peek().kind == kind; }

    const Token &
    expect(TokenKind kind)
    {
        if (!at(kind)) {
            fatal(csprintf("line %u: expected %s, found %s", peek().line,
                           tokenKindName(kind), tokenKindName(peek().kind)));
        }
        return tokens[pos++];
    }

    bool
    accept(TokenKind kind)
    {
        if (!at(kind)) {
            return false;
        }
        ++pos;
        return true;
    }

    /** Register every module name up front so calls can be forward. */
    void
    preScanModuleNames()
    {
        for (size_t i = 0; i + 1 < tokens.size(); ++i) {
            if (tokens[i].kind == TokenKind::KwModule &&
                tokens[i + 1].kind == TokenKind::Identifier) {
                prog.addModule(tokens[i + 1].text);
            }
        }
    }

    void
    declareSymbol(Module &mod, const std::string &name,
                  std::vector<QubitId> ids, unsigned line)
    {
        if (symbols.count(name))
            fatal(csprintf("line %u: redeclaration of '%s'", line,
                           name.c_str()));
        symbols.emplace(name, std::move(ids));
    }

    void
    parseModule()
    {
        unsigned line = peek().line;
        expect(TokenKind::KwModule);
        std::string name = expect(TokenKind::Identifier).text;
        ModuleId id = prog.findModule(name);
        if (id == invalidModule)
            panic("pre-scan missed module " + name);
        Module &mod = prog.module(id);
        if (mod.numQubits() != 0 || mod.numOps() != 0)
            fatal(csprintf("line %u: duplicate module '%s'", line,
                           name.c_str()));
        symbols.clear();

        expect(TokenKind::LParen);
        if (!at(TokenKind::RParen)) {
            do {
                parseParam(mod);
            } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RParen);
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace))
            parseStatement(mod);
        lastModule = id;
    }

    void
    parseParam(Module &mod)
    {
        unsigned line = peek().line;
        expect(TokenKind::KwQbit);
        std::string name = expect(TokenKind::Identifier).text;
        std::vector<QubitId> ids;
        if (accept(TokenKind::LBracket)) {
            uint64_t width = expect(TokenKind::Integer).intValue;
            expect(TokenKind::RBracket);
            if (width == 0)
                fatal(csprintf("line %u: zero-width register '%s'", line,
                               name.c_str()));
            for (uint64_t i = 0; i < width; ++i) {
                ids.push_back(mod.addParam(
                    csprintf("%s[%llu]", name.c_str(),
                             static_cast<unsigned long long>(i))));
            }
        } else {
            ids.push_back(mod.addParam(name));
        }
        declareSymbol(mod, name, std::move(ids), line);
    }

    void
    parseStatement(Module &mod)
    {
        unsigned line = peek().line;
        if (accept(TokenKind::KwQbit)) {
            std::string name = expect(TokenKind::Identifier).text;
            std::vector<QubitId> ids;
            if (accept(TokenKind::LBracket)) {
                uint64_t width = expect(TokenKind::Integer).intValue;
                expect(TokenKind::RBracket);
                if (width == 0)
                    fatal(csprintf("line %u: zero-width register '%s'",
                                   line, name.c_str()));
                for (uint64_t i = 0; i < width; ++i) {
                    ids.push_back(mod.addLocal(
                        csprintf("%s[%llu]", name.c_str(),
                                 static_cast<unsigned long long>(i))));
                }
            } else {
                ids.push_back(mod.addLocal(name));
            }
            expect(TokenKind::Semicolon);
            declareSymbol(mod, name, std::move(ids), line);
            return;
        }

        uint64_t repeat = 1;
        if (accept(TokenKind::KwRepeat)) {
            repeat = expect(TokenKind::Integer).intValue;
            if (repeat == 0)
                fatal(csprintf("line %u: repeat count must be >= 1", line));
        }
        parseApply(mod, repeat, line);
        expect(TokenKind::Semicolon);
    }

    void
    parseApply(Module &mod, uint64_t repeat, unsigned line)
    {
        std::string name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);

        std::vector<QubitId> qubits;
        bool have_angle = false;
        double angle = 0.0;
        if (!at(TokenKind::RParen)) {
            do {
                if (at(TokenKind::Identifier)) {
                    parseQubitArg(mod, qubits);
                } else {
                    if (have_angle) {
                        fatal(csprintf("line %u: multiple angle arguments",
                                       line));
                    }
                    angle = parseNumber();
                    have_angle = true;
                }
            } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RParen);

        GateKind kind;
        if (parseGateName(name, kind) && kind != GateKind::Call) {
            if (isRotationGate(kind) && !have_angle) {
                fatal(csprintf("line %u: rotation gate %s needs an angle",
                               line, name.c_str()));
            }
            if (!isRotationGate(kind) && have_angle) {
                fatal(csprintf("line %u: gate %s takes no angle", line,
                               name.c_str()));
            }
            // Raw insertion: arity / duplicate-operand violations are
            // user errors, reported with line numbers by the IR
            // verifier pass that runs when parsing finishes.
            Operation op(kind, std::move(qubits), angle);
            op.line = line;
            for (uint64_t i = 1; i < repeat; ++i)
                mod.addRawOperation(op);
            mod.addRawOperation(std::move(op));
            return;
        }

        ModuleId callee = prog.findModule(name);
        if (callee == invalidModule) {
            fatal(csprintf("line %u: unknown gate or module '%s'", line,
                           name.c_str()));
        }
        if (have_angle)
            fatal(csprintf("line %u: module call with angle argument",
                           line));
        Operation call = Operation::makeCall(callee, std::move(qubits),
                                             repeat);
        call.line = line;
        mod.addRawOperation(std::move(call));
    }

    void
    parseQubitArg(Module &mod, std::vector<QubitId> &out)
    {
        unsigned line = peek().line;
        std::string name = expect(TokenKind::Identifier).text;
        auto it = symbols.find(name);
        if (it == symbols.end()) {
            fatal(csprintf("line %u: undeclared qubit '%s' in module %s",
                           line, name.c_str(), mod.name().c_str()));
        }
        if (accept(TokenKind::LBracket)) {
            uint64_t index = expect(TokenKind::Integer).intValue;
            expect(TokenKind::RBracket);
            if (index >= it->second.size()) {
                fatal(csprintf("line %u: index %llu out of range for '%s'",
                               line,
                               static_cast<unsigned long long>(index),
                               name.c_str()));
            }
            out.push_back(it->second[index]);
        } else {
            // Bare register name: expand to all elements.
            out.insert(out.end(), it->second.begin(), it->second.end());
        }
    }

    double
    parseNumber()
    {
        bool negative = accept(TokenKind::Minus);
        double value = 0.0;
        if (at(TokenKind::Float)) {
            value = expect(TokenKind::Float).floatValue;
        } else if (at(TokenKind::Integer)) {
            value = static_cast<double>(expect(TokenKind::Integer).intValue);
        } else {
            fatal(csprintf("line %u: expected a number, found %s",
                           peek().line, tokenKindName(peek().kind)));
        }
        return negative ? -value : value;
    }
};

} // anonymous namespace

Program
parseScaffold(const std::string &source, DiagnosticEngine *diags)
{
    Parser parser(tokenize(source));
    return parser.parse(diags);
}

Program
parseScaffoldFile(const std::string &path, DiagnosticEngine *diags)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open input file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseScaffold(buffer.str(), diags);
}

} // namespace msq
