#include "frontend/lexer.hh"

#include <cctype>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Integer:    return "integer";
      case TokenKind::Float:      return "float";
      case TokenKind::KwModule:   return "'module'";
      case TokenKind::KwQbit:     return "'qbit'";
      case TokenKind::KwRepeat:   return "'repeat'";
      case TokenKind::LParen:     return "'('";
      case TokenKind::RParen:     return "')'";
      case TokenKind::LBrace:     return "'{'";
      case TokenKind::RBrace:     return "'}'";
      case TokenKind::LBracket:   return "'['";
      case TokenKind::RBracket:   return "']'";
      case TokenKind::Comma:      return "','";
      case TokenKind::Semicolon:  return "';'";
      case TokenKind::Minus:      return "'-'";
      case TokenKind::EndOfFile:  return "end of input";
    }
    return "?";
}

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    unsigned line = 1;
    size_t i = 0;
    size_t n = source.size();

    auto push = [&](TokenKind kind) {
        Token tok;
        tok.kind = kind;
        tok.line = line;
        tokens.push_back(tok);
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= n)
                fatal(csprintf("line %u: unterminated block comment", line));
            i += 2;
            continue;
        }
        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t begin = i;
            while (i < n && (std::isalnum(static_cast<unsigned char>(
                                 source[i])) ||
                             source[i] == '_'))
                ++i;
            std::string text = source.substr(begin, i - begin);
            Token tok;
            tok.line = line;
            if (text == "module") {
                tok.kind = TokenKind::KwModule;
            } else if (text == "qbit" || text == "qreg") {
                tok.kind = TokenKind::KwQbit;
            } else if (text == "repeat") {
                tok.kind = TokenKind::KwRepeat;
            } else {
                tok.kind = TokenKind::Identifier;
                tok.text = std::move(text);
            }
            tokens.push_back(tok);
            continue;
        }
        // Numbers (integer or float; exponents supported). Scanned as
        // the explicit grammar
        //     digits ['.' [digits]] [('e'|'E') ['+'|'-'] digits]
        // so malformed shapes — a second '.' ("1.2.3"), a dangling
        // exponent ("1e", "1e+"), or letters glued onto the literal —
        // are fatal diagnostics instead of being silently split into
        // several tokens or crashing the conversion below.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            size_t begin = i;
            bool is_float = false;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(source[i])))
                ++i;
            if (i < n && source[i] == '.') {
                is_float = true;
                ++i;
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(source[i])))
                    ++i;
            }
            if (i < n && (source[i] == 'e' || source[i] == 'E')) {
                is_float = true;
                ++i;
                if (i < n && (source[i] == '+' || source[i] == '-'))
                    ++i;
                if (i >= n ||
                    !std::isdigit(static_cast<unsigned char>(source[i]))) {
                    fatal(csprintf(
                        "line %u: malformed numeric literal '%s': "
                        "exponent has no digits",
                        line, source.substr(begin, i - begin).c_str()));
                }
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(source[i])))
                    ++i;
            }
            if (i < n &&
                (source[i] == '.' ||
                 std::isalnum(static_cast<unsigned char>(source[i])))) {
                fatal(csprintf(
                    "line %u: malformed numeric literal: stray '%c' "
                    "after '%s'",
                    line, source[i],
                    source.substr(begin, i - begin).c_str()));
            }
            std::string text = source.substr(begin, i - begin);
            Token tok;
            tok.line = line;
            try {
                if (is_float) {
                    tok.kind = TokenKind::Float;
                    tok.floatValue = std::stod(text);
                } else {
                    tok.kind = TokenKind::Integer;
                    tok.intValue = std::stoull(text);
                }
            } catch (const std::exception &) {
                fatal(csprintf("line %u: bad numeric literal '%s'", line,
                               text.c_str()));
            }
            tokens.push_back(tok);
            continue;
        }
        switch (c) {
          case '(': push(TokenKind::LParen); break;
          case ')': push(TokenKind::RParen); break;
          case '{': push(TokenKind::LBrace); break;
          case '}': push(TokenKind::RBrace); break;
          case '[': push(TokenKind::LBracket); break;
          case ']': push(TokenKind::RBracket); break;
          case ',': push(TokenKind::Comma); break;
          case ';': push(TokenKind::Semicolon); break;
          case '-': push(TokenKind::Minus); break;
          default:
            fatal(csprintf("line %u: unexpected character '%c'", line, c));
        }
        ++i;
    }

    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.line = line;
    tokens.push_back(eof);
    return tokens;
}

} // namespace msq
