#include "frontend/qasm_reader.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "support/logging.hh"
#include "support/strings.hh"
#include "verify/verifier.hh"

namespace msq {

namespace {

/** Whitespace-split one line into tokens. */
std::vector<std::string>
tokens(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

[[noreturn]] void
bad(unsigned line_no, const std::string &what)
{
    fatal(csprintf("qasm line %u: %s", line_no, what.c_str()));
}

/**
 * Parse the N of a call[xN] repeat. Hand-rolled instead of std::stoull
 * so malformed input ("call[xFOO]", "call[x]", a 30-digit count) is a
 * diagnosed FatalError with a line number, never a raw std::exception.
 */
uint64_t
parseRepeat(unsigned line_no, const std::string &text)
{
    if (text.empty())
        bad(line_no, "call repeat count is empty");
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            bad(line_no,
                "call repeat count '" + text + "' is not a number");
        }
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
            bad(line_no,
                "call repeat count '" + text + "' is out of range");
        }
        value = value * 10 + digit;
    }
    return value;
}

/**
 * Parse a gate angle. Rejects empty ("Rz()"), non-numeric ("Rz(abc)"),
 * trailing-garbage ("Rz(1.5x)") and out-of-range forms with a
 * line-numbered diagnostic instead of letting std::stod throw.
 */
double
parseAngle(unsigned line_no, const std::string &text)
{
    if (text.empty())
        bad(line_no, "gate angle is empty");
    errno = 0;
    const char *begin = text.c_str();
    char *end = nullptr;
    double value = std::strtod(begin, &end);
    if (end == begin || *end != '\0')
        bad(line_no, "malformed gate angle '" + text + "'");
    if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL))
        bad(line_no, "gate angle '" + text + "' is out of range");
    return value;
}

} // anonymous namespace

Program
parseHierarchicalQasm(const std::string &text, DiagnosticEngine *diags)
{
    Program prog;

    // Pre-scan module names so calls could, in principle, be forward.
    {
        std::istringstream in(text);
        std::string line;
        while (std::getline(in, line)) {
            auto toks = tokens(line);
            if (toks.size() >= 2 && toks[0] == ".module")
                prog.addModule(toks[1]);
        }
    }
    if (prog.numModules() == 0)
        fatal("qasm input contains no .module blocks");

    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;
    ModuleId current = invalidModule;
    ModuleId last = invalidModule;
    std::unordered_map<std::string, QubitId> names;

    auto lookup = [&](const std::string &name) -> QubitId {
        auto it = names.find(name);
        if (it == names.end())
            bad(line_no, "unknown qubit '" + name + "'");
        return it->second;
    };

    while (std::getline(in, line)) {
        ++line_no;
        auto toks = tokens(line);
        if (toks.empty())
            continue;

        if (toks[0] == ".module") {
            if (current != invalidModule)
                bad(line_no, "nested .module");
            if (toks.size() < 2)
                bad(line_no, ".module needs a name");
            current = prog.findModule(toks[1]);
            names.clear();
            Module &mod = prog.module(current);
            for (size_t i = 2; i < toks.size(); ++i)
                names.emplace(toks[i], mod.addParam(toks[i]));
            continue;
        }
        if (toks[0] == ".end") {
            if (current == invalidModule)
                bad(line_no, ".end without .module");
            last = current;
            current = invalidModule;
            continue;
        }
        if (current == invalidModule)
            bad(line_no, "statement outside .module block");
        Module &mod = prog.module(current);

        if (toks[0] == "qbit") {
            if (toks.size() != 2)
                bad(line_no, "qbit needs exactly one name");
            if (names.count(toks[1]))
                bad(line_no, "duplicate qubit '" + toks[1] + "'");
            names.emplace(toks[1], mod.addLocal(toks[1]));
            continue;
        }

        if (startsWith(toks[0], "call")) {
            uint64_t repeat = 1;
            if (toks[0] != "call") {
                // call[xN]
                if (toks[0].size() < 8 || toks[0].substr(4, 2) != "[x" ||
                    toks[0].back() != ']')
                    bad(line_no, "malformed call repeat");
                repeat = parseRepeat(
                    line_no, toks[0].substr(6, toks[0].size() - 7));
            }
            if (toks.size() < 2)
                bad(line_no, "call needs a target module");
            ModuleId callee = prog.findModule(toks[1]);
            if (callee == invalidModule)
                bad(line_no, "unknown module '" + toks[1] + "'");
            std::vector<QubitId> args;
            for (size_t i = 2; i < toks.size(); ++i)
                args.push_back(lookup(toks[i]));
            Operation call =
                Operation::makeCall(callee, std::move(args), repeat);
            call.line = line_no;
            mod.addRawOperation(std::move(call));
            continue;
        }

        // Gate line: NAME or NAME(angle), then operand names.
        std::string head = toks[0];
        double angle = 0.0;
        size_t paren = head.find('(');
        if (paren != std::string::npos) {
            if (head.back() != ')')
                bad(line_no, "malformed angle");
            angle = parseAngle(
                line_no, head.substr(paren + 1, head.size() - paren - 2));
            head = head.substr(0, paren);
        }
        GateKind kind;
        if (!parseGateName(head, kind) || kind == GateKind::Call)
            bad(line_no, "unknown gate '" + head + "'");
        std::vector<QubitId> operands;
        for (size_t i = 1; i < toks.size(); ++i)
            operands.push_back(lookup(toks[i]));
        Operation op(kind, std::move(operands), angle);
        op.line = line_no;
        mod.addRawOperation(std::move(op));
    }

    if (current != invalidModule)
        fatal("qasm input ends inside a .module block");
    if (last == invalidModule)
        fatal("qasm input contains no completed module");
    prog.setEntry(last);
    if (diags != nullptr)
        verifyProgram(prog, *diags);
    else
        verifyProgramFatal(prog);
    return prog;
}

} // namespace msq
