/**
 * @file
 * Parser for the Scaffold-subset input language, producing an IR Program.
 *
 * Grammar (EBNF):
 *
 *   program   := module*
 *   module    := "module" IDENT "(" paramlist? ")" "{" stmt* "}"
 *   paramlist := param ("," param)*
 *   param     := "qbit" IDENT ("[" INT "]")?
 *   stmt      := "qbit" IDENT ("[" INT "]")? ";"      // local declaration
 *              | ("repeat" INT)? apply ";"            // gate or module call
 *   apply     := IDENT "(" arglist? ")"
 *   arglist   := arg ("," arg)*
 *   arg       := IDENT ("[" INT "]")?                 // qubit / register
 *              | NUMBER                               // rotation angle
 *
 * Semantics:
 *  - `qbit r[4]` declares a 4-qubit register; `qbit q` a scalar.
 *  - Passing a bare register name expands to its elements in order.
 *  - An applied IDENT naming a known gate becomes that gate; otherwise it
 *    must name a module (declared anywhere in the file).
 *  - Rotation gates take a trailing numeric angle argument.
 *  - The entry module is `main`, or the last module when absent.
 */

#ifndef MSQ_FRONTEND_PARSER_HH
#define MSQ_FRONTEND_PARSER_HH

#include <string>

#include "ir/program.hh"
#include "support/diagnostic.hh"

namespace msq {

/**
 * Parse @p source into a verified Program. Every operation carries its
 * 1-based source line (Operation::line) for diagnostics.
 *
 * Semantic errors (wrong gate arity, duplicate operands, call arity
 * mismatches, recursion, ...) are found by the IR verifier after
 * parsing. With @p diags null they raise one FatalError listing every
 * violation; with @p diags supplied they are collected there instead
 * and the (possibly malformed) program is still returned, so tools like
 * msq-verify can report everything at once. Lexical and syntax errors
 * always call fatal() with a line-numbered message.
 */
Program parseScaffold(const std::string &source,
                      DiagnosticEngine *diags = nullptr);

/** Parse the file at @p path (fatal() when unreadable). */
Program parseScaffoldFile(const std::string &path,
                          DiagnosticEngine *diags = nullptr);

} // namespace msq

#endif // MSQ_FRONTEND_PARSER_HH
