/**
 * @file
 * The gate vocabulary of the MSQ intermediate representation.
 *
 * The primitive set mirrors the QASM target of ScaffCC (paper §3.1): the
 * Pauli gates, the Clifford group generators (CNOT, H, S), the T gate,
 * preparation and measurement. Non-primitive gates (Toffoli, Fredkin,
 * arbitrary rotations) are accepted by the IR and lowered by the
 * decomposition passes before scheduling.
 */

#ifndef MSQ_IR_GATE_HH
#define MSQ_IR_GATE_HH

#include <cstdint>
#include <string>

namespace msq {

/** Every operation kind the IR can represent. */
enum class GateKind : uint8_t {
    // One-qubit primitives.
    X,
    Y,
    Z,
    H,
    S,
    Sdag,
    T,
    Tdag,
    PrepZ,
    PrepX,
    MeasZ,
    MeasX,
    // Two-qubit primitives.
    CNOT,
    CZ,
    // Non-primitive gates, lowered by passes before scheduling.
    Rx,
    Ry,
    Rz,
    Swap,
    Toffoli,
    Fredkin,
    // Module invocation (blackbox at scheduling time).
    Call,

    NumKinds,
};

/** Number of distinct gate kinds (for table sizing). */
constexpr size_t numGateKinds = static_cast<size_t>(GateKind::NumKinds);

/** @return the mnemonic for @p kind, e.g. "CNOT". */
const char *gateName(GateKind kind);

/** Parse a gate mnemonic; returns false when @p name is unknown. */
bool parseGateName(const std::string &name, GateKind &kind);

/**
 * @return the number of qubit operands @p kind takes, or -1 for Call
 * (whose arity is the callee's parameter count).
 */
int gateArity(GateKind kind);

/** @return true for the arbitrary-angle rotation gates Rx/Ry/Rz. */
bool isRotationGate(GateKind kind);

/**
 * @return true when @p kind belongs to the primitive QASM target set that
 * the Multi-SIMD hardware executes directly.
 */
bool isPrimitiveGate(GateKind kind);

/** @return true for measurement operations (MeasZ/MeasX). */
bool isMeasureGate(GateKind kind);

/** @return the dagger (inverse) of @p kind for self-contained gates.
 * Rotations invert by negating the angle; measurement/prep have no
 * inverse and trigger a panic. */
GateKind daggerOf(GateKind kind);

} // namespace msq

#endif // MSQ_IR_GATE_HH
