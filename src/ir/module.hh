/**
 * @file
 * A module: the unit of hierarchy in the MSQ IR, mirroring a Scaffold
 * function. A module owns a qubit table (parameters first, then locals /
 * ancilla) and an ordered list of operations with sequential semantics;
 * parallelism is recovered by dependence analysis (ir/dag.hh).
 */

#ifndef MSQ_IR_MODULE_HH
#define MSQ_IR_MODULE_HH

#include <string>
#include <vector>

#include "ir/operation.hh"

namespace msq {

/**
 * One module of a quantum program.
 *
 * A module is a *leaf* when it contains no Call operations; only leaves are
 * handed to the fine-grained schedulers (paper §3.1). Qubits are identified
 * by dense indices: indices [0, numParams) are parameters bound at call
 * sites, the rest are module-local ancilla.
 */
class Module
{
  public:
    /** @param name globally unique module name. */
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a parameter qubit; only legal before any local was added. */
    QubitId addParam(const std::string &qubit_name);

    /** Append a local (ancilla) qubit. */
    QubitId addLocal(const std::string &qubit_name);

    /** Append a contiguous register of @p width locals named base[i]. */
    std::vector<QubitId> addRegister(const std::string &base, size_t width);

    /** Append a gate operation. Operand arity is checked. */
    void addGate(GateKind kind, std::vector<QubitId> operands,
                 double angle = 0.0);

    /** Append a call operation (arity checked later by Program validate). */
    void addCall(ModuleId callee, std::vector<QubitId> args,
                 uint64_t repeat = 1);

    /** Append a pre-built operation (used by pass machinery). */
    void addOperation(Operation op);

    /**
     * Append an operation with no well-formedness checks. For frontends
     * that run the IR verifier (verify/verifier.hh) afterwards, so that
     * malformed input yields collected diagnostics instead of a panic.
     */
    void addRawOperation(Operation op) { ops_.push_back(std::move(op)); }

    size_t numParams() const { return numParams_; }
    size_t numQubits() const { return qubitNames.size(); }
    size_t numOps() const { return ops_.size(); }

    const std::string &qubitName(QubitId q) const;

    const std::vector<Operation> &ops() const { return ops_; }
    const Operation &op(size_t index) const { return ops_.at(index); }

    /** Replace the whole operation list (used by rewriting passes). */
    void setOps(std::vector<Operation> new_ops) { ops_ = std::move(new_ops); }

    /** @return true when the module contains no Call operations. */
    bool isLeaf() const;

    /**
     * Mark this module as never-inline: the flattening pass will keep
     * calls to it as blackboxes regardless of the flattening threshold.
     * The paper uses this for decomposed rotations in Shor's, which "were
     * not inlined into the code, to keep the size manageable" (§5.4).
     */
    void setNoInline(bool no_inline) { noInline_ = no_inline; }
    bool noInline() const { return noInline_; }

    /** Count of non-call gate operations (no recursion into callees). */
    uint64_t localGateCount() const;

    /**
     * 64-bit structural fingerprint of this module's schedulable shape:
     * the qubit table dimensions plus every operation's kind, operands,
     * callee and repeat count. Deliberately excludes the module name,
     * qubit names and rotation angles — none of them influence
     * dependence analysis, fine-grained scheduling or communication
     * annotation, so structurally identical modules (e.g. outlined
     * rotation sequences differing only in angle) hash equal and can
     * share cached schedules (sched/leaf_cache.hh).
     */
    uint64_t structuralHash() const;

  private:
    std::string name_;
    bool noInline_ = false;
    size_t numParams_ = 0;
    std::vector<std::string> qubitNames;
    std::vector<Operation> ops_;
};

} // namespace msq

#endif // MSQ_IR_MODULE_HH
