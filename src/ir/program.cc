#include "ir/program.hh"

#include <functional>

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

ModuleId
Program::addModule(const std::string &name)
{
    if (byName.count(name))
        fatal("duplicate module name: " + name);
    auto id = static_cast<ModuleId>(modules.size());
    modules.push_back(std::make_unique<Module>(name));
    byName.emplace(name, id);
    return id;
}

Module &
Program::module(ModuleId id)
{
    if (id >= modules.size())
        panic(csprintf("module id %u out of range (%zu modules)", id,
                       modules.size()));
    return *modules[id];
}

const Module &
Program::module(ModuleId id) const
{
    if (id >= modules.size())
        panic(csprintf("module id %u out of range (%zu modules)", id,
                       modules.size()));
    return *modules[id];
}

ModuleId
Program::findModule(const std::string &name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? invalidModule : it->second;
}

void
Program::setEntry(ModuleId id)
{
    if (id >= modules.size())
        panic("setEntry: module id out of range");
    entry_ = id;
}

void
Program::validate() const
{
    if (entry_ == invalidModule)
        fatal("program has no entry module");
    for (const auto &mod : modules) {
        for (const auto &op : mod->ops()) {
            if (!op.isCall())
                continue;
            if (op.callee >= modules.size()) {
                fatal(csprintf("module %s calls invalid module id %u",
                               mod->name().c_str(), op.callee));
            }
            const Module &callee = *modules[op.callee];
            if (op.operands.size() != callee.numParams()) {
                fatal(csprintf(
                    "module %s calls %s with %zu args, expected %zu",
                    mod->name().c_str(), callee.name().c_str(),
                    op.operands.size(), callee.numParams()));
            }
        }
    }
    // Acyclicity is established as a side effect of ordering.
    bottomUpOrder();
}

std::vector<ModuleId>
Program::bottomUpOrder() const
{
    enum class Mark : uint8_t { White, Grey, Black };
    std::vector<Mark> marks(modules.size(), Mark::White);
    std::vector<ModuleId> order;
    order.reserve(modules.size());

    std::function<void(ModuleId)> visit = [&](ModuleId id) {
        if (marks[id] == Mark::Black)
            return;
        if (marks[id] == Mark::Grey)
            fatal("recursive call cycle through module " +
                  modules[id]->name());
        marks[id] = Mark::Grey;
        for (const auto &op : modules[id]->ops())
            if (op.isCall())
                visit(op.callee);
        marks[id] = Mark::Black;
        order.push_back(id);
    };

    if (entry_ == invalidModule)
        fatal("bottomUpOrder: program has no entry module");
    visit(entry_);
    return order;
}

std::vector<ModuleId>
Program::reachableModules() const
{
    return bottomUpOrder();
}

} // namespace msq
