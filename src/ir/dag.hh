/**
 * @file
 * Data-dependence DAG over a module's operation list.
 *
 * Quantum operations cannot fan out (no-cloning theorem, paper §2.1), so
 * any two operations sharing a qubit operand are ordered by their program
 * order: the dependence DAG simply chains each operation to the previous
 * operation touching each of its operands. Node weights default to 1 cycle
 * per gate; a caller-supplied weight function lets the hierarchical
 * analyses weight Call nodes by their callee's schedule length.
 */

#ifndef MSQ_IR_DAG_HH
#define MSQ_IR_DAG_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/module.hh"

namespace msq {

/** Dependence DAG of one module. Node i corresponds to module op i. */
class DepDag
{
  public:
    /** Latency (in cycles) assigned to an operation. */
    using WeightFn = std::function<uint64_t(const Operation &)>;

    /**
     * Build the DAG for @p mod.
     * @param weight_fn optional per-op latency; defaults to 1 per op
     *        (including calls — appropriate for leaf modules only).
     */
    static DepDag build(const Module &mod, const WeightFn &weight_fn = {});

    size_t numNodes() const { return nodeWeights.size(); }

    const std::vector<uint32_t> &succs(uint32_t n) const { return succs_[n]; }
    const std::vector<uint32_t> &preds(uint32_t n) const { return preds_[n]; }

    /** Nodes with no predecessors. */
    const std::vector<uint32_t> &roots() const { return roots_; }

    uint64_t weight(uint32_t n) const { return nodeWeights[n]; }

    /**
     * @return for each node, the longest weighted distance from a root,
     * inclusive of the node's own weight (ASAP finish time).
     */
    std::vector<uint64_t> depthFromTop() const;

    /**
     * @return for each node, the longest weighted distance to a sink,
     * inclusive of the node's own weight.
     */
    std::vector<uint64_t> heightToBottom() const;

    /** Longest weighted root-to-sink path length (critical path). */
    uint64_t criticalPathLength() const;

    /**
     * Per-node slack: criticalPath - (depth + height - weight). Zero for
     * critical-path nodes. Used as the w_slack term of RCP (Algorithm 1).
     */
    std::vector<uint64_t> slack() const;

    /** @return node indices in a topological order. */
    std::vector<uint32_t> topoOrder() const;

  private:
    std::vector<std::vector<uint32_t>> succs_;
    std::vector<std::vector<uint32_t>> preds_;
    std::vector<uint32_t> roots_;
    std::vector<uint64_t> nodeWeights;
};

} // namespace msq

#endif // MSQ_IR_DAG_HH
