/**
 * @file
 * A whole quantum program: a set of named modules plus a designated entry
 * module. The call graph must be acyclic (quantum programs in the Scaffold
 * model have classically-resolvable control flow; recursion is rejected,
 * paper §3.1).
 */

#ifndef MSQ_IR_PROGRAM_HH
#define MSQ_IR_PROGRAM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.hh"

namespace msq {

/** A complete modular quantum program. */
class Program
{
  public:
    Program() = default;

    // Modules hold stable ids; Program is move-only.
    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    /**
     * Create a new empty module. Names must be unique.
     * @return the new module's id.
     */
    ModuleId addModule(const std::string &name);

    /** @return the module with id @p id (panics when out of range). */
    Module &module(ModuleId id);
    const Module &module(ModuleId id) const;

    /** @return the id of the module named @p name, or invalidModule. */
    ModuleId findModule(const std::string &name) const;

    size_t numModules() const { return modules.size(); }

    /** Designate the entry (top-level) module. */
    void setEntry(ModuleId id);
    ModuleId entry() const { return entry_; }

    /**
     * Verify structural well-formedness: entry set, call targets valid,
     * call arity matches callee parameter count, and the call graph is
     * acyclic. Calls fatal() on the first violation.
     */
    void validate() const;

    /**
     * @return module ids in reverse-topological (callees-first) order over
     * the modules reachable from the entry. Panics on recursion.
     */
    std::vector<ModuleId> bottomUpOrder() const;

    /** @return ids of modules reachable from the entry (entry included). */
    std::vector<ModuleId> reachableModules() const;

  private:
    std::vector<std::unique_ptr<Module>> modules;
    std::unordered_map<std::string, ModuleId> byName;
    ModuleId entry_ = invalidModule;
};

} // namespace msq

#endif // MSQ_IR_PROGRAM_HH
