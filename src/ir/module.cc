#include "ir/module.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

QubitId
Module::addParam(const std::string &qubit_name)
{
    if (numParams_ != qubitNames.size())
        panic("Module " + name_ + ": parameters must precede locals");
    qubitNames.push_back(qubit_name);
    return static_cast<QubitId>(numParams_++);
}

QubitId
Module::addLocal(const std::string &qubit_name)
{
    qubitNames.push_back(qubit_name);
    return static_cast<QubitId>(qubitNames.size() - 1);
}

std::vector<QubitId>
Module::addRegister(const std::string &base, size_t width)
{
    std::vector<QubitId> reg;
    reg.reserve(width);
    for (size_t i = 0; i < width; ++i)
        reg.push_back(addLocal(csprintf("%s[%zu]", base.c_str(), i)));
    return reg;
}

void
Module::addGate(GateKind kind, std::vector<QubitId> operands, double angle)
{
    if (kind == GateKind::Call)
        panic("Module::addGate cannot add calls; use addCall");
    int arity = gateArity(kind);
    if (arity >= 0 && operands.size() != static_cast<size_t>(arity)) {
        panic(csprintf("Module %s: gate %s expects %d operands, got %zu",
                       name_.c_str(), gateName(kind), arity,
                       operands.size()));
    }
    for (QubitId q : operands) {
        if (q >= qubitNames.size()) {
            panic(csprintf("Module %s: operand %u out of range (%zu qubits)",
                           name_.c_str(), q, qubitNames.size()));
        }
    }
    for (size_t i = 0; i < operands.size(); ++i) {
        for (size_t j = i + 1; j < operands.size(); ++j) {
            if (operands[i] == operands[j]) {
                panic(csprintf("Module %s: gate %s has duplicate operand %u",
                               name_.c_str(), gateName(kind), operands[i]));
            }
        }
    }
    ops_.emplace_back(kind, std::move(operands), angle);
}

void
Module::addCall(ModuleId callee, std::vector<QubitId> args, uint64_t repeat)
{
    if (callee == invalidModule)
        panic("Module " + name_ + ": call to invalid module");
    if (repeat == 0)
        panic("Module " + name_ + ": call repeat count must be >= 1");
    for (QubitId q : args) {
        if (q >= qubitNames.size()) {
            panic(csprintf("Module %s: call arg %u out of range",
                           name_.c_str(), q));
        }
    }
    ops_.push_back(Operation::makeCall(callee, std::move(args), repeat));
}

void
Module::addOperation(Operation op)
{
    if (op.isCall())
        addCall(op.callee, std::move(op.operands), op.repeat);
    else
        addGate(op.kind, std::move(op.operands), op.angle);
}

const std::string &
Module::qubitName(QubitId q) const
{
    if (q >= qubitNames.size())
        panic(csprintf("Module %s: qubit %u out of range", name_.c_str(), q));
    return qubitNames[q];
}

bool
Module::isLeaf() const
{
    for (const auto &op : ops_)
        if (op.isCall())
            return false;
    return true;
}

uint64_t
Module::structuralHash() const
{
    // FNV-1a over the structural fields (see the header for what is
    // deliberately excluded).
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            h ^= (value >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(numParams_);
    mix(qubitNames.size());
    mix(ops_.size());
    for (const auto &op : ops_) {
        mix(static_cast<uint64_t>(op.kind));
        mix(op.callee);
        mix(op.repeat);
        mix(op.operands.size());
        for (QubitId q : op.operands)
            mix(q);
    }
    return h;
}

uint64_t
Module::localGateCount() const
{
    uint64_t count = 0;
    for (const auto &op : ops_)
        if (!op.isCall())
            ++count;
    return count;
}

} // namespace msq
