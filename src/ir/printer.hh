/**
 * @file
 * Human-readable textual dump of IR programs and modules, in a syntax close
 * to the Scaffold-subset accepted by the frontend (so dumps round-trip).
 */

#ifndef MSQ_IR_PRINTER_HH
#define MSQ_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/program.hh"

namespace msq {

/** Print one operation of @p mod as a single line (no newline). */
std::string formatOperation(const Program &prog, const Module &mod,
                            const Operation &op);

/** Print @p mod in frontend-compatible syntax. */
void printModule(std::ostream &os, const Program &prog, const Module &mod);

/** Print all modules reachable from the entry, callees first. */
void printProgram(std::ostream &os, const Program &prog);

} // namespace msq

#endif // MSQ_IR_PRINTER_HH
