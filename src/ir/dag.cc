#include "ir/dag.hh"

#include <algorithm>

#include "support/logging.hh"

namespace msq {

DepDag
DepDag::build(const Module &mod, const WeightFn &weight_fn)
{
    DepDag dag;
    size_t n = mod.numOps();
    dag.succs_.resize(n);
    dag.preds_.resize(n);
    dag.nodeWeights.resize(n);

    // lastUse[q] = index of the most recent op touching qubit q, or -1.
    std::vector<int64_t> last_use(mod.numQubits(), -1);

    for (uint32_t i = 0; i < n; ++i) {
        const Operation &op = mod.op(i);
        uint64_t w = weight_fn ? weight_fn(op) : 1;
        dag.nodeWeights[i] = w;
        for (QubitId q : op.operands) {
            int64_t prev = last_use[q];
            if (prev >= 0) {
                auto p = static_cast<uint32_t>(prev);
                // Avoid duplicate edges from multi-qubit overlaps.
                if (dag.succs_[p].empty() || dag.succs_[p].back() != i)
                    dag.succs_[p].push_back(i);
            }
            last_use[q] = i;
        }
    }
    for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t s : dag.succs_[i])
            dag.preds_[s].push_back(i);
    }
    for (uint32_t i = 0; i < n; ++i) {
        if (dag.preds_[i].empty())
            dag.roots_.push_back(i);
    }
    return dag;
}

std::vector<uint64_t>
DepDag::depthFromTop() const
{
    // Nodes are already in a topological order (program order).
    std::vector<uint64_t> depth(numNodes(), 0);
    for (uint32_t i = 0; i < numNodes(); ++i) {
        uint64_t best = 0;
        for (uint32_t p : preds_[i])
            best = std::max(best, depth[p]);
        depth[i] = best + nodeWeights[i];
    }
    return depth;
}

std::vector<uint64_t>
DepDag::heightToBottom() const
{
    std::vector<uint64_t> height(numNodes(), 0);
    for (uint32_t i = static_cast<uint32_t>(numNodes()); i-- > 0;) {
        uint64_t best = 0;
        for (uint32_t s : succs_[i])
            best = std::max(best, height[s]);
        height[i] = best + nodeWeights[i];
    }
    return height;
}

uint64_t
DepDag::criticalPathLength() const
{
    uint64_t best = 0;
    for (uint64_t d : depthFromTop())
        best = std::max(best, d);
    return best;
}

std::vector<uint64_t>
DepDag::slack() const
{
    auto depth = depthFromTop();
    auto height = heightToBottom();
    uint64_t cp = 0;
    for (uint64_t d : depth)
        cp = std::max(cp, d);
    std::vector<uint64_t> out(numNodes(), 0);
    for (uint32_t i = 0; i < numNodes(); ++i) {
        uint64_t through = depth[i] + height[i] - nodeWeights[i];
        if (through > cp)
            panic("slack: path through node exceeds critical path");
        out[i] = cp - through;
    }
    return out;
}

std::vector<uint32_t>
DepDag::topoOrder() const
{
    // Program order is a valid topological order by construction.
    std::vector<uint32_t> order(numNodes());
    for (uint32_t i = 0; i < numNodes(); ++i)
        order[i] = i;
    return order;
}

} // namespace msq
