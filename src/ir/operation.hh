/**
 * @file
 * A single IR operation: a primitive or composite gate applied to qubit
 * operands, or a (possibly repeat-counted) call to another module.
 */

#ifndef MSQ_IR_OPERATION_HH
#define MSQ_IR_OPERATION_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "ir/gate.hh"

namespace msq {

/** Index of a qubit within its enclosing module's qubit table. */
using QubitId = uint32_t;

/** Index of a module within its enclosing program. */
using ModuleId = uint32_t;

/** Sentinel for "no module". */
constexpr ModuleId invalidModule = std::numeric_limits<ModuleId>::max();

/**
 * One IR operation.
 *
 * For gate kinds other than Call, @ref operands holds gateArity(kind)
 * qubits, @ref angle is meaningful only for rotation gates, and @ref callee
 * / @ref repeat are unused. For Call, @ref operands holds the actual
 * arguments bound to the callee's parameters (in parameter order), and
 * @ref repeat is the classically known trip count of the enclosing loop
 * (1 when not in a loop): the call executes repeat times back-to-back.
 * Repeat counts let the toolflow represent the paper's 10^7-10^12-gate
 * benchmarks without unrolling (paper §3.1).
 */
struct Operation
{
    GateKind kind = GateKind::X;
    std::vector<QubitId> operands;
    double angle = 0.0;
    ModuleId callee = invalidModule;
    uint64_t repeat = 1;

    /**
     * 1-based source line this operation came from; 0 when unknown
     * (operations built programmatically or synthesized by passes).
     * Carried into diagnostics; excluded from operator== so rewritten
     * operations still compare equal to hand-built expectations.
     */
    unsigned line = 0;

    Operation() = default;

    /** Construct a plain gate. */
    Operation(GateKind kind, std::vector<QubitId> operands,
              double angle = 0.0)
        : kind(kind), operands(std::move(operands)), angle(angle)
    {}

    /** Construct a call. */
    static Operation
    makeCall(ModuleId callee, std::vector<QubitId> args, uint64_t repeat = 1)
    {
        Operation op;
        op.kind = GateKind::Call;
        op.operands = std::move(args);
        op.callee = callee;
        op.repeat = repeat;
        return op;
    }

    bool isCall() const { return kind == GateKind::Call; }

    bool
    operator==(const Operation &other) const
    {
        return kind == other.kind && operands == other.operands &&
               angle == other.angle && callee == other.callee &&
               repeat == other.repeat;
    }
};

} // namespace msq

#endif // MSQ_IR_OPERATION_HH
