#include "ir/printer.hh"

#include <cctype>

#include "support/strings.hh"

namespace msq {

namespace {

/** True when @p text is a lexable identifier. */
bool
isIdentifier(const std::string &text)
{
    if (text.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(text[0])) &&
        text[0] != '_')
        return false;
    for (char c : text)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    return true;
}

/**
 * Split a qubit name of the form base[index] into its parts.
 * @return true when the name has that shape with a lexable base.
 */
bool
splitIndexedName(const std::string &name, std::string &base,
                 uint64_t &index)
{
    size_t lb = name.find('[');
    if (lb == std::string::npos || name.back() != ']' || lb == 0)
        return false;
    base = name.substr(0, lb);
    if (!isIdentifier(base))
        return false;
    std::string digits = name.substr(lb + 1, name.size() - lb - 2);
    if (digits.empty())
        return false;
    for (char c : digits)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    index = std::stoull(digits);
    return true;
}

/**
 * Printable form of a qubit name: indexed register elements print as-is;
 * anything else (e.g. flattening-generated "callee.0.anc") is mangled
 * into a lexable identifier. Distinct names can in principle collide
 * after mangling; the printer is a debugging/round-trip aid, not a
 * canonical serializer for pass-generated programs.
 */
std::string
printableName(const std::string &name)
{
    std::string base;
    uint64_t index = 0;
    if (isIdentifier(name) || splitIndexedName(name, base, index))
        return name;
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '[' || c == ']')
            out += c;
        else
            out += '_';
    }
    if (out.empty() ||
        (!std::isalpha(static_cast<unsigned char>(out[0])) &&
         out[0] != '_'))
        out = "q_" + out;
    return out;
}

/**
 * Declaration list for qubits [begin, end): runs named base[0..n) over
 * consecutive ids collapse into a register declaration "base[n]".
 */
std::vector<std::string>
declarationList(const Module &mod, QubitId begin, QubitId end)
{
    std::vector<std::string> decls;
    QubitId i = begin;
    while (i < end) {
        std::string base;
        uint64_t index = 0;
        if (splitIndexedName(mod.qubitName(i), base, index) &&
            index == 0) {
            QubitId j = i;
            while (j < end) {
                std::string expect =
                    csprintf("%s[%llu]", base.c_str(),
                             static_cast<unsigned long long>(j - i));
                if (mod.qubitName(j) != expect)
                    break;
                ++j;
            }
            if (j - i >= 1) {
                decls.push_back(csprintf(
                    "%s[%llu]", base.c_str(),
                    static_cast<unsigned long long>(j - i)));
                i = j;
                continue;
            }
        }
        decls.push_back(printableName(mod.qubitName(i)));
        ++i;
    }
    return decls;
}

} // anonymous namespace

std::string
formatOperation(const Program &prog, const Module &mod, const Operation &op)
{
    std::vector<std::string> args;
    args.reserve(op.operands.size());
    for (QubitId q : op.operands)
        args.push_back(printableName(mod.qubitName(q)));

    std::string text;
    if (op.isCall()) {
        text = prog.module(op.callee).name();
        text += "(" + join(args, ", ") + ")";
        if (op.repeat != 1)
            text = csprintf("repeat %llu ",
                            static_cast<unsigned long long>(op.repeat)) +
                   text;
    } else if (isRotationGate(op.kind)) {
        text = csprintf("%s(%s, %.12g)", gateName(op.kind),
                        join(args, ", ").c_str(), op.angle);
    } else {
        text = std::string(gateName(op.kind)) + "(" + join(args, ", ") + ")";
    }
    return text;
}

void
printModule(std::ostream &os, const Program &prog, const Module &mod)
{
    std::vector<std::string> params;
    for (const auto &decl :
         declarationList(mod, 0, static_cast<QubitId>(mod.numParams())))
        params.push_back("qbit " + decl);
    os << "module " << mod.name() << "(" << join(params, ", ") << ") {\n";
    for (const auto &decl :
         declarationList(mod, static_cast<QubitId>(mod.numParams()),
                         static_cast<QubitId>(mod.numQubits())))
        os << "    qbit " << decl << ";\n";
    for (const auto &op : mod.ops())
        os << "    " << formatOperation(prog, mod, op) << ";\n";
    os << "}\n";
}

void
printProgram(std::ostream &os, const Program &prog)
{
    for (ModuleId id : prog.bottomUpOrder()) {
        printModule(os, prog, prog.module(id));
        os << "\n";
    }
}

} // namespace msq
