#include "ir/gate.hh"

#include <array>
#include <unordered_map>

#include "support/logging.hh"

namespace msq {

namespace {

struct GateInfo
{
    const char *name;
    int arity;
    bool rotation;
    bool primitive;
    bool measure;
};

constexpr std::array<GateInfo, numGateKinds> gateTable = {{
    {"X", 1, false, true, false},
    {"Y", 1, false, true, false},
    {"Z", 1, false, true, false},
    {"H", 1, false, true, false},
    {"S", 1, false, true, false},
    {"Sdag", 1, false, true, false},
    {"T", 1, false, true, false},
    {"Tdag", 1, false, true, false},
    {"PrepZ", 1, false, true, false},
    {"PrepX", 1, false, true, false},
    {"MeasZ", 1, false, true, true},
    {"MeasX", 1, false, true, true},
    {"CNOT", 2, false, true, false},
    {"CZ", 2, false, true, false},
    {"Rx", 1, true, false, false},
    {"Ry", 1, true, false, false},
    {"Rz", 1, true, false, false},
    {"Swap", 2, false, false, false},
    {"Toffoli", 3, false, false, false},
    {"Fredkin", 3, false, false, false},
    {"call", -1, false, false, false},
}};

const GateInfo &
info(GateKind kind)
{
    auto index = static_cast<size_t>(kind);
    if (index >= gateTable.size())
        panic("gate kind out of range: " + std::to_string(index));
    return gateTable[index];
}

} // anonymous namespace

const char *
gateName(GateKind kind)
{
    return info(kind).name;
}

bool
parseGateName(const std::string &name, GateKind &kind)
{
    static const std::unordered_map<std::string, GateKind> byName = [] {
        std::unordered_map<std::string, GateKind> map;
        for (size_t i = 0; i < gateTable.size(); ++i)
            map.emplace(gateTable[i].name, static_cast<GateKind>(i));
        return map;
    }();
    auto it = byName.find(name);
    if (it == byName.end())
        return false;
    kind = it->second;
    return true;
}

int
gateArity(GateKind kind)
{
    return info(kind).arity;
}

bool
isRotationGate(GateKind kind)
{
    return info(kind).rotation;
}

bool
isPrimitiveGate(GateKind kind)
{
    return info(kind).primitive;
}

bool
isMeasureGate(GateKind kind)
{
    return info(kind).measure;
}

GateKind
daggerOf(GateKind kind)
{
    switch (kind) {
      case GateKind::S:
        return GateKind::Sdag;
      case GateKind::Sdag:
        return GateKind::S;
      case GateKind::T:
        return GateKind::Tdag;
      case GateKind::Tdag:
        return GateKind::T;
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CNOT:
      case GateKind::CZ:
      case GateKind::Swap:
      case GateKind::Toffoli:
      case GateKind::Fredkin:
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
        return kind; // self-inverse, or caller negates the angle
      default:
        panic(std::string("daggerOf: gate has no inverse: ") +
              gateName(kind));
    }
}

} // namespace msq
