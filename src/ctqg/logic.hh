/**
 * @file
 * CTQG bitwise/boolean logic generators: word-level XOR/AND/OR, the SHA-1
 * round functions (choose, majority, parity), constant loading, rotation
 * (a free wire permutation), and multi-controlled gates via Toffoli
 * ladders — the building blocks of the BF, CN, SHA-1 and Grover oracles.
 */

#ifndef MSQ_CTQG_LOGIC_HH
#define MSQ_CTQG_LOGIC_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"

namespace msq {
namespace ctqg {

using Register = std::vector<QubitId>;

/** b ^= a, bitwise. */
void bitwiseXor(Module &mod, const Register &a, const Register &b);

/** out ^= a & b, bitwise (Toffolis). */
void bitwiseAnd(Module &mod, const Register &a, const Register &b,
                const Register &out);

/** out ^= a | b, bitwise (De Morgan via X-conjugated Toffolis). */
void bitwiseOr(Module &mod, const Register &a, const Register &b,
               const Register &out);

/** Load @p value into @p reg with X gates (reg assumed |0...0>). */
void setConst(Module &mod, const Register &reg, uint64_t value);

/** @return @p reg rotated left by @p amount — a wire relabeling, free. */
Register rotl(const Register &reg, unsigned amount);

/** SHA-1 Ch: out ^= (x & y) ^ (~x & z), bitwise. */
void chooseFunction(Module &mod, const Register &x, const Register &y,
                    const Register &z, const Register &out);

/** SHA-1 Maj: out ^= (x & y) ^ (x & z) ^ (y & z), bitwise. */
void majorityFunction(Module &mod, const Register &x, const Register &y,
                      const Register &z, const Register &out);

/** SHA-1 Parity: out ^= x ^ y ^ z, bitwise. */
void parityFunction(Module &mod, const Register &x, const Register &y,
                    const Register &z, const Register &out);

/**
 * Multi-controlled X: flips @p target when every control is 1, using a
 * Toffoli ladder over |controls| - 1 ancilla (uncomputed afterwards).
 * With 0 controls this is a plain X; with 1, a CNOT; with 2, a Toffoli.
 * @param anc ancilla register with at least |controls| - 1 clean qubits.
 */
void multiControlledX(Module &mod, const Register &controls,
                      QubitId target, const Register &anc);

/** Multi-controlled Z via H-conjugated multiControlledX. */
void multiControlledZ(Module &mod, const Register &controls,
                      QubitId target, const Register &anc);

} // namespace ctqg
} // namespace msq

#endif // MSQ_CTQG_LOGIC_HH
