#include "ctqg/arith.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {
namespace ctqg {

namespace {

/** MAJ block of the Cuccaro adder. */
void
maj(Module &mod, QubitId c, QubitId b, QubitId a)
{
    mod.addGate(GateKind::CNOT, {a, b});
    mod.addGate(GateKind::CNOT, {a, c});
    mod.addGate(GateKind::Toffoli, {c, b, a});
}

/** UMA block (2-CNOT variant) of the Cuccaro adder. */
void
uma(Module &mod, QubitId c, QubitId b, QubitId a)
{
    mod.addGate(GateKind::Toffoli, {c, b, a});
    mod.addGate(GateKind::CNOT, {a, c});
    mod.addGate(GateKind::CNOT, {c, b});
}

void
checkSameWidth(const Register &a, const Register &b, const char *what)
{
    if (a.size() != b.size())
        fatal(csprintf("ctqg %s: register widths differ (%zu vs %zu)",
                       what, a.size(), b.size()));
    if (a.empty())
        fatal(csprintf("ctqg %s: empty register", what));
}

} // anonymous namespace

void
cuccaroAdd(Module &mod, const Register &a, const Register &b,
           QubitId carry_anc, QubitId carry_out)
{
    checkSameWidth(a, b, "cuccaroAdd");
    size_t n = a.size();

    // Forward MAJ ripple: carry flows through the a wires.
    maj(mod, carry_anc, b[0], a[0]);
    for (size_t i = 1; i < n; ++i)
        maj(mod, a[i - 1], b[i], a[i]);

    if (carry_out != invalidQubit)
        mod.addGate(GateKind::CNOT, {a[n - 1], carry_out});

    // Backward UMA ripple restores a and the carry ancilla.
    for (size_t i = n; i-- > 1;)
        uma(mod, a[i - 1], b[i], a[i]);
    uma(mod, carry_anc, b[0], a[0]);
}

void
cuccaroSub(Module &mod, const Register &a, const Register &b,
           QubitId carry_anc)
{
    // b - a = ~(~b + a)
    for (QubitId q : b)
        mod.addGate(GateKind::X, {q});
    cuccaroAdd(mod, a, b, carry_anc);
    for (QubitId q : b)
        mod.addGate(GateKind::X, {q});
}

void
addConst(Module &mod, uint64_t constant, const Register &b,
         const Register &scratch, QubitId carry_anc)
{
    checkSameWidth(b, scratch, "addConst");
    auto load = [&]() {
        for (size_t i = 0; i < b.size() && i < 64; ++i)
            if ((constant >> i) & 1)
                mod.addGate(GateKind::X, {scratch[i]});
    };
    load();
    cuccaroAdd(mod, scratch, b, carry_anc);
    load(); // X is self-inverse: unload
}

void
compareLess(Module &mod, const Register &a, const Register &b,
            QubitId less, const Register &scratch, QubitId carry_anc)
{
    checkSameWidth(a, b, "compareLess");
    checkSameWidth(a, scratch, "compareLess");

    // carry(~a + b) == 1  <=>  a < b
    for (size_t i = 0; i < b.size(); ++i)
        mod.addGate(GateKind::CNOT, {b[i], scratch[i]}); // scratch = b
    for (QubitId q : a)
        mod.addGate(GateKind::X, {q}); // a = ~a
    cuccaroAdd(mod, a, scratch, carry_anc, less);
    cuccaroSub(mod, a, scratch, carry_anc); // scratch back to b
    for (QubitId q : a)
        mod.addGate(GateKind::X, {q}); // restore a
    for (size_t i = 0; i < b.size(); ++i)
        mod.addGate(GateKind::CNOT, {b[i], scratch[i]}); // scratch = 0
}

void
controlledAdd(Module &mod, QubitId ctl, const Register &a,
              const Register &b, const Register &scratch,
              QubitId carry_anc)
{
    checkSameWidth(a, b, "controlledAdd");
    checkSameWidth(a, scratch, "controlledAdd");
    for (size_t i = 0; i < a.size(); ++i)
        mod.addGate(GateKind::Toffoli, {ctl, a[i], scratch[i]});
    cuccaroAdd(mod, scratch, b, carry_anc);
    for (size_t i = 0; i < a.size(); ++i)
        mod.addGate(GateKind::Toffoli, {ctl, a[i], scratch[i]});
}

void
multiplyAccumulate(Module &mod, const Register &a, const Register &b,
                   const Register &product, const Register &scratch,
                   QubitId carry_anc)
{
    if (product.size() < a.size() + b.size())
        fatal("ctqg multiplyAccumulate: product register too narrow");
    if (scratch.size() < product.size())
        fatal("ctqg multiplyAccumulate: scratch register too narrow");

    // Shift-and-add with a zero-extended addend so no carry is lost:
    // for each set bit i of b, add (a << i) into product[i..] through a
    // full-width scratch whose upper bits stay zero.
    for (size_t i = 0; i < b.size(); ++i) {
        size_t window_width = product.size() - i;
        Register window(product.begin() + static_cast<long>(i),
                        product.end());
        Register addend(scratch.begin(),
                        scratch.begin() +
                            static_cast<long>(window_width));
        for (size_t j = 0; j < a.size(); ++j)
            mod.addGate(GateKind::Toffoli, {b[i], a[j], addend[j]});
        cuccaroAdd(mod, addend, window, carry_anc);
        for (size_t j = 0; j < a.size(); ++j)
            mod.addGate(GateKind::Toffoli, {b[i], a[j], addend[j]});
    }
}

} // namespace ctqg
} // namespace msq
