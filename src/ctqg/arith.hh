/**
 * @file
 * Classical-To-Quantum-Gates (CTQG) arithmetic generators (paper §3.1).
 *
 * ScaffCC's CTQG tool decomposes classical arithmetic (a + b = c,
 * comparisons, multiplication) into reversible gate networks. The paper
 * notes the resulting code is "unoptimized ... highly locally serialized"
 * (§5.2) — long ripple-carry chains with little parallelism — which is
 * precisely what these generators produce.
 *
 * All functions append gates to an existing module. Registers are
 * little-endian vectors of qubit ids (index 0 = least significant bit).
 * Composite gates (Toffoli) are emitted directly; run
 * DecomposeToffoliPass before scheduling.
 */

#ifndef MSQ_CTQG_ARITH_HH
#define MSQ_CTQG_ARITH_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"

namespace msq {
namespace ctqg {

/** A little-endian qubit register. */
using Register = std::vector<QubitId>;

/**
 * Cuccaro ripple-carry adder: b += a (mod 2^n).
 *
 * @param mod destination module.
 * @param a addend register (unchanged).
 * @param b target register, receives the sum; |b| == |a|.
 * @param carry_anc a borrowed ancilla, returned to its input state.
 * @param carry_out when valid (!= invalidQubit), receives the final
 *        carry, making the adder a full n+1-bit adder.
 */
constexpr QubitId invalidQubit = ~QubitId{0};
void cuccaroAdd(Module &mod, const Register &a, const Register &b,
                QubitId carry_anc, QubitId carry_out = invalidQubit);

/** b -= a (mod 2^n), the adder run through complement identities. */
void cuccaroSub(Module &mod, const Register &a, const Register &b,
                QubitId carry_anc);

/**
 * b += constant (mod 2^n). CTQG-style: the constant is loaded into the
 * scratch register with X gates, added, then unloaded.
 * @param scratch ancilla register, |scratch| == |b|, in and out |0...0>.
 */
void addConst(Module &mod, uint64_t constant, const Register &b,
              const Register &scratch, QubitId carry_anc);

/**
 * Unsigned comparison: flips @p less when a < b.
 * Computes b - a into scratch via ripple borrow, copies the borrow out,
 * then uncomputes. |scratch| == |a|.
 */
void compareLess(Module &mod, const Register &a, const Register &b,
                 QubitId less, const Register &scratch, QubitId carry_anc);

/**
 * Controlled addition: b += a when ctl is set. CTQG lowers this by
 * AND-ing a into scratch under the control (Toffolis), adding scratch,
 * and uncomputing — serial but simple. |scratch| == |a|.
 */
void controlledAdd(Module &mod, QubitId ctl, const Register &a,
                   const Register &b, const Register &scratch,
                   QubitId carry_anc);

/**
 * Shift-and-add multiplier: product += a * b.
 * @param product register of width at least |a| + |b|.
 * @param scratch clean ancilla register of width at least |product|
 *        (the addend is zero-extended so no partial-sum carry is lost);
 *        returned clean.
 */
void multiplyAccumulate(Module &mod, const Register &a, const Register &b,
                        const Register &product, const Register &scratch,
                        QubitId carry_anc);

} // namespace ctqg
} // namespace msq

#endif // MSQ_CTQG_ARITH_HH
