#include "ctqg/logic.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {
namespace ctqg {

namespace {

void
checkWidths(size_t a, size_t b, const char *what)
{
    if (a != b)
        fatal(csprintf("ctqg %s: register widths differ (%zu vs %zu)",
                       what, a, b));
}

} // anonymous namespace

void
bitwiseXor(Module &mod, const Register &a, const Register &b)
{
    checkWidths(a.size(), b.size(), "bitwiseXor");
    for (size_t i = 0; i < a.size(); ++i)
        mod.addGate(GateKind::CNOT, {a[i], b[i]});
}

void
bitwiseAnd(Module &mod, const Register &a, const Register &b,
           const Register &out)
{
    checkWidths(a.size(), b.size(), "bitwiseAnd");
    checkWidths(a.size(), out.size(), "bitwiseAnd");
    for (size_t i = 0; i < a.size(); ++i)
        mod.addGate(GateKind::Toffoli, {a[i], b[i], out[i]});
}

void
bitwiseOr(Module &mod, const Register &a, const Register &b,
          const Register &out)
{
    checkWidths(a.size(), b.size(), "bitwiseOr");
    checkWidths(a.size(), out.size(), "bitwiseOr");
    // a | b = ~(~a & ~b)
    for (size_t i = 0; i < a.size(); ++i) {
        mod.addGate(GateKind::X, {a[i]});
        mod.addGate(GateKind::X, {b[i]});
        mod.addGate(GateKind::Toffoli, {a[i], b[i], out[i]});
        mod.addGate(GateKind::X, {a[i]});
        mod.addGate(GateKind::X, {b[i]});
        mod.addGate(GateKind::X, {out[i]});
    }
}

void
setConst(Module &mod, const Register &reg, uint64_t value)
{
    for (size_t i = 0; i < reg.size() && i < 64; ++i)
        if ((value >> i) & 1)
            mod.addGate(GateKind::X, {reg[i]});
}

Register
rotl(const Register &reg, unsigned amount)
{
    if (reg.empty())
        return reg;
    Register out(reg.size());
    for (size_t i = 0; i < reg.size(); ++i)
        out[(i + amount) % reg.size()] = reg[i];
    return out;
}

void
chooseFunction(Module &mod, const Register &x, const Register &y,
               const Register &z, const Register &out)
{
    checkWidths(x.size(), y.size(), "chooseFunction");
    checkWidths(x.size(), z.size(), "chooseFunction");
    checkWidths(x.size(), out.size(), "chooseFunction");
    // Ch(x,y,z) = (x & y) ^ (~x & z) = z ^ (x & (y ^ z))
    for (size_t i = 0; i < x.size(); ++i) {
        mod.addGate(GateKind::CNOT, {z[i], y[i]});
        mod.addGate(GateKind::Toffoli, {x[i], y[i], out[i]});
        mod.addGate(GateKind::CNOT, {z[i], y[i]});
        mod.addGate(GateKind::CNOT, {z[i], out[i]});
    }
}

void
majorityFunction(Module &mod, const Register &x, const Register &y,
                 const Register &z, const Register &out)
{
    checkWidths(x.size(), y.size(), "majorityFunction");
    checkWidths(x.size(), z.size(), "majorityFunction");
    checkWidths(x.size(), out.size(), "majorityFunction");
    for (size_t i = 0; i < x.size(); ++i) {
        mod.addGate(GateKind::Toffoli, {x[i], y[i], out[i]});
        mod.addGate(GateKind::Toffoli, {x[i], z[i], out[i]});
        mod.addGate(GateKind::Toffoli, {y[i], z[i], out[i]});
    }
}

void
parityFunction(Module &mod, const Register &x, const Register &y,
               const Register &z, const Register &out)
{
    checkWidths(x.size(), y.size(), "parityFunction");
    checkWidths(x.size(), z.size(), "parityFunction");
    checkWidths(x.size(), out.size(), "parityFunction");
    for (size_t i = 0; i < x.size(); ++i) {
        mod.addGate(GateKind::CNOT, {x[i], out[i]});
        mod.addGate(GateKind::CNOT, {y[i], out[i]});
        mod.addGate(GateKind::CNOT, {z[i], out[i]});
    }
}

void
multiControlledX(Module &mod, const Register &controls, QubitId target,
                 const Register &anc)
{
    size_t n = controls.size();
    if (n == 0) {
        mod.addGate(GateKind::X, {target});
        return;
    }
    if (n == 1) {
        mod.addGate(GateKind::CNOT, {controls[0], target});
        return;
    }
    if (n == 2) {
        mod.addGate(GateKind::Toffoli, {controls[0], controls[1], target});
        return;
    }
    if (anc.size() < n - 1)
        fatal(csprintf("ctqg multiControlledX: need %zu ancilla, have %zu",
                       n - 1, anc.size()));

    // Compute the AND ladder into ancilla, flip, then uncompute.
    mod.addGate(GateKind::Toffoli, {controls[0], controls[1], anc[0]});
    for (size_t i = 2; i < n; ++i)
        mod.addGate(GateKind::Toffoli, {controls[i], anc[i - 2],
                                        anc[i - 1]});
    mod.addGate(GateKind::CNOT, {anc[n - 2], target});
    for (size_t i = n; i-- > 2;)
        mod.addGate(GateKind::Toffoli, {controls[i], anc[i - 2],
                                        anc[i - 1]});
    mod.addGate(GateKind::Toffoli, {controls[0], controls[1], anc[0]});
}

void
multiControlledZ(Module &mod, const Register &controls, QubitId target,
                 const Register &anc)
{
    mod.addGate(GateKind::H, {target});
    multiControlledX(mod, controls, target, anc);
    mod.addGate(GateKind::H, {target});
}

} // namespace ctqg
} // namespace msq
