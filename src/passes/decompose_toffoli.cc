#include "passes/decompose_toffoli.hh"

namespace msq {

void
DecomposeToffoliPass::expandToffoli(QubitId a, QubitId b, QubitId c,
                                    std::vector<Operation> &out)
{
    // The 16-operation Clifford+T expansion from paper Fig. 4:
    //   H(c); CNOT(b,c); Tdag(c); CNOT(a,c); T(c); CNOT(b,c); Tdag(c);
    //   CNOT(a,c); Tdag(b); T(c); CNOT(a,b); H(c); Tdag(b); CNOT(a,b);
    //   T(a); S(b)
    using GK = GateKind;
    out.emplace_back(GK::H, std::vector<QubitId>{c});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{b, c});
    out.emplace_back(GK::Tdag, std::vector<QubitId>{c});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{a, c});
    out.emplace_back(GK::T, std::vector<QubitId>{c});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{b, c});
    out.emplace_back(GK::Tdag, std::vector<QubitId>{c});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{a, c});
    out.emplace_back(GK::Tdag, std::vector<QubitId>{b});
    out.emplace_back(GK::T, std::vector<QubitId>{c});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{a, b});
    out.emplace_back(GK::H, std::vector<QubitId>{c});
    out.emplace_back(GK::Tdag, std::vector<QubitId>{b});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{a, b});
    out.emplace_back(GK::T, std::vector<QubitId>{a});
    out.emplace_back(GK::S, std::vector<QubitId>{b});
}

void
DecomposeToffoliPass::expandSwap(QubitId a, QubitId b,
                                 std::vector<Operation> &out)
{
    using GK = GateKind;
    out.emplace_back(GK::CNOT, std::vector<QubitId>{a, b});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{b, a});
    out.emplace_back(GK::CNOT, std::vector<QubitId>{a, b});
}

void
DecomposeToffoliPass::expandFredkin(QubitId ctl, QubitId x, QubitId y,
                                    std::vector<Operation> &out)
{
    // Fredkin(ctl;x,y) = CNOT(y,x) . Toffoli(ctl,x,y) . CNOT(y,x)
    using GK = GateKind;
    out.emplace_back(GK::CNOT, std::vector<QubitId>{y, x});
    expandToffoli(ctl, x, y, out);
    out.emplace_back(GK::CNOT, std::vector<QubitId>{y, x});
}

void
DecomposeToffoliPass::run(Program &prog)
{
    for (ModuleId id : prog.bottomUpOrder()) {
        Module &mod = prog.module(id);
        bool needs_rewrite = false;
        for (const auto &op : mod.ops()) {
            if (op.kind == GateKind::Toffoli ||
                op.kind == GateKind::Fredkin ||
                op.kind == GateKind::Swap) {
                needs_rewrite = true;
                break;
            }
        }
        if (!needs_rewrite)
            continue;

        std::vector<Operation> rewritten;
        rewritten.reserve(mod.numOps());
        for (const auto &op : mod.ops()) {
            switch (op.kind) {
              case GateKind::Toffoli:
                expandToffoli(op.operands[0], op.operands[1],
                              op.operands[2], rewritten);
                break;
              case GateKind::Fredkin:
                expandFredkin(op.operands[0], op.operands[1],
                              op.operands[2], rewritten);
                break;
              case GateKind::Swap:
                expandSwap(op.operands[0], op.operands[1], rewritten);
                break;
              default:
                rewritten.push_back(op);
                break;
            }
        }
        mod.setOps(std::move(rewritten));
    }
}

} // namespace msq
