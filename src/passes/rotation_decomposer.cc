#include "passes/rotation_decomposer.hh"

#include <cmath>
#include <cstring>
#include <map>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace msq {

namespace {

/** Single-qubit primitives an approximation sequence draws from. */
constexpr GateKind sequenceAlphabet[] = {
    GateKind::H,    GateKind::T, GateKind::Tdag, GateKind::S,
    GateKind::Sdag, GateKind::X, GateKind::Z,
};

/** True when g2 immediately cancels g1 (would shorten the chain). */
bool
cancels(GateKind g1, GateKind g2)
{
    switch (g1) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::Z:
        return g2 == g1; // involutions
      case GateKind::T:
        return g2 == GateKind::Tdag;
      case GateKind::Tdag:
        return g2 == GateKind::T;
      case GateKind::S:
        return g2 == GateKind::Sdag;
      case GateKind::Sdag:
        return g2 == GateKind::S;
      default:
        return false;
    }
}

uint64_t
angleSeed(GateKind kind, double angle)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(angle));
    std::memcpy(&bits, &angle, sizeof(bits));
    return hashMix64(bits ^ hashString(gateName(kind)));
}

} // anonymous namespace

RotationDecomposerPass::RotationDecomposerPass(Config config)
    : config(config)
{
    if (config.epsilon <= 0.0 || config.epsilon >= 1.0)
        fatal("rotation decomposer: epsilon must be in (0, 1)");
}

unsigned
RotationDecomposerPass::derivedLength() const
{
    if (config.sequenceLength != 0)
        return config.sequenceLength;
    // T-count of state-of-the-art single-qubit synthesis is about
    // 3 log2(1/eps); interleaved Clifford gates roughly quadruple the
    // total operation count (matches the paper's "several thousand"
    // ballpark at high precision).
    double log2_inv_eps = std::log2(1.0 / config.epsilon);
    auto t_count = static_cast<unsigned>(std::ceil(3.02 * log2_inv_eps));
    return 4 * t_count + 3;
}

std::vector<GateKind>
RotationDecomposerPass::sequenceForAngle(GateKind kind, double angle,
                                         unsigned length)
{
    if (!isRotationGate(kind))
        panic(std::string("sequenceForAngle: not a rotation gate: ") +
              gateName(kind));
    SplitMix64 rng(angleSeed(kind, angle));
    std::vector<GateKind> seq;
    seq.reserve(length);
    constexpr size_t alphabet_size =
        sizeof(sequenceAlphabet) / sizeof(sequenceAlphabet[0]);
    while (seq.size() < length) {
        GateKind next = sequenceAlphabet[rng.nextBelow(alphabet_size)];
        if (!seq.empty() && cancels(seq.back(), next))
            continue;
        seq.push_back(next);
    }
    return seq;
}

void
RotationDecomposerPass::run(Program &prog)
{
    unsigned length = derivedLength();

    // One outlined module per distinct (axis, angle-bits), shared across
    // the whole program.
    std::map<std::pair<int, uint64_t>, ModuleId> outlined;
    unsigned next_outline_id = 0;

    auto outline_module = [&](GateKind kind, double angle) -> ModuleId {
        uint64_t bits;
        std::memcpy(&bits, &angle, sizeof(bits));
        auto key = std::make_pair(static_cast<int>(kind), bits);
        auto it = outlined.find(key);
        if (it != outlined.end())
            return it->second;

        std::string mod_name;
        do {
            mod_name = csprintf("%s_seq_%u", gateName(kind),
                                next_outline_id++);
        } while (prog.findModule(mod_name) != invalidModule);
        ModuleId id = prog.addModule(mod_name);
        Module &mod = prog.module(id);
        QubitId target = mod.addParam("q");
        for (GateKind g : sequenceForAngle(kind, angle, length))
            mod.addGate(g, {target});
        mod.setNoInline(config.noInlineOutlined);
        outlined.emplace(key, id);
        return id;
    };

    for (ModuleId id : prog.bottomUpOrder()) {
        Module &mod = prog.module(id);
        bool has_rotation = false;
        for (const auto &op : mod.ops()) {
            if (isRotationGate(op.kind)) {
                has_rotation = true;
                break;
            }
        }
        if (!has_rotation)
            continue;

        std::vector<Operation> rewritten;
        rewritten.reserve(mod.numOps());
        for (const auto &op : mod.ops()) {
            if (!isRotationGate(op.kind)) {
                rewritten.push_back(op);
                continue;
            }
            QubitId target = op.operands[0];
            if (config.outline) {
                ModuleId callee = outline_module(op.kind, op.angle);
                rewritten.push_back(
                    Operation::makeCall(callee, {target}));
            } else {
                for (GateKind g :
                     sequenceForAngle(op.kind, op.angle, length)) {
                    rewritten.emplace_back(g,
                                           std::vector<QubitId>{target});
                }
            }
        }
        mod.setOps(std::move(rewritten));
    }
}

} // namespace msq
