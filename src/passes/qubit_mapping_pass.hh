/**
 * @file
 * Pipeline wrapper around the qubit-partitioning analysis
 * (analysis/qubit_mapping.hh): runs the home-core mapping over every
 * reachable leaf module of a program and reports, per module, how much
 * inter-core interaction weight the configured strategy leaves on the
 * links compared to the naive round-robin baseline.
 *
 * The pass rewrites nothing — homes are a pure function of (module,
 * topology) recomputed identically by the analyzer, validator and
 * checker, so there is nothing to store in the IR. What the wrapper
 * adds is observability: a Report per leaf and, when a MetricsRegistry
 * is attached, `mapping.*` counters a toolflow or bench run can dump.
 * On a single-core topology the pass is a no-op (no reports).
 */

#ifndef MSQ_PASSES_QUBIT_MAPPING_PASS_HH
#define MSQ_PASSES_QUBIT_MAPPING_PASS_HH

#include <string>
#include <vector>

#include "arch/topology.hh"
#include "passes/pass_manager.hh"

namespace msq {

/** Analysis-reporting pass: map every leaf's qubits to home cores. */
class QubitMappingPass : public Pass
{
  public:
    /** Mapping quality of one leaf module. */
    struct Report
    {
        std::string module;
        /** Total pairwise interaction weight in the module. */
        uint64_t totalWeight = 0;
        /** Interaction weight crossing cores under the configured
         * strategy (each unit is one potential inter-core teleport
         * pair). */
        uint64_t cutWeight = 0;
        /** The same cut under the round-robin baseline mapping. */
        uint64_t roundRobinCutWeight = 0;
    };

    explicit QubitMappingPass(Topology topology,
                              MetricsRegistry *metrics = nullptr)
        : topology(std::move(topology)), metrics(metrics)
    {}

    const char *name() const override { return "qubit-mapping"; }

    void run(Program &prog) override;

    /** One Report per reachable non-empty leaf of the last run(). */
    const std::vector<Report> &reports() const { return reports_; }

  private:
    Topology topology;
    MetricsRegistry *metrics;
    std::vector<Report> reports_;
};

} // namespace msq

#endif // MSQ_PASSES_QUBIT_MAPPING_PASS_HH
