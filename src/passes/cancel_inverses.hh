/**
 * @file
 * Peephole cancellation of adjacent inverse gate pairs. ScaffCC-style
 * flows run cleanup after CTQG and decomposition because generated code
 * is littered with compute/uncompute pairs (X dressing, Toffoli ladders)
 * that meet back-to-back once surrounding code is inlined. Cancelling
 * G . G^-1 on the same operands when no intervening operation touches
 * those qubits shortens both the gate count and the critical path
 * without changing program semantics.
 */

#ifndef MSQ_PASSES_CANCEL_INVERSES_HH
#define MSQ_PASSES_CANCEL_INVERSES_HH

#include "passes/pass_manager.hh"

namespace msq {

/** Iteratively removes adjacent inverse pairs in every module. */
class CancelInversesPass : public Pass
{
  public:
    const char *name() const override { return "cancel-inverses"; }
    void run(Program &prog) override;

    /**
     * One cancellation sweep over an operation list.
     * @return the rewritten list and (via @p removed) how many
     *         operations were eliminated.
     */
    static std::vector<Operation>
    sweep(const std::vector<Operation> &ops, uint64_t &removed);

    /** Do @p a and @p b cancel when adjacent on identical operands? */
    static bool cancels(const Operation &a, const Operation &b);

    /** Total operations removed by the last run(). */
    uint64_t totalRemoved() const { return totalRemoved_; }

  private:
    uint64_t totalRemoved_ = 0;
};

} // namespace msq

#endif // MSQ_PASSES_CANCEL_INVERSES_HH
