#include "passes/qubit_mapping_pass.hh"

#include "analysis/qubit_mapping.hh"

namespace msq {

void
QubitMappingPass::run(Program &prog)
{
    reports_.clear();
    if (!topology.multiCore())
        return;

    Topology roundRobin = topology;
    roundRobin.mapping = MappingStrategy::RoundRobin;

    for (ModuleId id : prog.reachableModules()) {
        const Module &mod = prog.module(id);
        if (!mod.isLeaf() || mod.numOps() == 0)
            continue;

        Report report;
        report.module = mod.name();
        QubitInteractionGraph graph(mod);
        for (QubitId q = 0; q < graph.numQubits(); ++q)
            report.totalWeight += graph.totalWeight(q);
        report.totalWeight /= 2; // each edge counted from both ends
        report.cutWeight =
            mappingCutWeight(mod, computeQubitMapping(mod, topology));
        report.roundRobinCutWeight =
            mappingCutWeight(mod, computeQubitMapping(mod, roundRobin));
        reports_.push_back(std::move(report));
    }

    if (metrics) {
        uint64_t cut = 0, rr = 0, total = 0;
        for (const Report &report : reports_) {
            cut += report.cutWeight;
            rr += report.roundRobinCutWeight;
            total += report.totalWeight;
        }
        metrics->counter("mapping.modules").add(reports_.size());
        metrics->counter("mapping.total_weight").add(total);
        metrics->counter("mapping.cut_weight").add(cut);
        metrics->counter("mapping.roundrobin_cut_weight").add(rr);
    }
}

} // namespace msq
