#include "passes/flatten.hh"

#include "analysis/resource_estimator.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace msq {

void
FlattenPass::inlineCall(Module &caller, const Operation &call,
                        const Module &callee, size_t site_index,
                        std::vector<Operation> &out)
{
    if (!call.isCall())
        panic("FlattenPass::inlineCall: operation is not a call");
    if (call.operands.size() != callee.numParams())
        panic("FlattenPass::inlineCall: arity mismatch");

    // Map callee qubits to caller qubits: parameters bind to the call
    // arguments; locals get fresh caller ancilla (reused across repeats).
    std::vector<QubitId> qubit_map(callee.numQubits());
    for (size_t i = 0; i < callee.numParams(); ++i)
        qubit_map[i] = call.operands[i];
    for (size_t i = callee.numParams(); i < callee.numQubits(); ++i) {
        qubit_map[i] = caller.addLocal(
            csprintf("%s.%zu.%s", callee.name().c_str(), site_index,
                     callee.qubitName(static_cast<QubitId>(i)).c_str()));
    }

    for (uint64_t rep = 0; rep < call.repeat; ++rep) {
        for (const auto &op : callee.ops()) {
            Operation copy = op;
            for (auto &operand : copy.operands)
                operand = qubit_map[operand];
            out.push_back(std::move(copy));
        }
    }
}

void
FlattenPass::run(Program &prog)
{
    ResourceEstimator resources(prog);

    // Bottom-up: a flattenable module's callees are at or below its own
    // total, so they have already been flattened into leaves (or are
    // noInline blackboxes we keep as calls).
    for (ModuleId id : prog.bottomUpOrder()) {
        Module &mod = prog.module(id);
        if (mod.isLeaf())
            continue;
        if (resources.totalGates(id) > threshold)
            continue;

        std::vector<Operation> rewritten;
        size_t site_index = 0;
        for (const auto &op : mod.ops()) {
            if (!op.isCall()) {
                rewritten.push_back(op);
                continue;
            }
            const Module &callee = prog.module(op.callee);
            if (callee.noInline()) {
                rewritten.push_back(op);
                continue;
            }
            if (!callee.isLeaf()) {
                // Only possible via noInline calls nested below; keep
                // the call to preserve those blackboxes.
                rewritten.push_back(op);
                continue;
            }
            inlineCall(mod, op, callee, site_index++, rewritten);
        }
        mod.setOps(std::move(rewritten));
    }
}

} // namespace msq
