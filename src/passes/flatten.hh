/**
 * @file
 * Leaf-module flattening (paper §3.1.1): any module whose total
 * (hierarchical) gate count is at or below the Flattening Threshold (FTh)
 * has all of its calls inlined, turning it into a leaf of at most FTh
 * operations that the fine-grained schedulers can analyze whole. Modules
 * above the threshold keep their calls and are stitched together by the
 * coarse-grained scheduler.
 *
 * Calls to modules marked noInline (e.g. outlined rotations, §5.4) are
 * never inlined.
 */

#ifndef MSQ_PASSES_FLATTEN_HH
#define MSQ_PASSES_FLATTEN_HH

#include <cstdint>

#include "passes/pass_manager.hh"

namespace msq {

/** Inlines calls inside every module at or below the threshold. */
class FlattenPass : public Pass
{
  public:
    /** Paper default: 2M operations (3M for SHA-1). */
    static constexpr uint64_t defaultThreshold = 2'000'000;

    explicit FlattenPass(uint64_t threshold = defaultThreshold)
        : threshold(threshold)
    {}

    const char *name() const override { return "flatten"; }
    void run(Program &prog) override;

    /**
     * Inline one call site into @p out: the callee body is spliced
     * @p call.repeat times with parameters bound to the call arguments
     * and fresh caller locals allocated for callee ancilla (shared
     * across the repeats, as a physical machine would reuse them).
     *
     * @param caller module receiving the splice (gains locals).
     * @param call the call operation being expanded.
     * @param callee the called module.
     * @param site_index unique index for local-name disambiguation.
     * @param out destination operation list.
     */
    static void inlineCall(Module &caller, const Operation &call,
                           const Module &callee, size_t site_index,
                           std::vector<Operation> &out);

  private:
    uint64_t threshold;
};

} // namespace msq

#endif // MSQ_PASSES_FLATTEN_HH
