/**
 * @file
 * Lowers the composite gates Toffoli, Fredkin and Swap into the primitive
 * QASM target set (paper §3.1). Toffoli uses the standard 16-operation
 * Clifford+T circuit — the exact sequence shown in paper Fig. 4 — so the
 * Fig. 4 flattening experiment reproduces cycle-for-cycle.
 */

#ifndef MSQ_PASSES_DECOMPOSE_TOFFOLI_HH
#define MSQ_PASSES_DECOMPOSE_TOFFOLI_HH

#include "passes/pass_manager.hh"

namespace msq {

/** Rewrites every Toffoli/Fredkin/Swap in every module into primitives. */
class DecomposeToffoliPass : public Pass
{
  public:
    const char *name() const override { return "decompose-toffoli"; }
    void run(Program &prog) override;

    /**
     * Append the primitive expansion of Toffoli(a,b,c) to @p out.
     * 16 operations: paper Fig. 4's decomposed circuit.
     */
    static void expandToffoli(QubitId a, QubitId b, QubitId c,
                              std::vector<Operation> &out);

    /** Append Swap(a,b) as three CNOTs. */
    static void expandSwap(QubitId a, QubitId b,
                           std::vector<Operation> &out);

    /** Append Fredkin(ctl,x,y) as CNOT-conjugated Toffoli. */
    static void expandFredkin(QubitId ctl, QubitId x, QubitId y,
                              std::vector<Operation> &out);
};

} // namespace msq

#endif // MSQ_PASSES_DECOMPOSE_TOFFOLI_HH
