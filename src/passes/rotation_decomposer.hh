/**
 * @file
 * Decomposition of arbitrary-angle rotation gates (Rx/Ry/Rz) into long
 * serial Clifford+T sequences, standing in for the SQCT toolbox the paper
 * uses (§3.1).
 *
 * The substitution (documented in DESIGN.md): exact Solovay-Kitaev-style
 * synthesis is irrelevant to scheduling; what matters is that each rotation
 * becomes a serial chain of single-qubit primitives on the *same* qubit
 * whose length grows as O(log 1/epsilon) — "a single qubit may have up to
 * several thousand operations performed sequentially" (§4.2). We generate a
 * deterministic pseudo-random sequence seeded by the rotation axis and
 * angle, so equal rotations decompose identically and every run is
 * reproducible.
 *
 * In *outline* mode each distinct (axis, angle) becomes its own one-qubit
 * module called at the rotation site; outlined modules are marked noInline
 * so flattening keeps them as blackboxes — this reproduces the Shor's
 * behaviour of §5.4 / Table 2, where undecomposable-in-place rotations
 * occupy whole SIMD regions.
 */

#ifndef MSQ_PASSES_ROTATION_DECOMPOSER_HH
#define MSQ_PASSES_ROTATION_DECOMPOSER_HH

#include <vector>

#include "passes/pass_manager.hh"

namespace msq {

/** Lowers Rx/Ry/Rz gates to Clifford+T sequences. */
class RotationDecomposerPass : public Pass
{
  public:
    struct Config
    {
        /** Target approximation precision; drives sequence length. */
        double epsilon = 1e-10;

        /** Explicit sequence length; 0 means derive from epsilon. */
        unsigned sequenceLength = 0;

        /**
         * When true, each distinct rotation becomes a call to a fresh
         * one-parameter module instead of inline gates.
         */
        bool outline = false;

        /** Mark outlined rotation modules noInline (see paper §5.4). */
        bool noInlineOutlined = true;
    };

    RotationDecomposerPass() : RotationDecomposerPass(Config{}) {}
    explicit RotationDecomposerPass(Config config);

    const char *name() const override { return "decompose-rotations"; }
    void run(Program &prog) override;

    /** The sequence length this configuration produces. */
    unsigned derivedLength() const;

    /**
     * The deterministic Clifford+T approximation sequence for a rotation
     * of @p angle about the axis implied by @p kind (must be Rx/Ry/Rz).
     */
    static std::vector<GateKind> sequenceForAngle(GateKind kind,
                                                  double angle,
                                                  unsigned length);

  private:
    Config config;
};

} // namespace msq

#endif // MSQ_PASSES_ROTATION_DECOMPOSER_HH
