/**
 * @file
 * Minimal pass infrastructure: a Pass rewrites a Program in place; the
 * PassManager runs a sequence of passes, mirroring the ScaffCC/LLVM pass
 * pipeline the paper's toolflow is built on (§3.1).
 */

#ifndef MSQ_PASSES_PASS_MANAGER_HH
#define MSQ_PASSES_PASS_MANAGER_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/program.hh"
#include "support/telemetry.hh"

namespace msq {

/** A program-level rewriting pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short identifier used in logs, e.g. "decompose-toffoli". */
    virtual const char *name() const = 0;

    /** Rewrite @p prog in place. */
    virtual void run(Program &prog) = 0;
};

/** Runs a pipeline of passes in order. */
class PassManager
{
  public:
    PassManager();

    /** Append @p pass to the pipeline. */
    void add(std::unique_ptr<Pass> pass);

    /** Run every pass, in order, on @p prog; validates afterwards. */
    void run(Program &prog) const;

    size_t numPasses() const { return passes.size(); }

    /**
     * Debug mode: run the IR verifier plus the interprocedural
     * measurement-dominance analysis after every pass and panic —
     * naming the offending pass and listing every diagnostic — when a
     * pass leaves the program malformed. Defaults to the value of the
     * MSQ_VERIFY_AFTER_PASSES environment variable (any non-empty value
     * other than "0" enables it).
     */
    void setVerifyAfterPasses(bool enabled) { verifyAfterPasses = enabled; }
    bool verifiesAfterPasses() const { return verifyAfterPasses; }

    /**
     * Optional telemetry sink: run() then records, per pass, a
     * "passes.<name>.runs" counter, a "passes.<name>.wall_ms"
     * wall-clock distribution, and a "passes.<name>.ops_after" gauge
     * (total
     * program operations once the pass finishes), plus a trace span
     * per pass on the global recorder. Null (the default) records
     * nothing.
     */
    void setMetrics(MetricsRegistry *registry) { metrics = registry; }

  private:
    std::vector<std::unique_ptr<Pass>> passes;
    bool verifyAfterPasses = false;
    MetricsRegistry *metrics = nullptr;
};

} // namespace msq

#endif // MSQ_PASSES_PASS_MANAGER_HH
