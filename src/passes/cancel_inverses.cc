#include "passes/cancel_inverses.hh"

namespace msq {

bool
CancelInversesPass::cancels(const Operation &a, const Operation &b)
{
    if (a.isCall() || b.isCall())
        return false;
    if (a.operands != b.operands)
        return false;
    switch (a.kind) {
      // Self-inverse gates.
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CNOT:
      case GateKind::CZ:
      case GateKind::Swap:
      case GateKind::Toffoli:
      case GateKind::Fredkin:
        return b.kind == a.kind;
      // Dagger pairs.
      case GateKind::S:
        return b.kind == GateKind::Sdag;
      case GateKind::Sdag:
        return b.kind == GateKind::S;
      case GateKind::T:
        return b.kind == GateKind::Tdag;
      case GateKind::Tdag:
        return b.kind == GateKind::T;
      // Rotations cancel when the angles sum to zero.
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
        return b.kind == a.kind && a.angle == -b.angle;
      default:
        return false; // preparation / measurement never cancel
    }
}

std::vector<Operation>
CancelInversesPass::sweep(const std::vector<Operation> &ops,
                          uint64_t &removed)
{
    removed = 0;
    std::vector<Operation> kept;
    kept.reserve(ops.size());
    std::vector<bool> alive;
    alive.reserve(ops.size());

    // For each qubit, the index (into `kept`) of the last live op
    // touching it; barrier (-2) after a cancellation hides earlier
    // history until the next sweep.
    constexpr int64_t none = -1;
    constexpr int64_t barrier = -2;
    size_t num_qubits = 0;
    for (const auto &op : ops)
        for (QubitId q : op.operands)
            num_qubits = std::max<size_t>(num_qubits, q + 1);
    std::vector<int64_t> last(num_qubits, none);

    for (const auto &op : ops) {
        bool cancelled = false;
        if (!op.operands.empty()) {
            int64_t prev = last[op.operands[0]];
            bool same_prev = prev >= 0 && alive[static_cast<size_t>(prev)];
            for (QubitId q : op.operands)
                same_prev = same_prev && last[q] == prev;
            if (same_prev &&
                cancels(kept[static_cast<size_t>(prev)], op)) {
                alive[static_cast<size_t>(prev)] = false;
                removed += 2;
                for (QubitId q : op.operands)
                    last[q] = barrier;
                cancelled = true;
            }
        }
        if (!cancelled) {
            kept.push_back(op);
            alive.push_back(true);
            auto index = static_cast<int64_t>(kept.size() - 1);
            for (QubitId q : op.operands)
                last[q] = index;
        }
    }

    std::vector<Operation> out;
    out.reserve(kept.size());
    for (size_t i = 0; i < kept.size(); ++i)
        if (alive[i])
            out.push_back(std::move(kept[i]));
    return out;
}

void
CancelInversesPass::run(Program &prog)
{
    totalRemoved_ = 0;
    for (ModuleId id : prog.bottomUpOrder()) {
        Module &mod = prog.module(id);
        uint64_t removed = 0;
        std::vector<Operation> ops = mod.ops();
        do {
            ops = sweep(ops, removed);
            totalRemoved_ += removed;
        } while (removed > 0);
        mod.setOps(std::move(ops));
    }
}

} // namespace msq
