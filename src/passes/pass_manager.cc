#include "passes/pass_manager.hh"

#include "support/logging.hh"

namespace msq {

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
}

void
PassManager::run(Program &prog) const
{
    for (const auto &pass : passes) {
        inform(std::string("running pass: ") + pass->name());
        pass->run(prog);
    }
    prog.validate();
}

} // namespace msq
