#include "passes/pass_manager.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "support/strings.hh"
#include "verify/verifier.hh"

namespace msq {

PassManager::PassManager()
{
    const char *env = std::getenv("MSQ_VERIFY_AFTER_PASSES");
    verifyAfterPasses =
        env != nullptr && *env != '\0' && std::string(env) != "0";
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
}

void
PassManager::run(Program &prog) const
{
    for (const auto &pass : passes) {
        inform(std::string("running pass: ") + pass->name());
        pass->run(prog);
        if (!verifyAfterPasses)
            continue;
        DiagnosticEngine diags;
        if (!verifyProgram(prog, diags)) {
            panic(csprintf("pass '%s' left the program malformed "
                           "(%zu error(s)):\n",
                           pass->name(), diags.numErrors()) +
                  diags.formatAll());
        }
    }
    prog.validate();
}

} // namespace msq
