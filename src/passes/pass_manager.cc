#include "passes/pass_manager.hh"

#include <cstdlib>
#include <optional>

#include "analysis/qubit_analyses.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "verify/verifier.hh"

namespace msq {

namespace {

/** Total operation count across every module of @p prog. */
uint64_t
totalProgramOps(const Program &prog)
{
    uint64_t total = 0;
    for (ModuleId id = 0; id < prog.numModules(); ++id)
        total += prog.module(id).numOps();
    return total;
}

} // anonymous namespace

PassManager::PassManager()
{
    const char *env = std::getenv("MSQ_VERIFY_AFTER_PASSES");
    verifyAfterPasses =
        env != nullptr && *env != '\0' && std::string(env) != "0";
}

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
}

void
PassManager::run(Program &prog) const
{
    for (const auto &pass : passes) {
        inform(std::string("running pass: ") + pass->name());
        {
            TraceSpan span(Telemetry::trace(),
                           std::string("pass:") + pass->name());
            std::optional<ScopedTimerMs> timer;
            if (metrics != nullptr) {
                timer.emplace(metrics->distribution(
                    csprintf("passes.%s.wall_ms", pass->name())));
            }
            pass->run(prog);
        }
        if (metrics != nullptr) {
            metrics->counter(csprintf("passes.%s.runs", pass->name()))
                .add(1);
            metrics->gauge(csprintf("passes.%s.ops_after", pass->name()))
                .set(static_cast<int64_t>(totalProgramOps(prog)));
        }
        if (!verifyAfterPasses)
            continue;
        DiagnosticEngine diags;
        if (!verifyProgram(prog, diags)) {
            panic(csprintf("pass '%s' left the program malformed "
                           "(%zu error(s)):\n",
                           pass->name(), diags.numErrors()) +
                  diags.formatAll());
        }
        // The verifier's V009 is intra-module only; recheck measurement
        // dominance across call boundaries so a pass that reorders or
        // inlines code cannot silently introduce a use of a measured
        // qubit (flatten rewrites exactly those boundaries).
        MeasurementDominance dominance = MeasurementDominance::analyze(prog);
        if (dominance.valid() && !dominance.clean()) {
            std::string detail;
            for (const MeasurementViolation &v : dominance.violations()) {
                const Module &mod = prog.module(v.module);
                detail += csprintf("  module %s, op %u: qubit %u ('%s') "
                                   "may be measured at this use\n",
                                   mod.name().c_str(), v.opIndex, v.qubit,
                                   mod.qubitName(v.qubit).c_str());
            }
            panic(csprintf("pass '%s' broke measurement dominance "
                           "(%zu violation(s)):\n",
                           pass->name(), dominance.violations().size()) +
                  detail);
        }
    }
    prog.validate();
}

} // namespace msq
