/**
 * @file
 * Test-only classical simulator for reversible (X/CNOT/Toffoli/Fredkin/
 * Swap) circuits. CTQG-generated arithmetic uses only classical
 * reversible gates, so adders/comparators/multipliers can be verified
 * against ordinary integer arithmetic on basis states.
 */

#ifndef MSQ_TESTS_REVERSIBLE_SIM_HH
#define MSQ_TESTS_REVERSIBLE_SIM_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"
#include "support/logging.hh"

namespace msq {
namespace test {

/** Simulate @p mod on a basis state; returns the final bit vector. */
inline std::vector<bool>
simulateReversible(const Module &mod, std::vector<bool> state)
{
    if (state.size() != mod.numQubits())
        panic("simulateReversible: state width mismatch");
    for (const auto &op : mod.ops()) {
        const auto &args = op.operands;
        switch (op.kind) {
          case GateKind::X:
            state[args[0]] = !state[args[0]];
            break;
          case GateKind::CNOT:
            if (state[args[0]])
                state[args[1]] = !state[args[1]];
            break;
          case GateKind::Toffoli:
            if (state[args[0]] && state[args[1]])
                state[args[2]] = !state[args[2]];
            break;
          case GateKind::Swap: {
            bool tmp = state[args[0]];
            state[args[0]] = state[args[1]];
            state[args[1]] = tmp;
            break;
          }
          case GateKind::Fredkin:
            if (state[args[0]]) {
                bool tmp = state[args[1]];
                state[args[1]] = state[args[2]];
                state[args[2]] = tmp;
            }
            break;
          case GateKind::PrepZ:
            state[args[0]] = false;
            break;
          case GateKind::MeasZ:
            // Measurement of a basis state is the identity classically.
            break;
          default:
            panic(std::string("simulateReversible: non-classical gate ") +
                  gateName(op.kind));
        }
    }
    return state;
}

/** Pack register bits (little-endian) from @p state into an integer. */
inline uint64_t
readRegister(const std::vector<bool> &state,
             const std::vector<QubitId> &reg)
{
    uint64_t value = 0;
    for (size_t i = 0; i < reg.size() && i < 64; ++i)
        if (state[reg[i]])
            value |= uint64_t{1} << i;
    return value;
}

/** Write @p value into register bits of @p state (little-endian). */
inline void
writeRegister(std::vector<bool> &state, const std::vector<QubitId> &reg,
              uint64_t value)
{
    for (size_t i = 0; i < reg.size() && i < 64; ++i)
        state[reg[i]] = (value >> i) & 1;
}

} // namespace test
} // namespace msq

#endif // MSQ_TESTS_REVERSIBLE_SIM_HH
